//! The Memo: groups of equivalent expressions (paper §4.1.1).
//!
//! "Within the Memo, equivalent alternatives are stored in groups, and a
//! query tree is represented using connections between groups instead of
//! operators. [...] If the new alternative already exists in the Memo,
//! nothing is inserted — more importantly, no extra work is required to
//! re-search this portion of the possible query space."

use crate::cardinality::derive_props;
use crate::logical::{LogicalExpr, LogicalOp};
use crate::physical::PhysNode;
use crate::props::{ColumnRegistry, LogicalProps, RequiredProps};
use std::collections::HashMap;

/// Index of a group in the memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// Index of a logical multi-expression in the memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExprId(pub u32);

/// A logical operator whose children are memo groups.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MExpr {
    pub op: LogicalOp,
    pub children: Vec<GroupId>,
}

/// The best plan found for a `(group, required properties)` pair — the
/// "winner's circle".
#[derive(Debug, Clone)]
pub struct Winner {
    pub cost: f64,
    pub plan: PhysNode,
}

/// One equivalence class.
#[derive(Debug)]
pub struct Group {
    pub id: GroupId,
    /// Logical alternatives (original + rule-generated).
    pub exprs: Vec<ExprId>,
    /// Shared logical properties (identical across alternatives).
    pub props: LogicalProps,
    /// Winners keyed by required physical properties.
    pub winners: HashMap<RequiredProps, Option<Winner>>,
    /// Exploration pass bookkeeping: index of the next unexplored expr per
    /// rule-set generation, so repeated passes only look at new exprs.
    pub explored_upto: usize,
}

/// The memo structure.
#[derive(Debug, Default)]
pub struct Memo {
    groups: Vec<Group>,
    exprs: Vec<MExpr>,
    expr_group: Vec<GroupId>,
    dedup: HashMap<MExpr, ExprId>,
}

impl Memo {
    pub fn new() -> Self {
        Memo::default()
    }

    pub fn group(&self, id: GroupId) -> &Group {
        &self.groups[id.0 as usize]
    }

    pub fn group_mut(&mut self, id: GroupId) -> &mut Group {
        &mut self.groups[id.0 as usize]
    }

    pub fn expr(&self, id: ExprId) -> &MExpr {
        &self.exprs[id.0 as usize]
    }

    pub fn group_of(&self, id: ExprId) -> GroupId {
        self.expr_group[id.0 as usize]
    }

    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }

    /// Recursively insert a logical tree, returning the root group.
    pub fn insert_tree(&mut self, tree: &LogicalExpr, registry: &ColumnRegistry) -> GroupId {
        let children: Vec<GroupId> = tree
            .children
            .iter()
            .map(|c| self.insert_tree(c, registry))
            .collect();
        let mexpr = MExpr {
            op: tree.op.clone(),
            children,
        };
        if let Some(&existing) = self.dedup.get(&mexpr) {
            return self.group_of(existing);
        }
        let child_props: Vec<&LogicalProps> = mexpr
            .children
            .iter()
            .map(|&g| &self.groups[g.0 as usize].props)
            .collect();
        let props = derive_props(&mexpr.op, &child_props, registry);
        let gid = GroupId(self.groups.len() as u32);
        self.groups.push(Group {
            id: gid,
            exprs: Vec::new(),
            props,
            winners: HashMap::new(),
            explored_upto: 0,
        });
        let eid = self.push_expr(mexpr, gid);
        self.groups[gid.0 as usize].exprs.push(eid);
        gid
    }

    /// Insert a rule-produced alternative into an existing group. Returns
    /// the new expr id, or `None` when the expression is already known
    /// (possibly in another group — in which case no work is queued, as in
    /// the paper).
    pub fn insert_alternative(
        &mut self,
        op: LogicalOp,
        children: Vec<GroupId>,
        group: GroupId,
    ) -> Option<ExprId> {
        let mexpr = MExpr { op, children };
        if self.dedup.contains_key(&mexpr) {
            return None;
        }
        let eid = self.push_expr(mexpr, group);
        self.groups[group.0 as usize].exprs.push(eid);
        Some(eid)
    }

    /// Insert a rule-produced subtree (new operators below the rewritten
    /// root) and return its group: children of the produced tree may be
    /// references to existing groups.
    pub fn insert_subtree(&mut self, tree: &AltExpr, registry: &ColumnRegistry) -> GroupId {
        match tree {
            AltExpr::Group(g) => *g,
            AltExpr::Op { op, children } => {
                let child_groups: Vec<GroupId> = children
                    .iter()
                    .map(|c| self.insert_subtree(c, registry))
                    .collect();
                let mexpr = MExpr {
                    op: op.clone(),
                    children: child_groups,
                };
                if let Some(&existing) = self.dedup.get(&mexpr) {
                    return self.group_of(existing);
                }
                let child_props: Vec<&LogicalProps> = mexpr
                    .children
                    .iter()
                    .map(|&g| &self.groups[g.0 as usize].props)
                    .collect();
                let props = derive_props(&mexpr.op, &child_props, registry);
                let gid = GroupId(self.groups.len() as u32);
                self.groups.push(Group {
                    id: gid,
                    exprs: Vec::new(),
                    props,
                    winners: HashMap::new(),
                    explored_upto: 0,
                });
                let eid = self.push_expr(mexpr, gid);
                self.groups[gid.0 as usize].exprs.push(eid);
                gid
            }
        }
    }

    /// Insert a rule result whose root replaces `group`'s expressions and
    /// whose internal nodes become new groups.
    pub fn insert_alternative_tree(
        &mut self,
        tree: &AltExpr,
        group: GroupId,
        registry: &ColumnRegistry,
    ) -> Option<ExprId> {
        match tree {
            // A bare group reference cannot be an alternative root.
            AltExpr::Group(_) => None,
            AltExpr::Op { op, children } => {
                let child_groups: Vec<GroupId> = children
                    .iter()
                    .map(|c| self.insert_subtree(c, registry))
                    .collect();
                self.insert_alternative(op.clone(), child_groups, group)
            }
        }
    }

    fn push_expr(&mut self, mexpr: MExpr, group: GroupId) -> ExprId {
        let eid = ExprId(self.exprs.len() as u32);
        self.dedup.insert(mexpr.clone(), eid);
        self.exprs.push(mexpr);
        self.expr_group.push(group);
        eid
    }
}

/// Rule output: a tree whose leaves may reference existing memo groups.
#[derive(Debug, Clone)]
pub enum AltExpr {
    /// Reference to an existing group (a child kept as-is).
    Group(GroupId),
    /// A new operator over subtrees.
    Op {
        op: LogicalOp,
        children: Vec<AltExpr>,
    },
}

impl AltExpr {
    pub fn op(op: LogicalOp, children: Vec<AltExpr>) -> Self {
        AltExpr::Op { op, children }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{test_table_meta, JoinKind, Locality};
    use crate::scalar::ScalarExpr;
    use dhqp_types::DataType;
    use std::sync::Arc;

    fn join_tree() -> (ColumnRegistry, LogicalExpr) {
        let mut reg = ColumnRegistry::new();
        let a = test_table_meta(
            0,
            "a",
            Locality::Local,
            &[("x", DataType::Int)],
            &mut reg,
            100,
        );
        let b = test_table_meta(
            1,
            "b",
            Locality::Local,
            &[("y", DataType::Int)],
            &mut reg,
            50,
        );
        let tree = LogicalExpr::join(
            JoinKind::Inner,
            LogicalExpr::get(Arc::clone(&a)),
            LogicalExpr::get(Arc::clone(&b)),
            Some(ScalarExpr::eq(
                ScalarExpr::Column(a.column_id(0)),
                ScalarExpr::Column(b.column_id(0)),
            )),
        );
        (reg, tree)
    }

    #[test]
    fn insert_tree_creates_one_group_per_operator() {
        let (reg, tree) = join_tree();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&tree, &reg);
        assert_eq!(memo.group_count(), 3); // a, b, join
        assert_eq!(memo.group(root).exprs.len(), 1);
    }

    #[test]
    fn duplicate_insertion_is_detected() {
        let (reg, tree) = join_tree();
        let mut memo = Memo::new();
        let g1 = memo.insert_tree(&tree, &reg);
        let g2 = memo.insert_tree(&tree, &reg);
        assert_eq!(g1, g2);
        assert_eq!(memo.group_count(), 3);
    }

    #[test]
    fn commuted_alternative_joins_same_group() {
        let (reg, tree) = join_tree();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&tree, &reg);
        let root_expr = memo.expr(memo.group(root).exprs[0]).clone();
        // Insert B join A as an alternative of the same group.
        let swapped = MExpr {
            op: root_expr.op.clone(),
            children: vec![root_expr.children[1], root_expr.children[0]],
        };
        let added = memo.insert_alternative(swapped.op.clone(), swapped.children.clone(), root);
        assert!(added.is_some());
        assert_eq!(memo.group(root).exprs.len(), 2);
        // Re-inserting the same alternative is a no-op.
        assert!(memo
            .insert_alternative(swapped.op, swapped.children, root)
            .is_none());
    }

    #[test]
    fn group_props_are_derived() {
        let (reg, tree) = join_tree();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&tree, &reg);
        let props = &memo.group(root).props;
        assert_eq!(props.columns.len(), 2);
        assert!(props.cardinality > 0.0);
    }
}
