//! Physical operators and the extracted plan tree handed to the executor.

use crate::logical::{JoinKind, TableMeta};
use crate::props::ColumnId;
use crate::scalar::{AggCall, ScalarExpr};
use dhqp_types::Value;
use std::fmt::Write as _;
use std::sync::Arc;

/// Runtime-evaluated index seek bounds (expressions must be column-free:
/// literals, parameters or correlation parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexRangeSpec {
    pub low: Option<(Vec<ScalarExpr>, bool)>,
    pub high: Option<(Vec<ScalarExpr>, bool)>,
}

impl IndexRangeSpec {
    pub fn all() -> Self {
        IndexRangeSpec {
            low: None,
            high: None,
        }
    }

    pub fn eq(keys: Vec<ScalarExpr>) -> Self {
        IndexRangeSpec {
            low: Some((keys.clone(), true)),
            high: Some((keys, true)),
        }
    }
}

/// Physical (implementable) operators. The remote family mirrors the
/// paper's implementation rules: *build remote query*, *remote
/// scan/range/fetch*, *spool over remote operation* (§4.1.2).
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalOp {
    /// Sequential scan of a local table.
    TableScan {
        meta: Arc<TableMeta>,
    },
    /// Local index range access, delivering key order.
    IndexRange {
        meta: Arc<TableMeta>,
        index: String,
        range: IndexRangeSpec,
    },
    Filter {
        predicate: ScalarExpr,
    },
    /// Column-free predicate evaluated once before opening the child
    /// (runtime partition pruning, §4.1.5).
    StartupFilter {
        predicate: ScalarExpr,
    },
    Project {
        outputs: Vec<(ColumnId, ScalarExpr)>,
    },
    /// Tuple-at-a-time join; inner child re-opened per outer row (with
    /// correlation bindings when parameterized).
    NestedLoopJoin {
        kind: JoinKind,
        predicate: Option<ScalarExpr>,
    },
    HashJoin {
        kind: JoinKind,
        left_keys: Vec<ScalarExpr>,
        right_keys: Vec<ScalarExpr>,
        residual: Option<ScalarExpr>,
    },
    /// Requires both inputs sorted on the key columns.
    MergeJoin {
        left_keys: Vec<ColumnId>,
        right_keys: Vec<ColumnId>,
        residual: Option<ScalarExpr>,
    },
    HashAggregate {
        group_by: Vec<ColumnId>,
        aggs: Vec<AggCall>,
    },
    /// Requires input sorted on the grouping columns.
    StreamAggregate {
        group_by: Vec<ColumnId>,
        aggs: Vec<AggCall>,
    },
    Sort {
        keys: Vec<(ColumnId, bool)>,
    },
    Top {
        n: u64,
    },
    /// `output[i]` is fed by `input_columns[k][i]` of child `k` (children
    /// may deliver their columns in any physical order; the executor
    /// permutes by column id).
    UnionAll {
        output: Vec<ColumnId>,
        input_columns: Vec<Vec<ColumnId>>,
    },
    /// Parallel bag union: every child runs on its own worker thread and
    /// rows funnel through a bounded channel to the single consumer cursor.
    /// Inserted above unions whose branches open remote sources, so member
    /// servers of a partitioned view work concurrently (§4.1.5) instead of
    /// paying each link's latency in sequence. Column semantics match
    /// [`PhysicalOp::UnionAll`]; row order across branches is unspecified.
    Exchange {
        output: Vec<ColumnId>,
        input_columns: Vec<Vec<ColumnId>>,
    },
    /// Materializes its child on first open; rescans replay the cache
    /// without re-running the child (the *spool over remote* enforcer).
    Spool,
    /// A SQL statement pushed whole to a linked server — the product of the
    /// *build remote query* rule. `params` are bound at open time.
    RemoteQuery {
        server: Arc<str>,
        sql: String,
        columns: Vec<ColumnId>,
        params: Vec<RemoteParam>,
    },
    /// `IOpenRowset` against a remote base table.
    RemoteScan {
        meta: Arc<TableMeta>,
    },
    /// `IRowsetIndex` range against a remote index (key order delivered).
    RemoteRange {
        meta: Arc<TableMeta>,
        index: String,
        range: IndexRangeSpec,
    },
    /// `IRowsetLocate` fetch of base rows for bookmarks produced by the
    /// child (typically a RemoteRange over a secondary index).
    RemoteFetch {
        meta: Arc<TableMeta>,
    },
    /// Semi-join reduction (§4.1.5 byte minimization): the build child is
    /// drained at drive time, its distinct join keys are spliced into the
    /// remote statement as an `IN`-list, and the reduced remote result is
    /// hash-joined back against the build rows. Past `max_keys` distinct
    /// keys the executor abandons the reduction and ships `sql` unchanged.
    SemiJoinReduce {
        kind: JoinKind,
        /// Join key column of the (local, cheap) build child.
        build_key: ColumnId,
        /// Join key column of the remote side; aliased `c<id>` in `sql`.
        probe_key: ColumnId,
        residual: Option<ScalarExpr>,
        server: Arc<str>,
        /// Decoder-built base statement for the remote side (unreduced).
        sql: String,
        /// Remote output columns, matching `sql`'s select-list order.
        columns: Vec<ColumnId>,
        params: Vec<RemoteParam>,
        max_keys: usize,
    },
    Values {
        columns: Vec<ColumnId>,
        rows: Vec<Vec<Value>>,
    },
    /// Produces no rows (statically pruned).
    Empty {
        columns: Vec<ColumnId>,
    },
}

/// A parameter of a remote query: `@name` placeholders in the SQL text are
/// bound from the session's query parameters or from the current outer row
/// of a parameterized nested-loop join (the §4.1.2 parameterization rule).
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteParam {
    /// Placeholder name as it appears in the SQL text (without `@`).
    pub name: String,
    pub source: ParamSource,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ParamSource {
    /// A column of the outer row (correlation).
    OuterColumn(ColumnId),
    /// A session query parameter.
    QueryParam(String),
}

impl PhysicalOp {
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::TableScan { .. } => "TableScan",
            PhysicalOp::IndexRange { .. } => "IndexRange",
            PhysicalOp::Filter { .. } => "Filter",
            PhysicalOp::StartupFilter { .. } => "StartupFilter",
            PhysicalOp::Project { .. } => "Project",
            PhysicalOp::NestedLoopJoin { .. } => "NestedLoopJoin",
            PhysicalOp::HashJoin { .. } => "HashJoin",
            PhysicalOp::MergeJoin { .. } => "MergeJoin",
            PhysicalOp::HashAggregate { .. } => "HashAggregate",
            PhysicalOp::StreamAggregate { .. } => "StreamAggregate",
            PhysicalOp::Sort { .. } => "Sort",
            PhysicalOp::Top { .. } => "Top",
            PhysicalOp::UnionAll { .. } => "UnionAll",
            PhysicalOp::Exchange { .. } => "Exchange",
            PhysicalOp::Spool => "Spool",
            PhysicalOp::RemoteQuery { .. } => "RemoteQuery",
            PhysicalOp::RemoteScan { .. } => "RemoteScan",
            PhysicalOp::RemoteRange { .. } => "RemoteRange",
            PhysicalOp::RemoteFetch { .. } => "RemoteFetch",
            PhysicalOp::SemiJoinReduce { .. } => "SemiJoinReduce",
            PhysicalOp::Values { .. } => "Values",
            PhysicalOp::Empty { .. } => "Empty",
        }
    }

    /// Whether this operator contacts a remote server when opened.
    pub fn is_remote(&self) -> bool {
        matches!(
            self,
            PhysicalOp::RemoteQuery { .. }
                | PhysicalOp::RemoteScan { .. }
                | PhysicalOp::RemoteRange { .. }
                | PhysicalOp::RemoteFetch { .. }
                | PhysicalOp::SemiJoinReduce { .. }
        )
    }
}

/// A node of the final physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysNode {
    pub op: PhysicalOp,
    pub children: Vec<PhysNode>,
    /// Output columns in order — the executor resolves [`ColumnId`]s to row
    /// positions using these.
    pub output: Vec<ColumnId>,
    /// Optimizer estimates, kept for explain output and plan assertions.
    pub est_rows: f64,
    pub est_cost: f64,
}

impl PhysNode {
    pub fn new(op: PhysicalOp, children: Vec<PhysNode>, output: Vec<ColumnId>) -> Self {
        PhysNode {
            op,
            children,
            output,
            est_rows: 0.0,
            est_cost: 0.0,
        }
    }

    /// Number of nodes in this subtree (self included). Pre-order node ids
    /// used by runtime stats are derived from subtree sizes: a node at id
    /// `i` has its first child at `i + 1`, and each later child follows the
    /// previous sibling's whole subtree.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(PhysNode::subtree_size)
            .sum::<usize>()
    }

    /// One-line operator label (no estimates, no indent) — shared between
    /// `EXPLAIN` and `EXPLAIN ANALYZE` rendering.
    pub fn describe(&self) -> String {
        match &self.op {
            PhysicalOp::TableScan { meta } => format!("TableScan({})", meta.alias),
            PhysicalOp::IndexRange { meta, index, .. } => {
                format!("IndexRange({}.{index})", meta.alias)
            }
            PhysicalOp::Filter { predicate } => format!("Filter({predicate})"),
            PhysicalOp::StartupFilter { predicate } => format!("StartupFilter({predicate})"),
            PhysicalOp::NestedLoopJoin { kind, .. } => format!("NestedLoopJoin[{kind:?}]"),
            PhysicalOp::HashJoin { kind, .. } => format!("HashJoin[{kind:?}]"),
            PhysicalOp::RemoteQuery { server, sql, .. } => format!("RemoteQuery(@{server}: {sql})"),
            PhysicalOp::RemoteScan { meta } => format!(
                "RemoteScan(@{}.{})",
                meta.source.server_name().unwrap_or("?"),
                meta.table
            ),
            PhysicalOp::RemoteRange { meta, index, .. } => format!(
                "RemoteRange(@{}.{}.{index})",
                meta.source.server_name().unwrap_or("?"),
                meta.table
            ),
            PhysicalOp::RemoteFetch { meta } => format!("RemoteFetch({})", meta.table),
            PhysicalOp::SemiJoinReduce {
                server,
                sql,
                max_keys,
                ..
            } => format!("SemiJoinReduce(@{server} max_keys={max_keys}: {sql})"),
            PhysicalOp::Sort { keys } => format!("Sort({} keys)", keys.len()),
            PhysicalOp::Exchange { .. } => format!("Exchange({} branches)", self.children.len()),
            other => other.name().to_string(),
        }
    }

    /// Count operators matching a predicate anywhere in the plan.
    pub fn count_ops(&self, f: &mut impl FnMut(&PhysicalOp) -> bool) -> usize {
        let mut n = usize::from(f(&self.op));
        for c in &self.children {
            n += c.count_ops(f);
        }
        n
    }

    /// Find the first node whose operator matches.
    pub fn find_op(&self, f: &mut impl FnMut(&PhysicalOp) -> bool) -> Option<&PhysNode> {
        if f(&self.op) {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find_op(f))
    }

    /// Indented single-line-per-operator rendering (the engine's
    /// `EXPLAIN`).
    pub fn display_indent(&self) -> String {
        let mut s = String::new();
        self.fmt_indent(&mut s, 0);
        s
    }

    fn fmt_indent(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        if matches!(self.op, PhysicalOp::StartupFilter { .. }) {
            // Startup filters pass their child through unchanged; an
            // estimate would just repeat the child's.
            let _ = writeln!(out, "{}", self.describe());
        } else {
            let _ = writeln!(out, "{}  rows={:.0}", self.describe(), self.est_rows);
        }
        for c in &self.children {
            c.fmt_indent(out, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{test_table_meta, Locality};
    use crate::props::ColumnRegistry;
    use dhqp_types::DataType;

    #[test]
    fn plan_tree_search_helpers() {
        let mut reg = ColumnRegistry::new();
        let meta = test_table_meta(
            0,
            "t",
            Locality::remote("r0"),
            &[("a", DataType::Int)],
            &mut reg,
            10,
        );
        let scan = PhysNode::new(
            PhysicalOp::RemoteScan {
                meta: Arc::clone(&meta),
            },
            vec![],
            meta.column_ids.clone(),
        );
        let spool = PhysNode::new(PhysicalOp::Spool, vec![scan], meta.column_ids.clone());
        assert_eq!(spool.count_ops(&mut |op| op.is_remote()), 1);
        assert!(spool
            .find_op(&mut |op| matches!(op, PhysicalOp::Spool))
            .is_some());
        assert!(spool
            .find_op(&mut |op| matches!(op, PhysicalOp::Sort { .. }))
            .is_none());
        let text = spool.display_indent();
        assert!(text.contains("Spool"));
        assert!(text.contains("RemoteScan(@r0.t)"));
    }
}
