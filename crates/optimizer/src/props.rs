//! Column identities and property structures.
//!
//! The optimizer names columns by stable [`ColumnId`]s rather than
//! positions, so algebraic rewrites (join commutation, reordering) never
//! need to renumber expressions. Positions are assigned only when a chosen
//! physical plan is extracted for execution.

use crate::scalar::ScalarExpr;
use dhqp_types::{DataType, IntervalSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A stable identity for one column produced somewhere in a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnId(pub u32);

/// Descriptive metadata for a [`ColumnId`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnMeta {
    pub id: ColumnId,
    /// Base column name (`c_custkey`).
    pub name: String,
    /// The FROM-clause binding that introduced it (`c` in `customer c`),
    /// empty for derived columns.
    pub binding: String,
    pub data_type: DataType,
    pub nullable: bool,
}

/// Allocates and resolves [`ColumnId`]s for one optimization.
#[derive(Debug, Default, Clone)]
pub struct ColumnRegistry {
    metas: Vec<ColumnMeta>,
}

impl ColumnRegistry {
    pub fn new() -> Self {
        ColumnRegistry::default()
    }

    pub fn allocate(
        &mut self,
        name: impl Into<String>,
        binding: impl Into<String>,
        data_type: DataType,
        nullable: bool,
    ) -> ColumnId {
        let id = ColumnId(self.metas.len() as u32);
        self.metas.push(ColumnMeta {
            id,
            name: name.into(),
            binding: binding.into(),
            data_type,
            nullable,
        });
        id
    }

    pub fn meta(&self, id: ColumnId) -> &ColumnMeta {
        &self.metas[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.metas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Display name: `binding.name` when a binding exists.
    pub fn qualified_name(&self, id: ColumnId) -> String {
        let m = self.meta(id);
        if m.binding.is_empty() {
            m.name.clone()
        } else {
            format!("{}.{}", m.binding, m.name)
        }
    }
}

/// Logical (group) properties — shared by every alternative in a memo group
/// (§4.1.1: "alternatives within a group should, by definition, have the
/// same logical properties").
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalProps {
    /// Output columns, in the group's canonical order.
    pub columns: Vec<ColumnId>,
    /// Estimated output cardinality.
    pub cardinality: f64,
    /// Estimated average row wire-width in bytes (drives the remote cost
    /// model's traffic estimates).
    pub row_width: f64,
    /// The constraint property framework (§4.1.5): per-column value domains
    /// derived from CHECK constraints and predicates. Absent columns are
    /// unconstrained.
    pub domains: BTreeMap<ColumnId, IntervalSet>,
    /// Columns known to be unique keys of the output (single-column keys
    /// only — enough for join cardinality refinement).
    pub keys: Vec<ColumnId>,
    /// Histograms for columns that still carry base-table statistics
    /// (propagated upward from `Get`, §3.2.4).
    pub histograms: std::collections::BTreeMap<ColumnId, std::sync::Arc<dhqp_oledb::Histogram>>,
}

impl LogicalProps {
    pub fn domain_of(&self, id: ColumnId) -> IntervalSet {
        self.domains
            .get(&id)
            .cloned()
            .unwrap_or_else(IntervalSet::full)
    }
}

/// Physical properties delivered by a physical plan: sort order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PhysicalProps {
    /// `(column, ascending)` pairs, outermost first; empty = no order.
    pub ordering: Vec<(ColumnId, bool)>,
}

impl PhysicalProps {
    pub fn none() -> Self {
        PhysicalProps::default()
    }

    pub fn ordered(ordering: Vec<(ColumnId, bool)>) -> Self {
        PhysicalProps { ordering }
    }

    /// Whether `self` satisfies a requirement `req` (prefix semantics: a
    /// delivered order satisfies any required prefix of itself).
    pub fn satisfies(&self, req: &PhysicalProps) -> bool {
        if req.ordering.is_empty() {
            return true;
        }
        self.ordering.len() >= req.ordering.len()
            && self.ordering[..req.ordering.len()] == req.ordering[..]
    }
}

/// Required properties used as the winner's-circle key during search.
pub type RequiredProps = PhysicalProps;

/// Sort keys expressed over scalar expressions before column resolution —
/// the optimizer only supports ordering on plain columns; anything else is
/// projected first by the binder.
pub fn ordering_from_exprs(keys: &[(ScalarExpr, bool)]) -> Option<Vec<(ColumnId, bool)>> {
    keys.iter()
        .map(|(e, asc)| match e {
            ScalarExpr::Column(c) => Some((*c, *asc)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_allocates_sequential_ids() {
        let mut reg = ColumnRegistry::new();
        let a = reg.allocate("a", "t", DataType::Int, false);
        let b = reg.allocate("b", "", DataType::Str, true);
        assert_eq!(a, ColumnId(0));
        assert_eq!(b, ColumnId(1));
        assert_eq!(reg.qualified_name(a), "t.a");
        assert_eq!(reg.qualified_name(b), "b");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn ordering_satisfaction_is_prefix_based() {
        let c0 = ColumnId(0);
        let c1 = ColumnId(1);
        let delivered = PhysicalProps::ordered(vec![(c0, true), (c1, false)]);
        assert!(delivered.satisfies(&PhysicalProps::none()));
        assert!(delivered.satisfies(&PhysicalProps::ordered(vec![(c0, true)])));
        assert!(delivered.satisfies(&delivered.clone()));
        assert!(!delivered.satisfies(&PhysicalProps::ordered(vec![(c1, false)])));
        assert!(!delivered.satisfies(&PhysicalProps::ordered(vec![(c0, false)])));
        assert!(!PhysicalProps::none().satisfies(&PhysicalProps::ordered(vec![(c0, true)])));
    }

    #[test]
    fn ordering_from_exprs_rejects_non_columns() {
        use dhqp_types::Value;
        let cols = vec![(ScalarExpr::Column(ColumnId(2)), true)];
        assert_eq!(ordering_from_exprs(&cols), Some(vec![(ColumnId(2), true)]));
        let exprs = vec![(ScalarExpr::Literal(Value::Int(1)), true)];
        assert_eq!(ordering_from_exprs(&exprs), None);
    }
}
