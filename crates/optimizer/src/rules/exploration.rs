//! Exploration rules: logical → logical alternatives inside the memo
//! (paper §4.1.1–§4.1.2).
//!
//! Each rule carries a *promise* (application priority) and a *guidance*
//! check (`matches`) so the engine never attempts rules that cannot fire —
//! the paper's mechanism for keeping search cheap.

use crate::logical::{JoinKind, Locality, LogicalOp};
use crate::memo::{AltExpr, GroupId, MExpr, Memo};
use crate::props::ColumnId;
use crate::rules::RuleContext;
use crate::scalar::ScalarExpr;
use std::collections::BTreeSet;

/// An exploration rule.
pub trait ExplorationRule: Sync {
    fn name(&self) -> &'static str;
    /// Higher promise = applied first (the paper's rule-ordering hook).
    fn promise(&self) -> u8;
    /// Guidance: can this rule possibly match the operator?
    fn matches(&self, op: &LogicalOp) -> bool;
    /// Produce alternative expressions for `expr` (which lives in `group`).
    fn apply(
        &self,
        expr: &MExpr,
        group: GroupId,
        memo: &Memo,
        ctx: &RuleContext<'_>,
    ) -> Vec<AltExpr>;
}

/// `A ⋈ B ≡ B ⋈ A` for inner/cross joins.
pub struct JoinCommute;

impl ExplorationRule for JoinCommute {
    fn name(&self) -> &'static str {
        "JoinCommute"
    }

    fn promise(&self) -> u8 {
        50
    }

    fn matches(&self, op: &LogicalOp) -> bool {
        matches!(op, LogicalOp::Join { kind, .. } if kind.commutable())
    }

    fn apply(
        &self,
        expr: &MExpr,
        _group: GroupId,
        _memo: &Memo,
        _ctx: &RuleContext<'_>,
    ) -> Vec<AltExpr> {
        let LogicalOp::Join { kind, predicate } = &expr.op else {
            return vec![];
        };
        vec![AltExpr::op(
            LogicalOp::Join {
                kind: *kind,
                predicate: predicate.clone(),
            },
            vec![
                AltExpr::Group(expr.children[1]),
                AltExpr::Group(expr.children[0]),
            ],
        )]
    }
}

/// `(A ⋈ B) ⋈ C ≡ A ⋈ (B ⋈ C)` with predicate redistribution.
///
/// When [`crate::search::OptimizerConfig::enable_locality_grouping`] is on,
/// the rule additionally generates the B⋈C grouping even without a
/// connecting predicate if B and C live on the same remote server — the
/// paper's *grouping joins based on locality* rule, whose rationale is
/// "finding solutions of pushing the largest possible sub-tree to the
/// remote source".
pub struct JoinAssociate;

impl JoinAssociate {
    /// Partition the combined conjunct set: those referencing only
    /// `inner_cols` go to the new inner join; the rest stay on top.
    fn split_conjuncts(
        all: Vec<ScalarExpr>,
        inner_cols: &BTreeSet<ColumnId>,
    ) -> (Vec<ScalarExpr>, Vec<ScalarExpr>) {
        let mut inner = Vec::new();
        let mut outer = Vec::new();
        for c in all {
            let cols = c.columns();
            if !cols.is_empty() && cols.iter().all(|x| inner_cols.contains(x)) {
                inner.push(c);
            } else {
                outer.push(c);
            }
        }
        (inner, outer)
    }

    /// The single remote server a group's leaves live on, if any.
    fn sole_remote(memo: &Memo, group: GroupId) -> Option<Locality> {
        let locs = group_localities(memo, group);
        if locs.len() == 1 && locs[0].is_remote() {
            Some(locs[0].clone())
        } else {
            None
        }
    }
}

impl ExplorationRule for JoinAssociate {
    fn name(&self) -> &'static str {
        "JoinAssociate"
    }

    fn promise(&self) -> u8 {
        30
    }

    fn matches(&self, op: &LogicalOp) -> bool {
        matches!(
            op,
            LogicalOp::Join {
                kind: JoinKind::Inner | JoinKind::Cross,
                ..
            }
        )
    }

    fn apply(
        &self,
        expr: &MExpr,
        _group: GroupId,
        memo: &Memo,
        ctx: &RuleContext<'_>,
    ) -> Vec<AltExpr> {
        let LogicalOp::Join {
            kind: top_kind,
            predicate: top_pred,
        } = &expr.op
        else {
            return vec![];
        };
        if !matches!(top_kind, JoinKind::Inner | JoinKind::Cross) {
            return vec![];
        }
        let left_group = expr.children[0];
        let c_group = expr.children[1];
        let mut out = Vec::new();
        // For each inner/cross join alternative in the left group:
        // (A ⋈ B) ⋈ C  →  A ⋈ (B ⋈ C)
        for &left_eid in &memo.group(left_group).exprs {
            let left_expr = memo.expr(left_eid).clone();
            let LogicalOp::Join {
                kind: lkind,
                predicate: lpred,
            } = &left_expr.op
            else {
                continue;
            };
            if !matches!(lkind, JoinKind::Inner | JoinKind::Cross) {
                continue;
            }
            let a_group = left_expr.children[0];
            let b_group = left_expr.children[1];
            let mut all = top_pred.as_ref().map(|p| p.conjuncts()).unwrap_or_default();
            all.extend(lpred.as_ref().map(|p| p.conjuncts()).unwrap_or_default());
            let inner_cols: BTreeSet<ColumnId> = memo
                .group(b_group)
                .props
                .columns
                .iter()
                .chain(memo.group(c_group).props.columns.iter())
                .copied()
                .collect();
            let (inner, outer) = Self::split_conjuncts(all, &inner_cols);
            let inner_connected = !inner.is_empty();
            // Avoid gratuitous cross products — unless the grouped sides
            // share a remote home (locality grouping).
            if !inner_connected {
                if !ctx.config.enable_locality_grouping {
                    continue;
                }
                let (Some(lb), Some(lc)) = (
                    Self::sole_remote(memo, b_group),
                    Self::sole_remote(memo, c_group),
                ) else {
                    continue;
                };
                if lb != lc {
                    continue;
                }
            }
            let inner_kind = if inner_connected {
                JoinKind::Inner
            } else {
                JoinKind::Cross
            };
            let inner_join = AltExpr::op(
                LogicalOp::Join {
                    kind: inner_kind,
                    predicate: ScalarExpr::and(inner),
                },
                vec![AltExpr::Group(b_group), AltExpr::Group(c_group)],
            );
            let outer_pred = ScalarExpr::and(outer);
            let outer_kind = if outer_pred.is_some() {
                JoinKind::Inner
            } else {
                JoinKind::Cross
            };
            out.push(AltExpr::op(
                LogicalOp::Join {
                    kind: outer_kind,
                    predicate: outer_pred,
                },
                vec![AltExpr::Group(a_group), inner_join],
            ));
        }
        out
    }
}

/// Distinct source localities of a group's leaf tables (derived from its
/// first logical alternative; all alternatives share the same leaves).
pub fn group_localities(memo: &Memo, group: GroupId) -> Vec<Locality> {
    fn walk(memo: &Memo, group: GroupId, out: &mut Vec<Locality>, seen: &mut BTreeSet<u32>) {
        if !seen.insert(group.0) {
            return;
        }
        let Some(&eid) = memo.group(group).exprs.first() else {
            return;
        };
        let expr = memo.expr(eid);
        if let LogicalOp::Get { meta, .. } = &expr.op {
            if !out.contains(&meta.source) {
                out.push(meta.source.clone());
            }
        }
        // Values/EmptyGet contribute Local (they run locally).
        if matches!(
            expr.op,
            LogicalOp::Values { .. } | LogicalOp::EmptyGet { .. }
        ) && !out.contains(&Locality::Local)
        {
            out.push(Locality::Local);
        }
        for &c in &expr.children {
            walk(memo, c, out, seen);
        }
    }
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    walk(memo, group, &mut out, &mut seen);
    out
}

/// The standard exploration rule set, promise-ordered.
pub fn all_rules() -> Vec<Box<dyn ExplorationRule>> {
    let mut rules: Vec<Box<dyn ExplorationRule>> =
        vec![Box::new(JoinCommute), Box::new(JoinAssociate)];
    rules.sort_by_key(|r| std::cmp::Reverse(r.promise()));
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{test_table_meta, LogicalExpr};
    use crate::props::ColumnRegistry;
    use crate::search::OptimizerConfig;
    use dhqp_types::DataType;
    use std::sync::Arc;

    fn ctx_with<'a>(registry: &'a ColumnRegistry, config: &'a OptimizerConfig) -> RuleContext<'a> {
        RuleContext { registry, config }
    }

    #[test]
    fn commute_swaps_children() {
        let mut reg = ColumnRegistry::new();
        let a = test_table_meta(
            0,
            "a",
            Locality::Local,
            &[("x", DataType::Int)],
            &mut reg,
            10,
        );
        let b = test_table_meta(
            1,
            "b",
            Locality::Local,
            &[("y", DataType::Int)],
            &mut reg,
            10,
        );
        let tree = LogicalExpr::join(
            JoinKind::Inner,
            LogicalExpr::get(Arc::clone(&a)),
            LogicalExpr::get(b),
            Some(ScalarExpr::eq(
                ScalarExpr::Column(a.column_id(0)),
                ScalarExpr::Column(ColumnId(1)),
            )),
        );
        let mut memo = Memo::new();
        let root = memo.insert_tree(&tree, &reg);
        let expr = memo.expr(memo.group(root).exprs[0]).clone();
        let config = OptimizerConfig::default();
        let alts = JoinCommute.apply(&expr, root, &memo, &ctx_with(&reg, &config));
        assert_eq!(alts.len(), 1);
        match &alts[0] {
            AltExpr::Op { children, .. } => {
                assert!(matches!(children[0], AltExpr::Group(g) if g == expr.children[1]));
                assert!(matches!(children[1], AltExpr::Group(g) if g == expr.children[0]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn three_way(reg: &mut ColumnRegistry, remote_bc: bool) -> (Memo, GroupId) {
        // A(x) ⋈[x=y] B(y) ⋈[a-connected? no: only A-B predicate] C(z)
        let loc_b = if remote_bc {
            Locality::remote("r0")
        } else {
            Locality::Local
        };
        let loc_c = if remote_bc {
            Locality::remote("r0")
        } else {
            Locality::Local
        };
        let a = test_table_meta(0, "a", Locality::Local, &[("x", DataType::Int)], reg, 10);
        let b = test_table_meta(1, "b", loc_b, &[("y", DataType::Int)], reg, 10);
        let c = test_table_meta(2, "c", loc_c, &[("z", DataType::Int)], reg, 10);
        let ab = LogicalExpr::join(
            JoinKind::Inner,
            LogicalExpr::get(Arc::clone(&a)),
            LogicalExpr::get(Arc::clone(&b)),
            Some(ScalarExpr::eq(
                ScalarExpr::Column(a.column_id(0)),
                ScalarExpr::Column(b.column_id(0)),
            )),
        );
        let abc = LogicalExpr::join(
            JoinKind::Inner,
            ab,
            LogicalExpr::get(Arc::clone(&c)),
            Some(ScalarExpr::eq(
                ScalarExpr::Column(a.column_id(0)),
                ScalarExpr::Column(c.column_id(0)),
            )),
        );
        let mut memo = Memo::new();
        let root = memo.insert_tree(&abc, reg);
        (memo, root)
    }

    #[test]
    fn associate_requires_connecting_predicate_locally() {
        let mut reg = ColumnRegistry::new();
        let (memo, root) = three_way(&mut reg, false);
        let expr = memo.expr(memo.group(root).exprs[0]).clone();
        let config = OptimizerConfig::default();
        // B and C are not connected by any predicate and are local: no
        // alternative (a cross product would be gratuitous).
        let alts = JoinAssociate.apply(&expr, root, &memo, &ctx_with(&reg, &config));
        assert!(alts.is_empty());
    }

    #[test]
    fn locality_grouping_allows_same_server_cross() {
        let mut reg = ColumnRegistry::new();
        let (memo, root) = three_way(&mut reg, true);
        let expr = memo.expr(memo.group(root).exprs[0]).clone();
        let config = OptimizerConfig::default();
        assert!(config.enable_locality_grouping);
        let alts = JoinAssociate.apply(&expr, root, &memo, &ctx_with(&reg, &config));
        assert_eq!(alts.len(), 1, "B⋈C share remote0, grouping is allowed");
        // With the flag off the alternative disappears.
        let config = OptimizerConfig {
            enable_locality_grouping: false,
            ..Default::default()
        };
        let alts = JoinAssociate.apply(&expr, root, &memo, &ctx_with(&reg, &config));
        assert!(alts.is_empty());
    }

    #[test]
    fn group_localities_walks_leaves() {
        let mut reg = ColumnRegistry::new();
        let (memo, root) = three_way(&mut reg, true);
        let locs = group_localities(&memo, root);
        assert_eq!(locs.len(), 2);
    }

    #[test]
    fn guidance_prevents_mismatched_rules() {
        assert!(!JoinCommute.matches(&LogicalOp::Limit { n: 1 }));
        assert!(!JoinAssociate.matches(&LogicalOp::Join {
            kind: JoinKind::LeftOuter,
            predicate: None
        }));
        assert!(JoinCommute.matches(&LogicalOp::Join {
            kind: JoinKind::Cross,
            predicate: None
        }));
    }
}
