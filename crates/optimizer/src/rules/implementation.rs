//! Implementation rules: logical → physical alternatives (paper §4.1.2).
//!
//! "Examples of remote implementation rules are: building SQL statements
//! from trees to run on remote sources, building remote scan/range/fetch,
//! adding spool on top of remote operations." The *build remote query* rule
//! itself is driven from the search loop (it applies to whole groups via
//! the decoder); everything else lives here.

use crate::decoder::Decoder;
use crate::logical::{JoinKind, Locality, LogicalOp, TableMeta};
use crate::memo::{GroupId, MExpr, Memo};
use crate::physical::{IndexRangeSpec, PhysicalOp};
use crate::props::{ColumnId, PhysicalProps, RequiredProps};
use crate::rules::exploration::group_localities;
use crate::rules::{Delivered, PhysAlt, RuleContext};
use crate::scalar::{CmpOp, ScalarExpr};
use crate::search::OptimizationPhase;
use std::sync::Arc;

/// Generate all physical alternatives for one logical expression.
pub fn implementations(
    expr: &MExpr,
    memo: &Memo,
    ctx: &RuleContext<'_>,
    required: &RequiredProps,
    phase: OptimizationPhase,
) -> Vec<PhysAlt> {
    match &expr.op {
        LogicalOp::Get { meta, .. } => implement_get(meta, memo, expr, required),
        LogicalOp::EmptyGet { columns } => {
            vec![PhysAlt::node(
                PhysicalOp::Empty {
                    columns: columns.clone(),
                },
                vec![],
            )]
        }
        LogicalOp::Values { columns, rows } => {
            vec![PhysAlt::node(
                PhysicalOp::Values {
                    columns: columns.clone(),
                    rows: rows.clone(),
                },
                vec![],
            )
            .with_rows(rows.len() as f64)]
        }
        LogicalOp::Filter { predicate } => implement_filter(predicate, expr, memo, required),
        LogicalOp::StartupFilter { predicate } => {
            vec![PhysAlt::node(
                PhysicalOp::StartupFilter {
                    predicate: predicate.clone(),
                },
                vec![PhysAlt::child_with(
                    expr.children[0],
                    RequiredProps::none(),
                    ctx.config.cost.startup_pass_probability,
                )],
            )
            .with_delivered(Delivered::Inherit(0))]
        }
        LogicalOp::Project { outputs } => {
            vec![PhysAlt::node(
                PhysicalOp::Project {
                    outputs: outputs.clone(),
                },
                vec![PhysAlt::child(expr.children[0])],
            )]
        }
        LogicalOp::Join { kind, predicate } => {
            implement_join(*kind, predicate.as_ref(), expr, memo, ctx, required, phase)
        }
        LogicalOp::Aggregate { group_by, aggs } => {
            let mut out = vec![PhysAlt::node(
                PhysicalOp::HashAggregate {
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                },
                vec![PhysAlt::child(expr.children[0])],
            )];
            if phase >= OptimizationPhase::Full && !group_by.is_empty() {
                let ordering: Vec<(ColumnId, bool)> = group_by.iter().map(|&c| (c, true)).collect();
                out.push(
                    PhysAlt::node(
                        PhysicalOp::StreamAggregate {
                            group_by: group_by.clone(),
                            aggs: aggs.clone(),
                        },
                        vec![PhysAlt::child_with(
                            expr.children[0],
                            PhysicalProps::ordered(ordering.clone()),
                            1.0,
                        )],
                    )
                    .with_delivered(Delivered::Keys(ordering)),
                );
            }
            out
        }
        LogicalOp::Limit { n } => {
            // TOP passes its parent's ordering requirement through to its
            // child (ORDER BY + TOP) and preserves it.
            vec![PhysAlt::node(
                PhysicalOp::Top { n: *n },
                vec![PhysAlt::child_with(expr.children[0], required.clone(), 1.0)],
            )
            .with_delivered(Delivered::Keys(required.ordering.clone()))]
        }
        LogicalOp::UnionAll { output } => {
            let input_columns: Vec<Vec<ColumnId>> = expr
                .children
                .iter()
                .map(|&g| memo.group(g).props.columns.clone())
                .collect();
            // Parallel-union rule: when two or more branches reach remote
            // sources, dispatch them concurrently through an Exchange so
            // member servers work in parallel (§4.1.5) instead of paying
            // each link's latency in sequence. The Exchange *replaces* the
            // serial UnionAll (same cost formula) so plan choice stays
            // deterministic under the switch.
            let remote_branches = expr
                .children
                .iter()
                .filter(|&&g| group_localities(memo, g).iter().any(Locality::is_remote))
                .count();
            let op = if ctx.config.enable_parallel_union && remote_branches >= 2 {
                PhysicalOp::Exchange {
                    output: output.clone(),
                    input_columns,
                }
            } else {
                PhysicalOp::UnionAll {
                    output: output.clone(),
                    input_columns,
                }
            };
            vec![PhysAlt::node(
                op,
                expr.children.iter().map(|&g| PhysAlt::child(g)).collect(),
            )]
        }
    }
}

fn implement_get(
    meta: &Arc<TableMeta>,
    _memo: &Memo,
    _expr: &MExpr,
    required: &RequiredProps,
) -> Vec<PhysAlt> {
    let mut out = Vec::new();
    let remote = meta.source.is_remote();
    if remote {
        out.push(PhysAlt::node(
            PhysicalOp::RemoteScan {
                meta: Arc::clone(meta),
            },
            vec![],
        ));
    } else {
        out.push(PhysAlt::node(
            PhysicalOp::TableScan {
                meta: Arc::clone(meta),
            },
            vec![],
        ));
    }
    // An ordered full-index scan when it can satisfy the requirement
    // directly (ascending key order only).
    if !required.ordering.is_empty() && (!remote || meta.caps.index_support) {
        if let Some(index) = index_delivering(meta, &required.ordering) {
            let delivered = Delivered::Keys(required.ordering.clone());
            let op = if remote {
                PhysicalOp::RemoteRange {
                    meta: Arc::clone(meta),
                    index,
                    range: IndexRangeSpec::all(),
                }
            } else {
                PhysicalOp::IndexRange {
                    meta: Arc::clone(meta),
                    index,
                    range: IndexRangeSpec::all(),
                }
            };
            out.push(PhysAlt::node(op, vec![]).with_delivered(delivered));
        }
    }
    out
}

/// Name of an index whose ascending key order satisfies `ordering`.
fn index_delivering(meta: &TableMeta, ordering: &[(ColumnId, bool)]) -> Option<String> {
    'ix: for ix in &meta.indexes {
        if ix.key_columns.len() < ordering.len() {
            continue;
        }
        for (i, (col, asc)) in ordering.iter().enumerate() {
            if !asc {
                continue 'ix;
            }
            let pos = meta.schema.index_of(&ix.key_columns[i]);
            if pos.map(|p| meta.column_id(p)) != Some(*col) {
                continue 'ix;
            }
        }
        return Some(ix.name.clone());
    }
    None
}

fn implement_filter(
    predicate: &ScalarExpr,
    expr: &MExpr,
    memo: &Memo,
    _required: &RequiredProps,
) -> Vec<PhysAlt> {
    let mut out = Vec::new();
    // Column-free predicates become startup filters ("the predicate can be
    // evaluated before the subtree of the filter has been executed").
    if predicate.is_column_free() {
        out.push(
            PhysAlt::node(
                PhysicalOp::StartupFilter {
                    predicate: predicate.clone(),
                },
                vec![PhysAlt::child_with(
                    expr.children[0],
                    RequiredProps::none(),
                    0.5,
                )],
            )
            .with_delivered(Delivered::Inherit(0)),
        );
        return out;
    }
    out.push(
        PhysAlt::node(
            PhysicalOp::Filter {
                predicate: predicate.clone(),
            },
            vec![PhysAlt::child(expr.children[0])],
        )
        .with_delivered(Delivered::Inherit(0)),
    );
    // Index fusion: Filter ∘ Get → (residual Filter ∘) IndexRange.
    let child_group = memo.group(expr.children[0]);
    let child_card = child_group.props.cardinality;
    for &eid in &child_group.exprs {
        let child_expr = memo.expr(eid);
        let LogicalOp::Get { meta, .. } = &child_expr.op else {
            continue;
        };
        let remote = meta.source.is_remote();
        if remote && !meta.caps.index_support {
            continue;
        }
        for ix in &meta.indexes {
            let Some(lead_pos) = meta.schema.index_of(&ix.key_columns[0]) else {
                continue;
            };
            let lead_col = meta.column_id(lead_pos);
            let Some((range, sel)) = sargable_range(predicate, lead_col, child_card) else {
                continue;
            };
            let rows = (child_card * sel).max(1.0);
            let access = if remote {
                PhysicalOp::RemoteRange {
                    meta: Arc::clone(meta),
                    index: ix.name.clone(),
                    range,
                }
            } else {
                PhysicalOp::IndexRange {
                    meta: Arc::clone(meta),
                    index: ix.name.clone(),
                    range,
                }
            };
            // Residual re-check of the full predicate keeps this correct
            // even when the range only partially covers it.
            out.push(PhysAlt::node(
                PhysicalOp::Filter {
                    predicate: predicate.clone(),
                },
                vec![PhysAlt::node(access, vec![]).with_rows(rows)],
            ));
        }
    }
    out
}

/// Derive an index seek range on `col` from the predicate's conjuncts.
/// Returns the range plus a selectivity guess for the range itself.
fn sargable_range(
    predicate: &ScalarExpr,
    col: ColumnId,
    _input_rows: f64,
) -> Option<(IndexRangeSpec, f64)> {
    let mut low: Option<(ScalarExpr, bool)> = None;
    let mut high: Option<(ScalarExpr, bool)> = None;
    let mut eq: Option<ScalarExpr> = None;
    for conj in predicate.conjuncts() {
        let ScalarExpr::Cmp { op, left, right } = &conj else {
            continue;
        };
        let (bound, op) = match (left.as_ref(), right.as_ref()) {
            (ScalarExpr::Column(c), other) if *c == col && other.is_column_free() => {
                (other.clone(), *op)
            }
            (other, ScalarExpr::Column(c)) if *c == col && other.is_column_free() => {
                (other.clone(), op.flip())
            }
            _ => continue,
        };
        match op {
            CmpOp::Eq => eq = Some(bound),
            CmpOp::Gt => low = Some((bound, false)),
            CmpOp::Ge => low = Some((bound, true)),
            CmpOp::Lt => high = Some((bound, false)),
            CmpOp::Le => high = Some((bound, true)),
            CmpOp::Neq => {}
        }
    }
    if let Some(b) = eq {
        return Some((IndexRangeSpec::eq(vec![b]), 0.01));
    }
    match (low, high) {
        (None, None) => None,
        (lo, hi) => {
            let sel = match (&lo, &hi) {
                (Some(_), Some(_)) => 0.1,
                _ => 1.0 / 3.0,
            };
            Some((
                IndexRangeSpec {
                    low: lo.map(|(e, inc)| (vec![e], inc)),
                    high: hi.map(|(e, inc)| (vec![e], inc)),
                },
                sel,
            ))
        }
    }
}

/// Distinct-value estimate for a column within a group.
fn ndv_of(memo: &Memo, group: GroupId, col: ColumnId) -> f64 {
    let props = &memo.group(group).props;
    if props.keys.contains(&col) {
        return props.cardinality.max(1.0);
    }
    props
        .histograms
        .get(&col)
        .map(|h| h.buckets.iter().map(|b| b.distinct).sum::<f64>())
        .unwrap_or(100.0)
        .min(props.cardinality.max(1.0))
}

#[allow(clippy::too_many_arguments)]
fn implement_join(
    kind: JoinKind,
    predicate: Option<&ScalarExpr>,
    expr: &MExpr,
    memo: &Memo,
    ctx: &RuleContext<'_>,
    required: &RequiredProps,
    phase: OptimizationPhase,
) -> Vec<PhysAlt> {
    let (lg, rg) = (expr.children[0], expr.children[1]);
    let l_card = memo.group(lg).props.cardinality.max(1.0);
    let r_card = memo.group(rg).props.cardinality.max(1.0);
    let mut out = Vec::new();

    // Plain nested loops: inner re-opened per outer row.
    out.push(
        PhysAlt::node(
            PhysicalOp::NestedLoopJoin {
                kind,
                predicate: predicate.cloned(),
            },
            vec![
                PhysAlt::child(lg),
                PhysAlt::child_with(rg, RequiredProps::none(), l_card),
            ],
        )
        .with_delivered(Delivered::Inherit(0)),
    );
    // Outer-ordered variant when the parent wants an order the outer side
    // can deliver (nested loops preserve outer order).
    if !required.ordering.is_empty() {
        out.push(
            PhysAlt::node(
                PhysicalOp::NestedLoopJoin {
                    kind,
                    predicate: predicate.cloned(),
                },
                vec![
                    PhysAlt::child_with(lg, required.clone(), 1.0),
                    PhysAlt::child_with(rg, RequiredProps::none(), l_card),
                ],
            )
            .with_delivered(Delivered::Keys(required.ordering.clone())),
        );
    }

    if phase >= OptimizationPhase::QuickPlan {
        // Spool over the inner child: materialize once, replay per rescan —
        // "it is often beneficial to spool results from a remote source if
        // multiple scans of the data are expected" (§4.1.4).
        if ctx.config.enable_spool {
            let spool_cost = r_card * ctx.config.cost.spool_write_row
                + (l_card - 1.0).max(0.0) * r_card * ctx.config.cost.spool_read_row;
            out.push(
                PhysAlt::node(
                    PhysicalOp::NestedLoopJoin {
                        kind,
                        predicate: predicate.cloned(),
                    },
                    vec![
                        PhysAlt::child(lg),
                        PhysAlt::node(PhysicalOp::Spool, vec![PhysAlt::child(rg)])
                            .with_rows(r_card)
                            .with_extra_cost(spool_cost),
                    ],
                )
                .with_delivered(Delivered::Inherit(0)),
            );
        }

        let equi = predicate
            .map(|p| {
                crate::cardinality::equi_key_columns(
                    p,
                    &memo.group(lg).props,
                    &memo.group(rg).props,
                )
            })
            .unwrap_or_default();
        if !equi.is_empty() && kind != JoinKind::Cross {
            let left_keys: Vec<ScalarExpr> =
                equi.iter().map(|(l, _)| ScalarExpr::Column(*l)).collect();
            let right_keys: Vec<ScalarExpr> =
                equi.iter().map(|(_, r)| ScalarExpr::Column(*r)).collect();
            out.push(PhysAlt::node(
                PhysicalOp::HashJoin {
                    kind,
                    left_keys,
                    right_keys,
                    residual: predicate.cloned(),
                },
                vec![PhysAlt::child(lg), PhysAlt::child(rg)],
            ));
            // Merge join needs both inputs sorted on the keys.
            if phase >= OptimizationPhase::Full && kind == JoinKind::Inner {
                let l_order: Vec<(ColumnId, bool)> = equi.iter().map(|(l, _)| (*l, true)).collect();
                let r_order: Vec<(ColumnId, bool)> = equi.iter().map(|(_, r)| (*r, true)).collect();
                out.push(
                    PhysAlt::node(
                        PhysicalOp::MergeJoin {
                            left_keys: equi.iter().map(|(l, _)| *l).collect(),
                            right_keys: equi.iter().map(|(_, r)| *r).collect(),
                            residual: predicate.cloned(),
                        },
                        vec![
                            PhysAlt::child_with(lg, PhysicalProps::ordered(l_order.clone()), 1.0),
                            PhysAlt::child_with(rg, PhysicalProps::ordered(r_order), 1.0),
                        ],
                    )
                    .with_delivered(Delivered::Keys(l_order)),
                );
            }
            // Parameterized remote access (§4.1.2 "parameterization enables
            // pushing parameters into the remote sources"): drive the inner
            // remote side with the outer join key.
            if ctx.config.enable_remote_param && matches!(kind, JoinKind::Inner | JoinKind::Semi) {
                out.extend(param_remote_variants(
                    kind, predicate, lg, rg, &equi, memo, ctx, l_card,
                ));
            }
            // Semi-join reduction (§4.1.5 byte minimization): drain the
            // small build side at drive time, ship its distinct join keys
            // as an `IN`-list spliced into the remote statement, and
            // hash-join the reduced result back against the build rows.
            if ctx.config.enable_semijoin && matches!(kind, JoinKind::Inner | JoinKind::Semi) {
                out.extend(semijoin_reduce_variants(
                    kind, predicate, lg, rg, &equi, memo, ctx, l_card,
                ));
            }
        }
    }
    out
}

/// Build a semi-join-reduction alternative when the right group lives
/// wholly on one SQL-capable remote server and the left (build) side's
/// key count fits under the IN-list ceiling.
#[allow(clippy::too_many_arguments)]
fn semijoin_reduce_variants(
    kind: JoinKind,
    predicate: Option<&ScalarExpr>,
    lg: GroupId,
    rg: GroupId,
    equi: &[(ColumnId, ColumnId)],
    memo: &Memo,
    ctx: &RuleContext<'_>,
    l_card: f64,
) -> Vec<PhysAlt> {
    let locs = group_localities(memo, rg);
    if locs.len() != 1 || !locs[0].is_remote() {
        return Vec::new();
    }
    let server = locs[0].server_name().expect("remote locality").to_string();
    let Some(caps) = ctx.config.server_caps.get(&server) else {
        return Vec::new();
    };
    // The reduced statement wraps the base SELECT as a derived table with
    // an IN predicate, so the provider must speak at least ODBC Core with
    // nested selects.
    if caps.sql_support < dhqp_oledb::SqlSupport::OdbcCore
        || caps.proprietary_command
        || !caps.dialect.nested_select
    {
        return Vec::new();
    }
    // Past the IN-list ceiling the reduction never pays; don't offer it —
    // this is the Fig.-4-style crossover as the build side scales.
    if ndv_of(memo, lg, equi[0].0) > ctx.config.semijoin_max_keys as f64 {
        return Vec::new();
    }
    let (build_col, probe_col) = equi[0];
    let mut decoder = Decoder::new(memo, ctx.registry, caps, &server);
    let Some(remote) = decoder.build(rg, None, &[], &[], None) else {
        return Vec::new();
    };
    let _ = l_card;
    // Wire cost of the reduced fetch, charged here where the probe group's
    // cardinality is visible: the remote returns the right group filtered
    // by the shipped keys — `r_card × keys/ndv(probe)` rows — NOT the final
    // join output (the local join-back does that reduction). This is the
    // cardinality-dependent crossover: as the build side's key count grows
    // toward the probe side's distinct count, the reduction stops paying.
    let r_card = memo.group(rg).props.cardinality.max(1.0);
    let r_width = memo.group(rg).props.row_width;
    let keys = ndv_of(memo, lg, build_col);
    let probe_ndv = ndv_of(memo, rg, probe_col).max(1.0);
    let fetch_rows = r_card * (keys / probe_ndv).min(1.0);
    let wire = ctx
        .config
        .cost
        .semijoin_remote(caps, keys, fetch_rows, r_width, r_card);
    vec![PhysAlt::node(
        PhysicalOp::SemiJoinReduce {
            kind,
            build_key: build_col,
            probe_key: probe_col,
            residual: predicate.cloned(),
            server: Arc::from(server.as_str()),
            sql: remote.sql,
            columns: remote.columns,
            params: remote.params,
            max_keys: ctx.config.semijoin_max_keys,
        },
        vec![PhysAlt::child(lg)],
    )
    .with_extra_cost(wire + fetch_rows * ctx.config.cost.hash_probe_row)]
}

/// Build parameterized inner-side alternatives for a join whose inner group
/// lives wholly on one remote server.
#[allow(clippy::too_many_arguments)]
fn param_remote_variants(
    kind: JoinKind,
    predicate: Option<&ScalarExpr>,
    lg: GroupId,
    rg: GroupId,
    equi: &[(ColumnId, ColumnId)],
    memo: &Memo,
    ctx: &RuleContext<'_>,
    l_card: f64,
) -> Vec<PhysAlt> {
    let locs = group_localities(memo, rg);
    if locs.len() != 1 || !locs[0].is_remote() {
        return Vec::new();
    }
    let server = locs[0].server_name().expect("remote locality").to_string();
    let Some(caps) = ctx.config.server_caps.get(&server) else {
        return Vec::new();
    };
    let (outer_col, inner_col) = equi[0];
    let r_card = memo.group(rg).props.cardinality.max(1.0);
    let per_probe = (r_card / ndv_of(memo, rg, inner_col)).max(1.0);
    let mut out = Vec::new();

    // (a) Remote query with a correlation parameter.
    if caps.sql_support >= dhqp_oledb::SqlSupport::Minimum && !caps.proprietary_command {
        let mut decoder = Decoder::new(memo, ctx.registry, caps, &server);
        let corr = ScalarExpr::eq(
            ScalarExpr::Column(inner_col),
            ScalarExpr::Param("__corr0".into()),
        );
        if let Some(remote) =
            decoder.build(rg, Some(&corr), &[("__corr0".into(), outer_col)], &[], None)
        {
            let inner = PhysAlt::node(
                PhysicalOp::RemoteQuery {
                    server: Arc::from(server.as_str()),
                    sql: remote.sql,
                    columns: remote.columns,
                    params: remote.params,
                },
                vec![],
            )
            .with_rows(per_probe)
            .with_multiplier(l_card);
            out.push(
                PhysAlt::node(
                    PhysicalOp::NestedLoopJoin {
                        kind,
                        predicate: predicate.cloned(),
                    },
                    vec![PhysAlt::child(lg), inner],
                )
                .with_delivered(Delivered::Inherit(0)),
            );
        }
    }

    // (b) Remote index range keyed by the outer column — works even for
    // providers with no SQL support at all, as long as they expose indexes.
    if caps.index_support {
        for &eid in &memo.group(rg).exprs {
            let LogicalOp::Get { meta, .. } = &memo.expr(eid).op else {
                continue;
            };
            let Some(ix) = meta.indexes.iter().find(|ix| {
                meta.schema
                    .index_of(&ix.key_columns[0])
                    .map(|p| meta.column_id(p))
                    == Some(inner_col)
            }) else {
                continue;
            };
            let inner = PhysAlt::node(
                PhysicalOp::RemoteRange {
                    meta: Arc::clone(meta),
                    index: ix.name.clone(),
                    range: IndexRangeSpec::eq(vec![ScalarExpr::Column(outer_col)]),
                },
                vec![],
            )
            .with_rows(per_probe)
            .with_multiplier(l_card);
            out.push(
                PhysAlt::node(
                    PhysicalOp::NestedLoopJoin {
                        kind,
                        predicate: predicate.cloned(),
                    },
                    vec![PhysAlt::child(lg), inner],
                )
                .with_delivered(Delivered::Inherit(0)),
            );
            break;
        }
    }
    out
}
