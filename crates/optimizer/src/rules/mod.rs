//! The rule engine: simplification, exploration and implementation rules
//! (paper §4.1.1–§4.1.2).
//!
//! * **Simplification rules** ([`simplify`]) are heuristic tree rewrites
//!   run before memo insertion — predicate splitting and pushdown,
//!   constant folding, static partition pruning and startup-filter
//!   introduction. SQL Server runs these in the same rule framework; we
//!   run them as a deterministic normalization pass with the same effect.
//! * **Exploration rules** ([`exploration`]) generate logical alternatives
//!   inside the memo: join commutation, locality-aware join association.
//! * **Implementation rules** ([`implementation`]) generate physical
//!   alternatives, including the remote family (*build remote query* is
//!   driven from the search loop via the decoder; *remote scan/range*,
//!   parameterized remote access and *spool over remote* live here).

pub mod exploration;
pub mod implementation;
pub mod simplify;

use crate::memo::GroupId;
use crate::physical::PhysicalOp;
use crate::props::{ColumnId, ColumnRegistry, RequiredProps};

/// What a physical alternative delivers in terms of ordering.
#[derive(Debug, Clone, PartialEq)]
pub enum Delivered {
    /// No guaranteed order.
    None,
    /// The ordering the node itself establishes (Sort, IndexRange, remote
    /// ORDER BY, merge join output).
    Keys(Vec<(ColumnId, bool)>),
    /// Passes through the order required of (and therefore delivered by)
    /// child `usize`.
    Inherit(usize),
}

/// A physical alternative produced by an implementation rule: a small tree
/// of concrete operators whose leaves either are self-contained (remote
/// queries, scans) or reference memo groups still to be optimized.
// `Node` dwarfs `ChildRef` because `PhysicalOp` inlines remote statement
// text; alternatives are short-lived rule outputs (a handful per group),
// so boxing would cost more churn than the padding costs in memory.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum PhysAlt {
    Node {
        op: PhysicalOp,
        /// Estimated output rows of this node (rule-supplied; the root node
        /// of an alternative may leave it 0 to inherit the group estimate).
        est_rows: f64,
        /// Additional cost beyond the standard per-op formula (e.g. spool
        /// rescan totals baked in by the rule).
        extra_cost: f64,
        /// Multiplier applied to this subtree's total cost (nested-loop
        /// rescans of an inner child).
        multiplier: f64,
        children: Vec<PhysAlt>,
        delivered: Delivered,
    },
    /// A child still to be optimized: `(group, required properties,
    /// rescan multiplier)`.
    ChildRef {
        group: GroupId,
        required: RequiredProps,
        multiplier: f64,
    },
}

impl PhysAlt {
    pub fn node(op: PhysicalOp, children: Vec<PhysAlt>) -> PhysAlt {
        PhysAlt::Node {
            op,
            est_rows: 0.0,
            extra_cost: 0.0,
            multiplier: 1.0,
            children,
            delivered: Delivered::None,
        }
    }

    pub fn child(group: GroupId) -> PhysAlt {
        PhysAlt::ChildRef {
            group,
            required: RequiredProps::none(),
            multiplier: 1.0,
        }
    }

    pub fn child_with(group: GroupId, required: RequiredProps, multiplier: f64) -> PhysAlt {
        PhysAlt::ChildRef {
            group,
            required,
            multiplier,
        }
    }

    pub fn with_delivered(mut self, d: Delivered) -> PhysAlt {
        if let PhysAlt::Node { delivered, .. } = &mut self {
            *delivered = d;
        }
        self
    }

    pub fn with_rows(mut self, rows: f64) -> PhysAlt {
        if let PhysAlt::Node { est_rows, .. } = &mut self {
            *est_rows = rows;
        }
        self
    }

    pub fn with_extra_cost(mut self, cost: f64) -> PhysAlt {
        if let PhysAlt::Node { extra_cost, .. } = &mut self {
            *extra_cost = cost;
        }
        self
    }

    pub fn with_multiplier(mut self, m: f64) -> PhysAlt {
        match &mut self {
            PhysAlt::Node { multiplier, .. } => *multiplier = m,
            PhysAlt::ChildRef { multiplier, .. } => *multiplier = m,
        }
        self
    }
}

/// Context shared by rule invocations.
pub struct RuleContext<'a> {
    pub registry: &'a ColumnRegistry,
    pub config: &'a crate::search::OptimizerConfig,
}
