//! Simplification: heuristic logical-tree rewrites run before memo
//! insertion (paper §4.1.1 "Simplification Rules perform heuristic tree
//! rewrites, generally early in the optimization process").
//!
//! Passes, in order:
//! 1. **Predicate split & pushdown** — conjuncts migrate toward the leaves:
//!    through projections (with substitution), into both sides of inner
//!    joins, into the preserved side of outer joins, into every branch of a
//!    UNION ALL (the partitioned-view path), merging adjacent filters. The
//!    paper's *splitting/merging predicates based on remotability* falls
//!    out of this: once split, each conjunct independently lands in the
//!    largest remotable subtree.
//! 2. **Constant folding** — literal-only predicates collapse to
//!    TRUE/FALSE; a FALSE filter becomes an `EmptyGet`.
//! 3. **Static partition pruning** (§4.1.5) — a filter contradicting a
//!    `Get`'s CHECK-constraint domains reduces the subtree to `EmptyGet`;
//!    empty UNION ALL branches are dropped.
//! 4. **Startup-filter introduction** (§4.1.5) — parameterized equality
//!    predicates over CHECK-constrained columns gain a column-free
//!    `STARTUP(@p IN domain)` guard so pruning can happen at execution
//!    time.
//! 5. **Column pruning** — projections are pushed over base-table gets so
//!    only the columns a query actually consumes are produced; for remote
//!    tables this directly narrows the decoded SELECT list and therefore
//!    the wire traffic the cost model minimizes.
//! 6. **Partial aggregation through UNION ALL** — an aggregate over a
//!    partitioned view splits into per-member partial aggregates combined
//!    by a global aggregate, so each member ships one row per group
//!    instead of its raw rows (COUNT becomes SUM of partial counts).

use crate::logical::{JoinKind, LogicalExpr, LogicalOp};
use crate::props::{ColumnId, ColumnRegistry};
use crate::scalar::{AggCall, AggFunc, CmpOp, ScalarExpr};
use dhqp_types::{DataType, Value};
use std::collections::{BTreeSet, HashMap};

/// Options controlling which simplification passes run (ablation hooks).
#[derive(Debug, Clone)]
pub struct SimplifyOptions {
    pub pushdown: bool,
    pub constraint_pruning: bool,
    pub startup_filters: bool,
    pub column_pruning: bool,
    pub partial_aggregates: bool,
}

impl Default for SimplifyOptions {
    fn default() -> Self {
        SimplifyOptions {
            pushdown: true,
            constraint_pruning: true,
            startup_filters: true,
            column_pruning: true,
            partial_aggregates: true,
        }
    }
}

/// Run all enabled simplification passes.
pub fn simplify(
    tree: LogicalExpr,
    opts: &SimplifyOptions,
    registry: &mut ColumnRegistry,
) -> LogicalExpr {
    let tree = if opts.pushdown {
        push_filters(tree)
    } else {
        tree
    };
    let tree = fold_constants(tree);
    let tree = if opts.constraint_pruning {
        prune_static(tree)
    } else {
        tree
    };
    let tree = if opts.startup_filters {
        introduce_startup_filters(tree)
    } else {
        tree
    };
    let tree = if opts.partial_aggregates {
        split_union_aggregates(tree, registry)
    } else {
        tree
    };
    if opts.column_pruning {
        prune_columns(tree, None)
    } else {
        tree
    }
}

// ---------------------------------------------------------------------------
// pass: partial aggregation through UNION ALL (partitioned views)
// ---------------------------------------------------------------------------

/// Split `Aggregate(UnionAll(b1..bn))` into
/// `AggregateGlobal(UnionAll(AggregatePartial(b1)..))`.
///
/// Applies to COUNT(*)/COUNT/SUM/MIN/MAX without DISTINCT; AVG and
/// DISTINCT aggregates keep the original shape. The payoff is the
/// partitioned-view case: each (possibly remote) member computes its
/// partial rows, so one row per group crosses each link instead of the
/// member's raw rows.
fn split_union_aggregates(tree: LogicalExpr, registry: &mut ColumnRegistry) -> LogicalExpr {
    let LogicalExpr { op, children } = tree;
    let mut children: Vec<LogicalExpr> = children
        .into_iter()
        .map(|c| split_union_aggregates(c, registry))
        .collect();
    let LogicalOp::Aggregate { group_by, aggs } = op else {
        return LogicalExpr { op, children };
    };
    let rebuild = |children: Vec<LogicalExpr>, group_by: Vec<ColumnId>, aggs: Vec<AggCall>| {
        LogicalExpr::new(LogicalOp::Aggregate { group_by, aggs }, children)
    };
    // Only directly over a union with at least two branches.
    let is_union =
        matches!(children[0].op, LogicalOp::UnionAll { .. }) && children[0].children.len() >= 2;
    if !is_union {
        return rebuild(children, group_by, aggs);
    }
    let splittable = aggs.iter().all(|a| {
        !a.distinct
            && matches!(
                a.func,
                AggFunc::CountStar | AggFunc::Count | AggFunc::Sum | AggFunc::Min | AggFunc::Max
            )
    });
    if !splittable {
        return rebuild(children, group_by, aggs);
    }
    let union = children.pop().expect("aggregate child");
    let LogicalOp::UnionAll { output: union_out } = &union.op else {
        unreachable!()
    };
    let union_out = union_out.clone();
    // Group columns must be plain union outputs (they are, by construction
    // of the binder: group exprs get pre-projected).
    let group_positions: Option<Vec<usize>> = group_by
        .iter()
        .map(|g| union_out.iter().position(|u| u == g))
        .collect();
    let Some(group_positions) = group_positions else {
        return rebuild(vec![union], group_by, aggs);
    };
    // Fresh ids for the partial-aggregate columns flowing through the new
    // union.
    let partial_ids: Vec<ColumnId> = aggs
        .iter()
        .map(|a| {
            let ty = match a.func {
                AggFunc::CountStar | AggFunc::Count => DataType::Int,
                _ => a
                    .arg
                    .as_ref()
                    .and_then(|e| crate::decoder::static_type(e, registry))
                    .unwrap_or(DataType::Float),
            };
            registry.allocate(format!("partial_{}", a.output.0), "", ty, true)
        })
        .collect();
    // Per-branch partial aggregates.
    let mut new_branches = Vec::with_capacity(union.children.len());
    for branch in union.children {
        let branch_cols = branch.output_columns();
        let map_col = |id: ColumnId| -> ScalarExpr {
            match union_out.iter().position(|u| *u == id) {
                Some(pos) => ScalarExpr::Column(branch_cols[pos]),
                None => ScalarExpr::Column(id),
            }
        };
        let branch_groups: Vec<ColumnId> =
            group_positions.iter().map(|&p| branch_cols[p]).collect();
        let branch_aggs: Vec<AggCall> = aggs
            .iter()
            .map(|a| {
                // Partial output ids are per-union-level; each branch can
                // reuse them because UnionAll maps children positionally.
                AggCall {
                    func: a.func,
                    arg: a.arg.as_ref().map(|e| e.map_columns(&mut |c| map_col(c))),
                    distinct: false,
                    output: registry.allocate("bpartial", "", DataType::Float, true),
                }
            })
            .collect();
        new_branches.push(branch.aggregate(branch_groups, branch_aggs));
    }
    // Mid-level union: group columns keep their original (view-level) ids,
    // partial aggregates get the fresh ids.
    let mut mid_out: Vec<ColumnId> = group_by.clone();
    mid_out.extend(partial_ids.iter().copied());
    let mid_union = LogicalExpr::new(LogicalOp::UnionAll { output: mid_out }, new_branches);
    // Global combination.
    let global_aggs: Vec<AggCall> = aggs
        .iter()
        .zip(&partial_ids)
        .map(|(a, &pid)| {
            let func = match a.func {
                AggFunc::CountStar | AggFunc::Count | AggFunc::Sum => AggFunc::Sum,
                AggFunc::Min => AggFunc::Min,
                AggFunc::Max => AggFunc::Max,
                AggFunc::Avg => unreachable!("filtered above"),
            };
            AggCall {
                func,
                arg: Some(ScalarExpr::Column(pid)),
                distinct: false,
                output: a.output,
            }
        })
        .collect();
    mid_union.aggregate(group_by, global_aggs)
}

// ---------------------------------------------------------------------------
// pass 5: column pruning
// ---------------------------------------------------------------------------

/// Narrow base-table outputs to the columns actually consumed above.
/// `required = None` means "everything" (at the root, the caller's own
/// projection defines its needs).
fn prune_columns(tree: LogicalExpr, required: Option<&BTreeSet<ColumnId>>) -> LogicalExpr {
    let LogicalExpr { op, children } = tree;
    match op {
        LogicalOp::Project { outputs } => {
            let mut needed = BTreeSet::new();
            for (_, e) in &outputs {
                needed.extend(e.columns());
            }
            let child = children.into_iter().next().expect("project child");
            LogicalExpr::new(
                LogicalOp::Project { outputs },
                vec![prune_columns(child, Some(&needed))],
            )
        }
        LogicalOp::Filter { predicate } => {
            let needed = required.map(|r| {
                let mut n = r.clone();
                n.extend(predicate.columns());
                n
            });
            let child = children.into_iter().next().expect("filter child");
            let pruned = prune_columns(child, needed.as_ref());
            // Keep Filter directly over Get (index fusion relies on that
            // shape): hoist a pruning projection above the filter instead
            // of leaving it between them.
            if let LogicalOp::Project { outputs } = &pruned.op {
                if matches!(pruned.children[0].op, LogicalOp::Get { .. }) {
                    let outputs = outputs.clone();
                    let get = pruned.children.into_iter().next().expect("project child");
                    return LogicalExpr::new(LogicalOp::Filter { predicate }, vec![get])
                        .project(outputs);
                }
            }
            LogicalExpr::new(LogicalOp::Filter { predicate }, vec![pruned])
        }
        LogicalOp::StartupFilter { predicate } => {
            // Startup predicates are column-free; pass requirements through.
            let child = children.into_iter().next().expect("startup child");
            LogicalExpr::new(
                LogicalOp::StartupFilter { predicate },
                vec![prune_columns(child, required)],
            )
        }
        LogicalOp::Limit { n } => {
            let child = children.into_iter().next().expect("limit child");
            LogicalExpr::new(LogicalOp::Limit { n }, vec![prune_columns(child, required)])
        }
        LogicalOp::Join { kind, predicate } => {
            let needed = required.map(|r| {
                let mut n = r.clone();
                if let Some(p) = &predicate {
                    n.extend(p.columns());
                }
                n
            });
            let pruned: Vec<LogicalExpr> = children
                .into_iter()
                .map(|c| prune_columns(c, needed.as_ref()))
                .collect();
            LogicalExpr::new(LogicalOp::Join { kind, predicate }, pruned)
        }
        LogicalOp::Aggregate { group_by, aggs } => {
            let mut needed: BTreeSet<ColumnId> = group_by.iter().copied().collect();
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    needed.extend(arg.columns());
                }
            }
            let child = children.into_iter().next().expect("aggregate child");
            LogicalExpr::new(
                LogicalOp::Aggregate { group_by, aggs },
                vec![prune_columns(child, Some(&needed))],
            )
        }
        LogicalOp::UnionAll { output } => {
            // Do not narrow the view's own output (positional mapping);
            // each branch still needs the columns feeding all outputs, but
            // a branch may prune anything beyond its own column list —
            // which is exactly its full list, so simply recurse with the
            // per-branch feeding columns.
            let pruned: Vec<LogicalExpr> = children
                .into_iter()
                .map(|branch| {
                    let branch_cols: BTreeSet<ColumnId> =
                        branch.output_columns().into_iter().collect();
                    prune_columns(branch, Some(&branch_cols))
                })
                .collect();
            LogicalExpr::new(LogicalOp::UnionAll { output }, pruned)
        }
        LogicalOp::Get { meta, columns } => {
            let get = LogicalExpr::new(
                LogicalOp::Get {
                    meta,
                    columns: columns.clone(),
                },
                vec![],
            );
            match required {
                Some(req) if !columns.iter().all(|c| req.contains(c)) => {
                    // Keep canonical (schema) order among the kept columns.
                    let kept: Vec<(ColumnId, ScalarExpr)> = columns
                        .iter()
                        .filter(|c| req.contains(c))
                        .map(|&c| (c, ScalarExpr::Column(c)))
                        .collect();
                    if kept.is_empty() {
                        // Something above still needs a row count (e.g.
                        // COUNT(*)): keep one narrow column.
                        let first = columns[0];
                        return get.project(vec![(first, ScalarExpr::Column(first))]);
                    }
                    get.project(kept)
                }
                _ => get,
            }
        }
        other => LogicalExpr {
            op: other,
            children,
        },
    }
}

// ---------------------------------------------------------------------------
// pass 1: predicate pushdown
// ---------------------------------------------------------------------------

fn push_filters(tree: LogicalExpr) -> LogicalExpr {
    let LogicalExpr { op, children } = tree;
    // Rewrite children first.
    let mut children: Vec<LogicalExpr> = children.into_iter().map(push_filters).collect();
    match op {
        LogicalOp::Filter { predicate } => {
            let child = children.pop().expect("filter has one child");
            push_predicate_into(predicate.conjuncts(), child)
        }
        other => LogicalExpr {
            op: other,
            children,
        },
    }
}

/// Push a set of conjuncts into `child`, leaving what cannot sink as a
/// Filter above it.
fn push_predicate_into(conjuncts: Vec<ScalarExpr>, child: LogicalExpr) -> LogicalExpr {
    match child.op.clone() {
        LogicalOp::Filter { predicate } => {
            // Merge with the lower filter and retry as one unit.
            let mut all = predicate.conjuncts();
            all.extend(conjuncts);
            let grand = child
                .children
                .into_iter()
                .next()
                .expect("filter has one child");
            push_predicate_into(all, grand)
        }
        LogicalOp::Project { outputs } => {
            // Substitute projection definitions into the predicate, then
            // push below.
            let defs: HashMap<ColumnId, ScalarExpr> = outputs.iter().cloned().collect();
            let substituted: Vec<ScalarExpr> = conjuncts
                .iter()
                .map(|c| {
                    c.map_columns(&mut |id| {
                        defs.get(&id).cloned().unwrap_or(ScalarExpr::Column(id))
                    })
                })
                .collect();
            let grand = child
                .children
                .into_iter()
                .next()
                .expect("project has one child");
            let pushed = push_predicate_into(substituted, grand);
            LogicalExpr::new(LogicalOp::Project { outputs }, vec![pushed])
        }
        LogicalOp::Join { kind, predicate } => {
            let mut kids = child.children.into_iter();
            let left = kids.next().expect("join has two children");
            let right = kids.next().expect("join has two children");
            let left_cols: BTreeSet<ColumnId> = left.output_columns().into_iter().collect();
            let right_cols: BTreeSet<ColumnId> = right.output_columns().into_iter().collect();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut to_join = Vec::new();
            let mut stay = Vec::new();
            for c in conjuncts {
                let cols = c.columns();
                let only_left = cols.iter().all(|x| left_cols.contains(x));
                let only_right = cols.iter().all(|x| right_cols.contains(x));
                match kind {
                    JoinKind::Inner | JoinKind::Cross => {
                        if only_left && !cols.is_empty() {
                            to_left.push(c);
                        } else if only_right && !cols.is_empty() {
                            to_right.push(c);
                        } else {
                            to_join.push(c);
                        }
                    }
                    JoinKind::Semi | JoinKind::Anti => {
                        // Output is left-only; all filter conjuncts reference
                        // left columns (or are column-free).
                        if only_left && !cols.is_empty() {
                            to_left.push(c);
                        } else {
                            stay.push(c);
                        }
                    }
                    JoinKind::LeftOuter => {
                        if only_left && !cols.is_empty() {
                            to_left.push(c);
                        } else {
                            // Pushing right/mixed predicates through a left
                            // outer join is not semantics-preserving.
                            stay.push(c);
                        }
                    }
                }
            }
            let left = if to_left.is_empty() {
                left
            } else {
                push_predicate_into(to_left, left)
            };
            let right = if to_right.is_empty() {
                right
            } else {
                push_predicate_into(to_right, right)
            };
            // Merge join-spanning conjuncts into the join predicate; a
            // cross join gaining a predicate becomes an inner join.
            let (kind, predicate) = if to_join.is_empty() {
                (kind, predicate)
            } else {
                let mut all = predicate.map(|p| p.conjuncts()).unwrap_or_default();
                all.extend(to_join);
                let kind = if kind == JoinKind::Cross {
                    JoinKind::Inner
                } else {
                    kind
                };
                (kind, ScalarExpr::and(all))
            };
            let join = LogicalExpr::join(kind, left, right, predicate);
            wrap_filter(join, stay)
        }
        LogicalOp::UnionAll { output } => {
            // Clone the predicate into every branch, remapping the view's
            // output columns to each member's columns by position.
            let new_children: Vec<LogicalExpr> = child
                .children
                .into_iter()
                .map(|branch| {
                    let branch_cols = branch.output_columns();
                    let remapped: Vec<ScalarExpr> = conjuncts
                        .iter()
                        .map(|c| {
                            c.map_columns(&mut |id| match output.iter().position(|&o| o == id) {
                                Some(pos) => ScalarExpr::Column(branch_cols[pos]),
                                None => ScalarExpr::Column(id),
                            })
                        })
                        .collect();
                    push_predicate_into(remapped, branch)
                })
                .collect();
            LogicalExpr::new(LogicalOp::UnionAll { output }, new_children)
        }
        // Leaves and everything else: the filter stays here.
        _ => wrap_filter(child, conjuncts),
    }
}

fn wrap_filter(child: LogicalExpr, conjuncts: Vec<ScalarExpr>) -> LogicalExpr {
    match ScalarExpr::and(conjuncts) {
        Some(p) => child.filter(p),
        None => child,
    }
}

// ---------------------------------------------------------------------------
// pass 2: constant folding
// ---------------------------------------------------------------------------

/// Evaluate a literal-only boolean expression; `None` when it references
/// columns/params or evaluates to UNKNOWN.
fn const_eval(e: &ScalarExpr) -> Option<bool> {
    match e {
        ScalarExpr::Literal(Value::Bool(b)) => Some(*b),
        ScalarExpr::Cmp { op, left, right } => {
            let (ScalarExpr::Literal(l), ScalarExpr::Literal(r)) = (left.as_ref(), right.as_ref())
            else {
                return None;
            };
            let ord = l.sql_cmp(r)?;
            Some(match op {
                CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                CmpOp::Neq => ord != std::cmp::Ordering::Equal,
                CmpOp::Lt => ord == std::cmp::Ordering::Less,
                CmpOp::Le => ord != std::cmp::Ordering::Greater,
                CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                CmpOp::Ge => ord != std::cmp::Ordering::Less,
            })
        }
        ScalarExpr::Not(inner) => const_eval(inner).map(|b| !b),
        ScalarExpr::And(list) => {
            let vals: Vec<Option<bool>> = list.iter().map(const_eval).collect();
            if vals.contains(&Some(false)) {
                Some(false)
            } else if vals.iter().all(|v| *v == Some(true)) {
                Some(true)
            } else {
                None
            }
        }
        ScalarExpr::Or(list) => {
            let vals: Vec<Option<bool>> = list.iter().map(const_eval).collect();
            if vals.contains(&Some(true)) {
                Some(true)
            } else if vals.iter().all(|v| *v == Some(false)) {
                Some(false)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn fold_constants(tree: LogicalExpr) -> LogicalExpr {
    let LogicalExpr { op, children } = tree;
    let children: Vec<LogicalExpr> = children.into_iter().map(fold_constants).collect();
    if let LogicalOp::Filter { predicate } = &op {
        let mut kept = Vec::new();
        for c in predicate.conjuncts() {
            match const_eval(&c) {
                Some(true) => {}
                Some(false) => {
                    let columns = children[0].output_columns();
                    return LogicalExpr::new(LogicalOp::EmptyGet { columns }, vec![]);
                }
                None => kept.push(c),
            }
        }
        let child = children.into_iter().next().expect("filter has one child");
        return wrap_filter(child, kept);
    }
    LogicalExpr { op, children }
}

// ---------------------------------------------------------------------------
// pass 3: static partition pruning (constraint property framework)
// ---------------------------------------------------------------------------

fn prune_static(tree: LogicalExpr) -> LogicalExpr {
    let LogicalExpr { op, children } = tree;
    let mut children: Vec<LogicalExpr> = children.into_iter().map(prune_static).collect();
    match op {
        LogicalOp::Filter { predicate } => {
            let child = &children[0];
            // Contradiction test: for each referenced column, intersect the
            // predicate's implied domain with the child's CHECK domain.
            if let Some(domains) = get_check_domains(child) {
                for col in predicate.columns() {
                    if let Some(check) = domains.get(&col) {
                        let pred_dom = predicate.domain_for(col);
                        if !check.intersects(&pred_dom) {
                            let columns = child.output_columns();
                            return LogicalExpr::new(LogicalOp::EmptyGet { columns }, vec![]);
                        }
                    }
                }
            }
            LogicalExpr::new(LogicalOp::Filter { predicate }, children)
        }
        LogicalOp::UnionAll { output } => {
            let live: Vec<LogicalExpr> = children
                .drain(..)
                .filter(|c| !matches!(c.op, LogicalOp::EmptyGet { .. }))
                .collect();
            match live.len() {
                0 => LogicalExpr::new(LogicalOp::EmptyGet { columns: output }, vec![]),
                // A single surviving member needs no union: a projection
                // renames its columns to the view's outputs, leaving the
                // member subtree free to be pushed whole to its server.
                1 => {
                    let branch = live.into_iter().next().expect("len checked");
                    let branch_cols = branch.output_columns();
                    let outputs = output
                        .iter()
                        .zip(branch_cols)
                        .map(|(&o, b)| (o, ScalarExpr::Column(b)))
                        .collect();
                    branch.project(outputs)
                }
                _ => LogicalExpr::new(LogicalOp::UnionAll { output }, live),
            }
        }
        LogicalOp::Join { kind, .. }
            if matches!(kind, JoinKind::Inner | JoinKind::Cross | JoinKind::Semi)
                && children
                    .iter()
                    .any(|c| matches!(c.op, LogicalOp::EmptyGet { .. })) =>
        {
            let columns = LogicalExpr {
                op: LogicalOp::Join {
                    kind,
                    predicate: None,
                },
                children,
            }
            .output_columns();
            LogicalExpr::new(LogicalOp::EmptyGet { columns }, vec![])
        }
        other => LogicalExpr {
            op: other,
            children,
        },
    }
}

/// CHECK-constraint domains visible at `tree` without running full property
/// derivation: only `Get` (possibly under filters/startup filters) exposes
/// them here.
fn get_check_domains(tree: &LogicalExpr) -> Option<HashMap<ColumnId, dhqp_types::IntervalSet>> {
    match &tree.op {
        LogicalOp::Get { meta, .. } => Some(
            meta.checks
                .iter()
                .map(|(pos, dom)| (meta.column_id(*pos), dom.clone()))
                .collect(),
        ),
        LogicalOp::Filter { .. } | LogicalOp::StartupFilter { .. } => {
            get_check_domains(&tree.children[0])
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// pass 4: startup filters for runtime pruning
// ---------------------------------------------------------------------------

fn introduce_startup_filters(tree: LogicalExpr) -> LogicalExpr {
    let LogicalExpr { op, children } = tree;
    let children: Vec<LogicalExpr> = children
        .into_iter()
        .map(introduce_startup_filters)
        .collect();
    if let LogicalOp::Filter { predicate } = &op {
        if let Some(domains) = get_check_domains(&children[0]) {
            let mut startup_preds = Vec::new();
            for conj in predicate.conjuncts() {
                // col = @param (either operand order) over a CHECK-constrained
                // column: the subtree can only produce rows when the
                // parameter falls in the column's domain.
                if let ScalarExpr::Cmp {
                    op: CmpOp::Eq,
                    left,
                    right,
                } = &conj
                {
                    let pair = match (left.as_ref(), right.as_ref()) {
                        (ScalarExpr::Column(c), ScalarExpr::Param(p))
                        | (ScalarExpr::Param(p), ScalarExpr::Column(c)) => Some((*c, p.clone())),
                        _ => None,
                    };
                    if let Some((col, param)) = pair {
                        if let Some(domain) = domains.get(&col) {
                            startup_preds.push(ScalarExpr::ParamInDomain {
                                param,
                                domain: domain.clone(),
                            });
                        }
                    }
                }
            }
            if let Some(p) = ScalarExpr::and(startup_preds) {
                let filtered = LogicalExpr { op, children };
                return LogicalExpr::new(LogicalOp::StartupFilter { predicate: p }, vec![filtered]);
            }
        }
    }
    LogicalExpr { op, children }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{test_table_meta, Locality, TableMeta};
    use crate::props::ColumnRegistry;
    use dhqp_types::{DataType, Interval, IntervalSet};
    use std::sync::Arc;

    fn two_tables() -> (ColumnRegistry, Arc<TableMeta>, Arc<TableMeta>) {
        let mut reg = ColumnRegistry::new();
        let a = test_table_meta(
            0,
            "a",
            Locality::Local,
            &[("x", DataType::Int), ("y", DataType::Int)],
            &mut reg,
            100,
        );
        let b = test_table_meta(
            1,
            "b",
            Locality::Local,
            &[("z", DataType::Int)],
            &mut reg,
            100,
        );
        (reg, a, b)
    }

    fn eq_cc(l: ColumnId, r: ColumnId) -> ScalarExpr {
        ScalarExpr::eq(ScalarExpr::Column(l), ScalarExpr::Column(r))
    }

    fn cmp_ci(c: ColumnId, op: CmpOp, v: i64) -> ScalarExpr {
        ScalarExpr::cmp(
            op,
            ScalarExpr::Column(c),
            ScalarExpr::literal(Value::Int(v)),
        )
    }

    #[test]
    fn filter_splits_and_pushes_into_join_sides() {
        let (_, a, b) = two_tables();
        let pred = ScalarExpr::and(vec![
            cmp_ci(a.column_id(0), CmpOp::Gt, 5),  // left only
            cmp_ci(b.column_id(0), CmpOp::Lt, 9),  // right only
            eq_cc(a.column_id(1), b.column_id(0)), // join-spanning
        ])
        .unwrap();
        let tree = LogicalExpr::join(
            JoinKind::Cross,
            LogicalExpr::get(Arc::clone(&a)),
            LogicalExpr::get(Arc::clone(&b)),
            None,
        )
        .filter(pred);
        let out = simplify(
            tree,
            &SimplifyOptions::default(),
            &mut ColumnRegistry::new(),
        );
        // Cross join became inner with the spanning conjunct.
        match &out.op {
            LogicalOp::Join { kind, predicate } => {
                assert_eq!(*kind, JoinKind::Inner);
                assert!(predicate.is_some());
            }
            other => panic!("expected join at root, got {other:?}"),
        }
        // Each side gained its pushed filter.
        assert!(matches!(out.children[0].op, LogicalOp::Filter { .. }));
        assert!(matches!(out.children[1].op, LogicalOp::Filter { .. }));
    }

    #[test]
    fn left_outer_join_keeps_right_side_predicates_above() {
        let (_, a, b) = two_tables();
        let tree = LogicalExpr::join(
            JoinKind::LeftOuter,
            LogicalExpr::get(Arc::clone(&a)),
            LogicalExpr::get(Arc::clone(&b)),
            Some(eq_cc(a.column_id(1), b.column_id(0))),
        )
        .filter(cmp_ci(b.column_id(0), CmpOp::Gt, 3));
        let out = simplify(
            tree,
            &SimplifyOptions::default(),
            &mut ColumnRegistry::new(),
        );
        assert!(
            matches!(out.op, LogicalOp::Filter { .. }),
            "right-side predicate must stay above the outer join:\n{}",
            out.display_tree()
        );
    }

    #[test]
    fn adjacent_filters_merge() {
        let (_, a, _) = two_tables();
        let tree = LogicalExpr::get(Arc::clone(&a))
            .filter(cmp_ci(a.column_id(0), CmpOp::Gt, 1))
            .filter(cmp_ci(a.column_id(0), CmpOp::Lt, 10));
        let out = simplify(
            tree,
            &SimplifyOptions::default(),
            &mut ColumnRegistry::new(),
        );
        match &out.op {
            LogicalOp::Filter { predicate } => assert_eq!(predicate.conjuncts().len(), 2),
            other => panic!("expected single merged filter, got {other:?}"),
        }
        assert!(matches!(out.children[0].op, LogicalOp::Get { .. }));
    }

    #[test]
    fn predicate_substitutes_through_project() {
        let (mut reg, a, _) = two_tables();
        let derived = reg.allocate("double_x", "", DataType::Int, true);
        let tree = LogicalExpr::get(Arc::clone(&a))
            .project(vec![(
                derived,
                ScalarExpr::Arith {
                    op: crate::scalar::ArithOp::Mul,
                    left: Box::new(ScalarExpr::Column(a.column_id(0))),
                    right: Box::new(ScalarExpr::literal(Value::Int(2))),
                },
            )])
            .filter(cmp_ci(derived, CmpOp::Gt, 10));
        let out = simplify(
            tree,
            &SimplifyOptions::default(),
            &mut ColumnRegistry::new(),
        );
        assert!(matches!(out.op, LogicalOp::Project { .. }));
        // Column pruning may add an extra pass-through projection; the
        // filter must sit somewhere below the root project, directly over
        // the Get, with the substituted base-column predicate.
        let mut node = &out.children[0];
        while let LogicalOp::Project { .. } = &node.op {
            node = &node.children[0];
        }
        match &node.op {
            LogicalOp::Filter { predicate } => {
                assert!(predicate.columns().contains(&a.column_id(0)));
                assert!(!predicate.columns().contains(&derived));
                assert!(matches!(node.children[0].op, LogicalOp::Get { .. }));
            }
            other => panic!("filter should sink below project, got {other:?}"),
        }
    }

    #[test]
    fn constant_false_folds_to_empty() {
        let (_, a, _) = two_tables();
        let tree = LogicalExpr::get(Arc::clone(&a)).filter(ScalarExpr::cmp(
            CmpOp::Eq,
            ScalarExpr::literal(Value::Int(1)),
            ScalarExpr::literal(Value::Int(2)),
        ));
        let out = simplify(
            tree,
            &SimplifyOptions::default(),
            &mut ColumnRegistry::new(),
        );
        assert!(matches!(out.op, LogicalOp::EmptyGet { .. }));
        // TRUE conjuncts vanish.
        let tree = LogicalExpr::get(Arc::clone(&a)).filter(ScalarExpr::cmp(
            CmpOp::Lt,
            ScalarExpr::literal(Value::Int(1)),
            ScalarExpr::literal(Value::Int(2)),
        ));
        let out = simplify(
            tree,
            &SimplifyOptions::default(),
            &mut ColumnRegistry::new(),
        );
        assert!(matches!(out.op, LogicalOp::Get { .. }));
    }

    fn partitioned_view(
        reg: &mut ColumnRegistry,
    ) -> (LogicalExpr, Vec<ColumnId>, Vec<Arc<TableMeta>>) {
        // Three partitions of k: [0,9], [10,19], [20,29].
        let mut members = Vec::new();
        for i in 0..3u32 {
            let mut m = (*test_table_meta(
                i,
                &format!("p{i}"),
                Locality::Local,
                &[("k", DataType::Int)],
                reg,
                100,
            ))
            .clone();
            m.checks = vec![(
                0,
                IntervalSet::single(Interval::between(
                    Value::Int(i as i64 * 10),
                    Value::Int(i as i64 * 10 + 9),
                )),
            )];
            members.push(Arc::new(m));
        }
        let out = vec![reg.allocate("k", "v", DataType::Int, true)];
        let union = LogicalExpr::new(
            LogicalOp::UnionAll {
                output: out.clone(),
            },
            members
                .iter()
                .map(|m| LogicalExpr::get(Arc::clone(m)))
                .collect(),
        );
        (union, out, members)
    }

    #[test]
    fn static_partition_pruning_eliminates_branches() {
        let mut reg = ColumnRegistry::new();
        let (view, out, _) = partitioned_view(&mut reg);
        // k = 15 touches only partition 1; a single survivor collapses to a
        // renaming projection over the member (so the member subtree can be
        // pushed whole).
        let tree = view.filter(cmp_ci(out[0], CmpOp::Eq, 15));
        let result = simplify(
            tree,
            &SimplifyOptions::default(),
            &mut ColumnRegistry::new(),
        );
        let mut node = &result;
        while let LogicalOp::Project { .. } = &node.op {
            node = &node.children[0];
        }
        match &node.op {
            LogicalOp::Filter { .. } => {
                let LogicalOp::Get { meta, .. } = &node.children[0].op else {
                    panic!("filter over member get: {}", result.display_tree());
                };
                assert_eq!(meta.alias, "p1");
            }
            other => panic!("expected collapsed member access, got {other:?}"),
        }
    }

    #[test]
    fn pruning_disabled_keeps_all_branches() {
        let mut reg = ColumnRegistry::new();
        let (view, out, _) = partitioned_view(&mut reg);
        let tree = view.filter(cmp_ci(out[0], CmpOp::Eq, 15));
        let opts = SimplifyOptions {
            constraint_pruning: false,
            ..Default::default()
        };
        let result = simplify(tree, &opts, &mut ColumnRegistry::new());
        match &result.op {
            LogicalOp::UnionAll { .. } => assert_eq!(result.children.len(), 3),
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn fully_contradictory_filter_prunes_whole_view() {
        let mut reg = ColumnRegistry::new();
        let (view, out, _) = partitioned_view(&mut reg);
        let tree = view.filter(cmp_ci(out[0], CmpOp::Eq, 999));
        let result = simplify(
            tree,
            &SimplifyOptions::default(),
            &mut ColumnRegistry::new(),
        );
        assert!(matches!(result.op, LogicalOp::EmptyGet { .. }));
    }

    #[test]
    fn parameterized_filter_gains_startup_guards() {
        let mut reg = ColumnRegistry::new();
        let (view, out, members) = partitioned_view(&mut reg);
        // k = @k: unknown at compile time — every branch survives but gets
        // a startup filter guard.
        let tree = view.filter(ScalarExpr::eq(
            ScalarExpr::Column(out[0]),
            ScalarExpr::Param("k".into()),
        ));
        let result = simplify(
            tree,
            &SimplifyOptions::default(),
            &mut ColumnRegistry::new(),
        );
        match &result.op {
            LogicalOp::UnionAll { .. } => {
                assert_eq!(result.children.len(), 3);
                for (i, branch) in result.children.iter().enumerate() {
                    match &branch.op {
                        LogicalOp::StartupFilter { predicate } => {
                            let ScalarExpr::ParamInDomain { param, domain } = predicate else {
                                panic!("expected ParamInDomain, got {predicate}");
                            };
                            assert_eq!(param, "k");
                            assert_eq!(domain, &members[i].checks[0].1);
                        }
                        other => panic!("branch {i} missing startup filter: {other:?}"),
                    }
                }
            }
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn column_pruning_narrows_gets() {
        let (_, a, b) = two_tables();
        // SELECT a.x FROM a, b WHERE a.y = b.z — a needs (x, y), b needs z.
        let join = LogicalExpr::join(
            JoinKind::Inner,
            LogicalExpr::get(Arc::clone(&a)),
            LogicalExpr::get(Arc::clone(&b)),
            Some(eq_cc(a.column_id(1), b.column_id(0))),
        );
        let tree = join.project(vec![(a.column_id(0), ScalarExpr::Column(a.column_id(0)))]);
        let out = simplify(
            tree,
            &SimplifyOptions::default(),
            &mut ColumnRegistry::new(),
        );
        // `a` keeps both columns (x projected, y joins); `b` keeps its one.
        let LogicalOp::Project { .. } = out.op else {
            panic!("root project")
        };
        let join = &out.children[0];
        assert!(matches!(join.op, LogicalOp::Join { .. }));
        // No spurious projection over a (it needs all its columns)...
        assert!(matches!(join.children[0].op, LogicalOp::Get { .. }));
        // ...and none over b either (single column, fully needed).
        assert!(matches!(join.children[1].op, LogicalOp::Get { .. }));

        // Narrow case: only a.x consumed anywhere.
        let tree = LogicalExpr::join(
            JoinKind::Inner,
            LogicalExpr::get(Arc::clone(&a)),
            LogicalExpr::get(Arc::clone(&b)),
            Some(eq_cc(a.column_id(0), b.column_id(0))),
        )
        .project(vec![(a.column_id(0), ScalarExpr::Column(a.column_id(0)))]);
        let out = simplify(
            tree,
            &SimplifyOptions::default(),
            &mut ColumnRegistry::new(),
        );
        let join = &out.children[0];
        match &join.children[0].op {
            LogicalOp::Project { outputs } => {
                assert_eq!(outputs.len(), 1, "a.y is not consumed and must be pruned");
                assert_eq!(outputs[0].0, a.column_id(0));
            }
            other => panic!("expected pruning projection over a, got {other:?}"),
        }
    }

    #[test]
    fn count_star_keeps_one_column() {
        let (mut reg, a, _) = two_tables();
        let out_col = reg.allocate("cnt", "", DataType::Int, false);
        let agg = LogicalExpr::get(Arc::clone(&a)).aggregate(
            vec![],
            vec![crate::scalar::AggCall {
                func: crate::scalar::AggFunc::CountStar,
                arg: None,
                distinct: false,
                output: out_col,
            }],
        );
        let tree = agg.project(vec![(out_col, ScalarExpr::Column(out_col))]);
        let out = simplify(
            tree,
            &SimplifyOptions::default(),
            &mut ColumnRegistry::new(),
        );
        // COUNT(*) needs no columns; pruning must still leave one so rows
        // can be counted.
        let agg_node = &out.children[0];
        match &agg_node.children[0].op {
            LogicalOp::Project { outputs } => assert_eq!(outputs.len(), 1),
            other => panic!("expected single-column projection, got {other:?}"),
        }
    }

    #[test]
    fn semi_join_left_predicates_push_left() {
        let (_, a, b) = two_tables();
        let tree = LogicalExpr::join(
            JoinKind::Semi,
            LogicalExpr::get(Arc::clone(&a)),
            LogicalExpr::get(Arc::clone(&b)),
            Some(eq_cc(a.column_id(1), b.column_id(0))),
        )
        .filter(cmp_ci(a.column_id(0), CmpOp::Gt, 2));
        let out = simplify(
            tree,
            &SimplifyOptions::default(),
            &mut ColumnRegistry::new(),
        );
        assert!(matches!(
            out.op,
            LogicalOp::Join {
                kind: JoinKind::Semi,
                ..
            }
        ));
        assert!(matches!(out.children[0].op, LogicalOp::Filter { .. }));
    }
}
