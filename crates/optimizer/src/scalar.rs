//! Scalar expression IR used inside the optimizer and executor.
//!
//! Column references carry [`ColumnId`]s (never positions), so expressions
//! survive algebraic rewrites unchanged. The IR also hosts the hooks the
//! paper's machinery needs: parameters for the *parameterization* rule,
//! [`ScalarExpr::ParamInDomain`] for runtime partition pruning (*startup
//! filters*, §4.1.5), and domain extraction for the constraint property
//! framework.

use crate::props::ColumnId;
use dhqp_types::{DataType, Interval, IntervalSet, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn sql_symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Mirror for operand swap.
    pub fn flip(&self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => *other,
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl ArithOp {
    pub fn sql_symbol(&self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    CountStar,
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn sql_name(&self) -> &'static str {
        match self {
            AggFunc::CountStar | AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// One aggregate computation: `func([DISTINCT] arg)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggCall {
    pub func: AggFunc,
    /// `None` only for `COUNT(*)`.
    pub arg: Option<ScalarExpr>,
    pub distinct: bool,
    /// The column id under which the result is visible above the aggregate.
    pub output: ColumnId,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScalarExpr {
    Literal(Value),
    Column(ColumnId),
    /// `@name` query parameter, bound at execution start.
    Param(String),
    Cmp {
        op: CmpOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    Arith {
        op: ArithOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    /// N-ary conjunction (flattened for conjunct-level manipulation).
    And(Vec<ScalarExpr>),
    Or(Vec<ScalarExpr>),
    Not(Box<ScalarExpr>),
    IsNull {
        expr: Box<ScalarExpr>,
        negated: bool,
    },
    /// `expr LIKE 'pattern'` with a constant pattern.
    Like {
        expr: Box<ScalarExpr>,
        pattern: String,
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)` over constants.
    InList {
        expr: Box<ScalarExpr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// Scalar function call evaluated row-at-a-time (`UPPER`, `ABS`, ...).
    Func {
        name: String,
        args: Vec<ScalarExpr>,
    },
    Cast {
        expr: Box<ScalarExpr>,
        to: DataType,
    },
    /// Runtime-pruning predicate: true iff the parameter's value lies in
    /// `domain`. This is what a *startup filter* evaluates before its
    /// subtree runs (paper §4.1.5); it never references input columns.
    ParamInDomain {
        param: String,
        domain: IntervalSet,
    },
}

impl ScalarExpr {
    pub fn column(id: ColumnId) -> ScalarExpr {
        ScalarExpr::Column(id)
    }

    pub fn literal(v: Value) -> ScalarExpr {
        ScalarExpr::Literal(v)
    }

    pub fn cmp(op: CmpOp, left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn eq(left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::cmp(CmpOp::Eq, left, right)
    }

    /// Build a conjunction, flattening nested ANDs; `None` for empty input.
    pub fn and(preds: Vec<ScalarExpr>) -> Option<ScalarExpr> {
        let mut flat = Vec::new();
        for p in preds {
            match p {
                ScalarExpr::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => None,
            1 => Some(flat.into_iter().next().expect("len checked")),
            _ => Some(ScalarExpr::And(flat)),
        }
    }

    /// Split into top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<ScalarExpr> {
        match self {
            ScalarExpr::And(list) => list.clone(),
            other => vec![other.clone()],
        }
    }

    /// All column ids referenced anywhere in the expression.
    pub fn columns(&self) -> BTreeSet<ColumnId> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| {
            if let ScalarExpr::Column(c) = e {
                out.insert(*c);
            }
        });
        out
    }

    /// Whether the expression references no input columns — such predicates
    /// are *startup-filter eligible* ("a startup filter predicate can not
    /// contain any references to columns or values in its input tree").
    pub fn is_column_free(&self) -> bool {
        self.columns().is_empty()
    }

    /// Whether the expression references any `@param`.
    pub fn has_params(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, ScalarExpr::Param(_) | ScalarExpr::ParamInDomain { .. }) {
                found = true;
            }
        });
        found
    }

    /// Depth-first visit of the expression tree.
    pub fn visit(&self, f: &mut impl FnMut(&ScalarExpr)) {
        f(self);
        match self {
            ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            ScalarExpr::And(list) | ScalarExpr::Or(list) => {
                for e in list {
                    e.visit(f);
                }
            }
            ScalarExpr::Not(e)
            | ScalarExpr::IsNull { expr: e, .. }
            | ScalarExpr::Cast { expr: e, .. } => e.visit(f),
            ScalarExpr::Like { expr, .. } | ScalarExpr::InList { expr, .. } => expr.visit(f),
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            ScalarExpr::Literal(_)
            | ScalarExpr::Column(_)
            | ScalarExpr::Param(_)
            | ScalarExpr::ParamInDomain { .. } => {}
        }
    }

    /// Rewrite every column reference through `map` (used when translating
    /// correlated predicates into parameterized remote queries).
    pub fn map_columns(&self, map: &mut impl FnMut(ColumnId) -> ScalarExpr) -> ScalarExpr {
        match self {
            ScalarExpr::Column(c) => map(*c),
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Param(p) => ScalarExpr::Param(p.clone()),
            ScalarExpr::ParamInDomain { param, domain } => ScalarExpr::ParamInDomain {
                param: param.clone(),
                domain: domain.clone(),
            },
            ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
                op: *op,
                left: Box::new(left.map_columns(map)),
                right: Box::new(right.map_columns(map)),
            },
            ScalarExpr::Arith { op, left, right } => ScalarExpr::Arith {
                op: *op,
                left: Box::new(left.map_columns(map)),
                right: Box::new(right.map_columns(map)),
            },
            ScalarExpr::And(list) => {
                ScalarExpr::And(list.iter().map(|e| e.map_columns(map)).collect())
            }
            ScalarExpr::Or(list) => {
                ScalarExpr::Or(list.iter().map(|e| e.map_columns(map)).collect())
            }
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.map_columns(map))),
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.map_columns(map)),
                negated: *negated,
            },
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => ScalarExpr::Like {
                expr: Box::new(expr.map_columns(map)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => ScalarExpr::InList {
                expr: Box::new(expr.map_columns(map)),
                list: list.clone(),
                negated: *negated,
            },
            ScalarExpr::Func { name, args } => ScalarExpr::Func {
                name: name.clone(),
                args: args.iter().map(|e| e.map_columns(map)).collect(),
            },
            ScalarExpr::Cast { expr, to } => ScalarExpr::Cast {
                expr: Box::new(expr.map_columns(map)),
                to: *to,
            },
        }
    }

    /// Derive the value domain this predicate implies for `column`, for the
    /// constraint property framework. Returns the *full* domain when the
    /// predicate says nothing usable about the column.
    ///
    /// Handles the paper's §4.1.5 forms: comparisons against constants
    /// (either operand order), `BETWEEN` (as two comparisons), `IN` lists,
    /// `OR`-disjunctions and `AND`-conjunctions of the above.
    pub fn domain_for(&self, column: ColumnId) -> IntervalSet {
        match self {
            ScalarExpr::Cmp { op, left, right } => {
                let (col_side, lit, op) = match (left.as_ref(), right.as_ref()) {
                    (ScalarExpr::Column(c), ScalarExpr::Literal(v)) if *c == column => (c, v, *op),
                    (ScalarExpr::Literal(v), ScalarExpr::Column(c)) if *c == column => {
                        (c, v, op.flip())
                    }
                    _ => return IntervalSet::full(),
                };
                let _ = col_side;
                if lit.is_null() {
                    // col <op> NULL is never true.
                    return IntervalSet::empty();
                }
                match op {
                    CmpOp::Eq => IntervalSet::point(lit.clone()),
                    CmpOp::Neq => IntervalSet::point(lit.clone()).complement(),
                    CmpOp::Lt => IntervalSet::single(Interval::less_than(lit.clone())),
                    CmpOp::Le => IntervalSet::single(Interval::at_most(lit.clone())),
                    CmpOp::Gt => IntervalSet::single(Interval::greater_than(lit.clone())),
                    CmpOp::Ge => IntervalSet::single(Interval::at_least(lit.clone())),
                }
            }
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => match expr.as_ref() {
                ScalarExpr::Column(c) if *c == column => {
                    let set = list
                        .iter()
                        .filter(|v| !v.is_null())
                        .fold(IntervalSet::empty(), |acc, v| {
                            acc.union(&IntervalSet::point(v.clone()))
                        });
                    if *negated {
                        set.complement()
                    } else {
                        set
                    }
                }
                _ => IntervalSet::full(),
            },
            ScalarExpr::And(list) => list.iter().fold(IntervalSet::full(), |acc, p| {
                acc.intersect(&p.domain_for(column))
            }),
            ScalarExpr::Or(list) => list
                .iter()
                .map(|p| p.domain_for(column))
                .reduce(|a, b| a.union(&b))
                .unwrap_or_else(IntervalSet::full),
            _ => IntervalSet::full(),
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Literal(v) => write!(f, "{}", v.to_sql_literal()),
            ScalarExpr::Column(c) => write!(f, "#{}", c.0),
            ScalarExpr::Param(p) => write!(f, "@{p}"),
            ScalarExpr::Cmp { op, left, right } => {
                write!(f, "({left} {} {right})", op.sql_symbol())
            }
            ScalarExpr::Arith { op, left, right } => {
                write!(f, "({left} {} {right})", op.sql_symbol())
            }
            ScalarExpr::And(list) => {
                write!(f, "(")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Or(list) => {
                write!(f, "(")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Not(e) => write!(f, "NOT {e}"),
            ScalarExpr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}LIKE '{pattern}'",
                    if *negated { "NOT " } else { "" }
                )
            }
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v.to_sql_literal())?;
                }
                write!(f, ")")
            }
            ScalarExpr::Func { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            ScalarExpr::ParamInDomain { param, domain } => {
                write!(f, "STARTUP(@{param} IN {domain})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(i: u32) -> ScalarExpr {
        ScalarExpr::Column(ColumnId(i))
    }

    fn lit(v: i64) -> ScalarExpr {
        ScalarExpr::Literal(Value::Int(v))
    }

    #[test]
    fn and_flattens() {
        let a = ScalarExpr::and(vec![
            ScalarExpr::eq(col(0), lit(1)),
            ScalarExpr::And(vec![
                ScalarExpr::eq(col(1), lit(2)),
                ScalarExpr::eq(col(2), lit(3)),
            ]),
        ])
        .unwrap();
        assert_eq!(a.conjuncts().len(), 3);
        assert!(ScalarExpr::and(vec![]).is_none());
    }

    #[test]
    fn column_collection() {
        let e = ScalarExpr::and(vec![
            ScalarExpr::eq(col(0), col(5)),
            ScalarExpr::cmp(CmpOp::Gt, col(3), lit(7)),
        ])
        .unwrap();
        let cols: Vec<u32> = e.columns().into_iter().map(|c| c.0).collect();
        assert_eq!(cols, vec![0, 3, 5]);
        assert!(!e.is_column_free());
        assert!(ScalarExpr::Param("x".into()).is_column_free());
    }

    #[test]
    fn param_detection() {
        assert!(ScalarExpr::eq(col(0), ScalarExpr::Param("p".into())).has_params());
        assert!(!ScalarExpr::eq(col(0), lit(1)).has_params());
        assert!(ScalarExpr::ParamInDomain {
            param: "p".into(),
            domain: IntervalSet::full()
        }
        .has_params());
    }

    #[test]
    fn domain_from_comparison_both_orders() {
        let c = ColumnId(0);
        let gt = ScalarExpr::cmp(CmpOp::Gt, col(0), lit(50));
        assert!(!gt.domain_for(c).contains(&Value::Int(50)));
        assert!(gt.domain_for(c).contains(&Value::Int(51)));
        // 50 < col is the same constraint.
        let flipped = ScalarExpr::cmp(CmpOp::Lt, lit(50), col(0));
        assert_eq!(flipped.domain_for(c), gt.domain_for(c));
    }

    #[test]
    fn domain_from_paper_disjunction() {
        // CustomerId IN (1, 5) OR CustomerId BETWEEN 50 AND 100
        let c = ColumnId(0);
        let e = ScalarExpr::Or(vec![
            ScalarExpr::InList {
                expr: Box::new(col(0)),
                list: vec![Value::Int(1), Value::Int(5)],
                negated: false,
            },
            ScalarExpr::And(vec![
                ScalarExpr::cmp(CmpOp::Ge, col(0), lit(50)),
                ScalarExpr::cmp(CmpOp::Le, col(0), lit(100)),
            ]),
        ]);
        let d = e.domain_for(c);
        assert_eq!(d.intervals().len(), 3);
        assert!(d.contains(&Value::Int(5)));
        assert!(d.contains(&Value::Int(75)));
        assert!(!d.contains(&Value::Int(20)));
    }

    #[test]
    fn domain_of_other_column_is_full() {
        let e = ScalarExpr::eq(col(0), lit(1));
        assert!(e.domain_for(ColumnId(9)).is_full());
        // Param comparisons contribute nothing statically.
        let p = ScalarExpr::eq(col(0), ScalarExpr::Param("p".into()));
        assert!(p.domain_for(ColumnId(0)).is_full());
    }

    #[test]
    fn neq_and_not_in_via_complement() {
        let e = ScalarExpr::cmp(CmpOp::Neq, col(0), lit(7));
        let d = e.domain_for(ColumnId(0));
        assert!(!d.contains(&Value::Int(7)));
        assert!(d.contains(&Value::Int(8)));
        let ni = ScalarExpr::InList {
            expr: Box::new(col(0)),
            list: vec![Value::Int(1), Value::Int(2)],
            negated: true,
        };
        let d = ni.domain_for(ColumnId(0));
        assert!(!d.contains(&Value::Int(1)));
        assert!(d.contains(&Value::Int(3)));
    }

    #[test]
    fn map_columns_rewrites() {
        let e = ScalarExpr::eq(col(0), col(1));
        let mapped = e.map_columns(&mut |c| {
            if c == ColumnId(1) {
                ScalarExpr::Param("p0".into())
            } else {
                ScalarExpr::Column(c)
            }
        });
        assert!(mapped.has_params());
        assert_eq!(mapped.columns().len(), 1);
    }

    #[test]
    fn display_forms() {
        let e = ScalarExpr::and(vec![
            ScalarExpr::cmp(CmpOp::Ge, col(0), lit(1)),
            ScalarExpr::Like {
                expr: Box::new(col(1)),
                pattern: "x%".into(),
                negated: false,
            },
        ])
        .unwrap();
        assert_eq!(e.to_string(), "((#0 >= 1) AND #1 LIKE 'x%')");
    }
}
