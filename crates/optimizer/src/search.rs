//! The phased, memoizing plan search (paper §4.1.1).
//!
//! "Rules are split into different optimization phases consisting of a
//! round of exploration rules followed by implementation rules. Early
//! phases have a restricted set of rules enabled to attempt to find a good
//! plan quickly. If the cost of the best solution found after a phase is
//! acceptable, the solution is returned." SQL Server's three phases —
//! transaction processing, quick plan and full optimization — are
//! reproduced here, including cost-threshold early exit.

use crate::cost::CostModel;
use crate::decoder::Decoder;
use crate::logical::{LogicalExpr, LogicalOp};
use crate::memo::{GroupId, Memo, Winner};
use crate::physical::{PhysNode, PhysicalOp};
use crate::props::{ColumnId, ColumnRegistry, RequiredProps};
use crate::rules::exploration::{all_rules, group_localities, ExplorationRule};
use crate::rules::implementation::implementations;
use crate::rules::simplify::{simplify, SimplifyOptions};
use crate::rules::{Delivered, PhysAlt, RuleContext};
use dhqp_oledb::ProviderCapabilities;
use dhqp_types::{DhqpError, Result};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// SQL Server's optimization phases, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptimizationPhase {
    /// Minimal rule set for cheap OLTP-style plans: scans, filters, nested
    /// loops, remote query pushdown — no exploration.
    TransactionProcessing,
    /// Adds join commutation, hash joins, spools and parameterized remote
    /// access.
    QuickPlan,
    /// Adds join re-association (with locality grouping), merge joins,
    /// stream aggregates.
    Full,
}

impl OptimizationPhase {
    pub fn name(&self) -> &'static str {
        match self {
            OptimizationPhase::TransactionProcessing => "transaction-processing",
            OptimizationPhase::QuickPlan => "quick-plan",
            OptimizationPhase::Full => "full",
        }
    }

    fn exploration_rules(&self) -> Vec<Box<dyn ExplorationRule>> {
        match self {
            OptimizationPhase::TransactionProcessing => Vec::new(),
            OptimizationPhase::QuickPlan => all_rules()
                .into_iter()
                .filter(|r| r.name() == "JoinCommute")
                .collect(),
            OptimizationPhase::Full => all_rules(),
        }
    }
}

/// Optimizer configuration, including the ablation switches the benchmark
/// suite flips.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Run exactly this phase instead of the adaptive ladder.
    pub forced_phase: Option<OptimizationPhase>,
    /// *Spool over remote operation* enforcer (E8 ablation).
    pub enable_spool: bool,
    /// *Grouping joins based on locality* (E1 ablation).
    pub enable_locality_grouping: bool,
    /// Parameterized remote access paths (E10 ablation).
    pub enable_remote_param: bool,
    /// The *build remote query* rule; off forces row shipping via remote
    /// scans (E1/E3 ablation).
    pub enable_remote_query: bool,
    /// Implement unions with two or more remote branches as an [`Exchange`]
    /// (parallel dispatch) instead of a serial [`UnionAll`]. Defaults to
    /// the `DHQP_PARALLEL` environment switch.
    ///
    /// [`Exchange`]: PhysicalOp::Exchange
    /// [`UnionAll`]: PhysicalOp::UnionAll
    pub enable_parallel_union: bool,
    /// Semi-join reduction: collect the small build side's join keys at
    /// drive time and splice them into the remote statement as an
    /// `IN`-list, cutting returned rows before they cross the link.
    /// Defaults to the `DHQP_SEMIJOIN` environment switch (on unless `0`).
    pub enable_semijoin: bool,
    /// IN-list ceiling for the semi-join rule: past this many estimated
    /// build keys the reduction is not considered (and the executor
    /// abandons it at runtime). `DHQP_SEMIJOIN_MAX_KEYS`, default 64.
    pub semijoin_max_keys: usize,
    pub simplify: SimplifyOptions,
    pub cost: CostModel,
    /// Capabilities per linked server (merged with what tree leaves carry).
    pub server_caps: HashMap<String, ProviderCapabilities>,
    /// Early-exit thresholds: stop after a phase whose best cost is below.
    pub tp_cost_threshold: f64,
    pub quick_cost_threshold: f64,
    /// Fixpoint guard for exploration passes per phase.
    pub max_exploration_passes: usize,
}

/// The `DHQP_PARALLEL` environment switch: set (to anything but `0` or the
/// empty string) forces parallel remote execution on by default — CI runs
/// the whole suite once this way to exercise the concurrent path.
pub fn parallel_env_default() -> bool {
    std::env::var("DHQP_PARALLEL")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// The `DHQP_SEMIJOIN` switch: semi-join reduction is on by default; set
/// to `0` to disable it (CI runs a reduction-off leg this way).
pub fn semijoin_env_default() -> bool {
    std::env::var("DHQP_SEMIJOIN")
        .map(|v| v != "0")
        .unwrap_or(true)
}

/// The `DHQP_SEMIJOIN_MAX_KEYS` knob: IN-list size ceiling for semi-join
/// reduction (default 64).
pub fn semijoin_max_keys_default() -> usize {
    std::env::var("DHQP_SEMIJOIN_MAX_KEYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            forced_phase: None,
            enable_spool: true,
            enable_locality_grouping: true,
            enable_remote_param: true,
            enable_remote_query: true,
            enable_parallel_union: parallel_env_default(),
            enable_semijoin: semijoin_env_default(),
            semijoin_max_keys: semijoin_max_keys_default(),
            simplify: SimplifyOptions::default(),
            cost: CostModel::default(),
            server_caps: HashMap::new(),
            tp_cost_threshold: 500.0,
            quick_cost_threshold: 500_000.0,
            max_exploration_passes: 4,
        }
    }
}

/// Search telemetry, reported through EXPLAIN and the E9 bench.
#[derive(Debug, Clone, Default)]
pub struct OptimizerStats {
    pub groups: usize,
    pub exprs: usize,
    pub rules_fired: usize,
    /// Applications per rule name, summed over phases and sorted by name.
    /// Covers the exploration rules plus the group-level *build remote
    /// query* rule and the Sort enforcer, so a trace can show where the
    /// memo search spent its alternatives. (The enforcer entries are not
    /// part of `rules_fired`, which keeps its original exploration-only
    /// meaning.)
    pub rule_counts: Vec<(String, usize)>,
    /// `(phase, best cost found, time spent)` per executed phase.
    pub phases: Vec<(OptimizationPhase, f64, Duration)>,
    /// True when a phase threshold stopped the ladder early.
    pub early_exit: bool,
}

/// The optimizer entry point.
pub struct Optimizer {
    pub config: OptimizerConfig,
}

impl Optimizer {
    pub fn new(config: OptimizerConfig) -> Self {
        Optimizer { config }
    }

    pub fn with_defaults() -> Self {
        Optimizer::new(OptimizerConfig::default())
    }

    /// Optimize a logical tree into a physical plan meeting `required`.
    /// The registry is mutable because simplification may introduce derived
    /// columns (partial aggregates).
    pub fn optimize(
        &self,
        tree: LogicalExpr,
        registry: &mut ColumnRegistry,
        required: RequiredProps,
    ) -> Result<(PhysNode, OptimizerStats)> {
        let mut config = self.config.clone();
        collect_server_caps(&tree, &mut config.server_caps);
        let tree = simplify(tree, &config.simplify, registry);
        let mut memo = Memo::new();
        let root = memo.insert_tree(&tree, registry);
        let mut stats = OptimizerStats::default();
        let phases: Vec<OptimizationPhase> = match config.forced_phase {
            Some(p) => vec![p],
            None => vec![
                OptimizationPhase::TransactionProcessing,
                OptimizationPhase::QuickPlan,
                OptimizationPhase::Full,
            ],
        };
        let mut best: Option<Winner> = None;
        let mut rule_counts: HashMap<&'static str, usize> = HashMap::new();
        let n_phases = phases.len();
        for (i, phase) in phases.into_iter().enumerate() {
            let t0 = Instant::now();
            let mut driver = SearchDriver {
                memo: &mut memo,
                registry,
                config: &config,
                phase,
                leaf_rows_cache: HashMap::new(),
                rules_fired: 0,
                rule_counts: HashMap::new(),
            };
            driver.explore_all();
            driver.clear_winners();
            let winner = driver.optimize_group(root, &required);
            stats.rules_fired += driver.rules_fired;
            for (name, n) in driver.rule_counts {
                *rule_counts.entry(name).or_insert(0) += n;
            }
            let elapsed = t0.elapsed();
            if let Some(w) = winner {
                stats.phases.push((phase, w.cost, elapsed));
                let threshold = match phase {
                    OptimizationPhase::TransactionProcessing => config.tp_cost_threshold,
                    OptimizationPhase::QuickPlan => config.quick_cost_threshold,
                    OptimizationPhase::Full => f64::INFINITY,
                };
                let good_enough = w.cost <= threshold;
                let keep = best.as_ref().is_none_or(|b| w.cost < b.cost);
                if keep {
                    best = Some(w);
                }
                if good_enough && i + 1 < n_phases {
                    stats.early_exit = true;
                    break;
                }
            } else {
                stats.phases.push((phase, f64::INFINITY, elapsed));
            }
        }
        stats.groups = memo.group_count();
        stats.exprs = memo.expr_count();
        stats.rule_counts = {
            let mut v: Vec<(String, usize)> = rule_counts
                .into_iter()
                .map(|(name, n)| (name.to_string(), n))
                .collect();
            v.sort();
            v
        };
        let best =
            best.ok_or_else(|| DhqpError::Optimize("no physical plan found for query".into()))?;
        let mut plan = best.plan;
        plan.est_cost = best.cost;
        Ok((plan, stats))
    }
}

/// Harvest provider capabilities from the leaves so the rules can consult
/// them by server name.
fn collect_server_caps(tree: &LogicalExpr, out: &mut HashMap<String, ProviderCapabilities>) {
    for meta in tree.leaf_tables() {
        if let Some(server) = meta.source.server_name() {
            out.entry(server.to_string())
                .or_insert_with(|| meta.caps.clone());
        }
    }
}

/// One phase's worth of search state.
struct SearchDriver<'a> {
    memo: &'a mut Memo,
    registry: &'a ColumnRegistry,
    config: &'a OptimizerConfig,
    phase: OptimizationPhase,
    leaf_rows_cache: HashMap<GroupId, f64>,
    rules_fired: usize,
    rule_counts: HashMap<&'static str, usize>,
}

impl<'a> SearchDriver<'a> {
    /// Run this phase's exploration rules over the whole memo to fixpoint
    /// (bounded by `max_exploration_passes`).
    fn explore_all(&mut self) {
        let rules = self.phase.exploration_rules();
        if rules.is_empty() {
            return;
        }
        let ctx = RuleContext {
            registry: self.registry,
            config: self.config,
        };
        for _pass in 0..self.config.max_exploration_passes {
            let mut changed = false;
            let group_count = self.memo.group_count();
            for g in 0..group_count {
                let gid = GroupId(g as u32);
                let expr_ids = self.memo.group(gid).exprs.clone();
                for eid in expr_ids {
                    let mexpr = self.memo.expr(eid).clone();
                    for rule in &rules {
                        if !rule.matches(&mexpr.op) {
                            continue;
                        }
                        for alt in rule.apply(&mexpr, gid, self.memo, &ctx) {
                            if self
                                .memo
                                .insert_alternative_tree(&alt, gid, self.registry)
                                .is_some()
                            {
                                changed = true;
                                self.rules_fired += 1;
                                *self.rule_counts.entry(rule.name()).or_insert(0) += 1;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Winners computed under an earlier (smaller) rule set are stale once a
    /// new phase adds alternatives.
    fn clear_winners(&mut self) {
        for g in 0..self.memo.group_count() {
            self.memo.group_mut(GroupId(g as u32)).winners.clear();
        }
    }

    /// Sum of leaf-table cardinalities under a group — the work a remote
    /// server must at least perform to answer a pushed query.
    fn leaf_rows(&mut self, group: GroupId) -> f64 {
        if let Some(&v) = self.leaf_rows_cache.get(&group) {
            return v;
        }
        // Temporarily mark to avoid re-walking shared subtrees.
        self.leaf_rows_cache.insert(group, 0.0);
        let first = self.memo.group(group).exprs.first().copied();
        let v = match first {
            None => 0.0,
            Some(eid) => {
                let mexpr = self.memo.expr(eid).clone();
                match &mexpr.op {
                    LogicalOp::Get { meta, .. } => meta.estimated_rows(),
                    _ => mexpr.children.iter().map(|&c| self.leaf_rows(c)).sum(),
                }
            }
        };
        self.leaf_rows_cache.insert(group, v);
        v
    }

    /// Find the cheapest plan for `group` delivering `required`.
    fn optimize_group(&mut self, group: GroupId, required: &RequiredProps) -> Option<Winner> {
        if let Some(cached) = self.memo.group(group).winners.get(required) {
            return cached.clone();
        }
        // In-progress marker (also memoizes failure).
        self.memo
            .group_mut(group)
            .winners
            .insert(required.clone(), None);

        let mut best: Option<Winner> = None;
        let ctx = RuleContext {
            registry: self.registry,
            config: self.config,
        };

        // Implementation rules over every logical alternative.
        let expr_ids = self.memo.group(group).exprs.clone();
        for eid in expr_ids {
            let mexpr = self.memo.expr(eid).clone();
            let alts = implementations(&mexpr, self.memo, &ctx, required, self.phase);
            for alt in alts {
                let delivered = alt_delivered(&alt);
                if !delivered.satisfies(required) {
                    continue;
                }
                if let Some((cost, plan)) = self.build_alt(&alt, group) {
                    if best.as_ref().is_none_or(|b| cost < b.cost) {
                        best = Some(Winner { cost, plan });
                    }
                }
            }
        }

        // The *build remote query* rule, applied at group level: when every
        // leaf lives on one SQL-capable remote server, ship the whole
        // subtree as one statement (§4.1.2). ORDER BY is pushed too when
        // the requirement asks for it.
        if self.config.enable_remote_query {
            if let Some(w) = self.try_remote_query(group, required) {
                *self.rule_counts.entry("BuildRemoteQuery").or_insert(0) += 1;
                if best.as_ref().is_none_or(|b| w.cost < b.cost) {
                    best = Some(w);
                }
            }
        }

        // Sort enforcer: satisfy an ordering requirement by sorting the
        // cheapest unordered plan. Not valid for order-sensitive groups:
        // `Sort(Top(x))` selects different rows than `Top(Sort(x))`, so a
        // Limit group must receive its order from below.
        let order_sensitive = self
            .memo
            .group(group)
            .exprs
            .iter()
            .any(|&e| matches!(self.memo.expr(e).op, LogicalOp::Limit { .. }));
        if !required.ordering.is_empty() && !order_sensitive {
            if let Some(unordered) = self.optimize_group(group, &RequiredProps::none()) {
                let props = &self.memo.group(group).props;
                let sort_cost = self.config.cost.sort(props.cardinality);
                let cost = unordered.cost + sort_cost;
                if best.as_ref().is_none_or(|b| cost < b.cost) {
                    *self.rule_counts.entry("SortEnforcer").or_insert(0) += 1;
                    let output = unordered.plan.output.clone();
                    let mut node = PhysNode::new(
                        PhysicalOp::Sort {
                            keys: required.ordering.clone(),
                        },
                        vec![unordered.plan],
                        output,
                    );
                    node.est_rows = props.cardinality;
                    node.est_cost = cost;
                    best = Some(Winner { cost, plan: node });
                }
            }
        }

        self.memo
            .group_mut(group)
            .winners
            .insert(required.clone(), best.clone());
        best
    }

    /// Attempt to decode the whole group into one remote statement.
    fn try_remote_query(&mut self, group: GroupId, required: &RequiredProps) -> Option<Winner> {
        let locs = group_localities(self.memo, group);
        if locs.len() != 1 || !locs[0].is_remote() {
            return None;
        }
        let server = locs[0].server_name()?.to_string();
        let caps = self.config.server_caps.get(&server)?.clone();
        let mut decoder = Decoder::new(self.memo, self.registry, &caps, &server);
        let remote = decoder.build(group, None, &[], &required.ordering, None)?;
        let props = &self.memo.group(group).props;
        let (card, width) = (props.cardinality, props.row_width);
        let leaf_rows = self.leaf_rows(group);
        let cost = self
            .config
            .cost
            .remote_result(&caps, card, width, leaf_rows);
        let mut node = PhysNode::new(
            PhysicalOp::RemoteQuery {
                server: std::sync::Arc::from(server.as_str()),
                sql: remote.sql,
                columns: remote.columns.clone(),
                params: remote.params,
            },
            vec![],
            remote.columns,
        );
        node.est_rows = card;
        node.est_cost = cost;
        Some(Winner { cost, plan: node })
    }

    /// Recursively cost and materialize a physical alternative.
    fn build_alt(&mut self, alt: &PhysAlt, group: GroupId) -> Option<(f64, PhysNode)> {
        match alt {
            PhysAlt::ChildRef {
                group: g,
                required,
                multiplier,
            } => {
                let w = self.optimize_group(*g, required)?;
                Some((w.cost * multiplier, w.plan))
            }
            PhysAlt::Node {
                op,
                est_rows,
                extra_cost,
                multiplier,
                children,
                ..
            } => {
                let mut child_nodes = Vec::with_capacity(children.len());
                let mut child_cost_sum = 0.0;
                for c in children {
                    let (cost, node) = self.build_alt(c, group)?;
                    child_cost_sum += cost;
                    child_nodes.push(node);
                }
                let props = &self.memo.group(group).props;
                let rows = if *est_rows > 0.0 {
                    *est_rows
                } else {
                    props.cardinality
                };
                let width = props.row_width;
                let local = self.op_cost(op, rows, width, &child_nodes) + extra_cost;
                let cost = (local + child_cost_sum) * multiplier;
                let output = node_output(op, &child_nodes);
                let mut node = PhysNode::new(op.clone(), child_nodes, output);
                node.est_rows = rows;
                node.est_cost = cost;
                Some((cost, node))
            }
        }
    }

    /// Local cost of one operator given its (already built) children.
    fn op_cost(&self, op: &PhysicalOp, rows: f64, width: f64, children: &[PhysNode]) -> f64 {
        let m = &self.config.cost;
        let c0 = children.first().map(|c| c.est_rows).unwrap_or(0.0);
        let c1 = children.get(1).map(|c| c.est_rows).unwrap_or(0.0);
        match op {
            PhysicalOp::TableScan { meta } => meta.estimated_rows() * m.scan_row,
            PhysicalOp::IndexRange { .. } => m.index_seek + rows * m.index_row,
            PhysicalOp::RemoteScan { meta } => {
                let w = meta.schema.estimated_row_width() as f64 + 8.0;
                m.remote_result(&meta.caps, meta.estimated_rows(), w, meta.estimated_rows())
            }
            PhysicalOp::RemoteRange { meta, .. } => {
                let w = meta.schema.estimated_row_width() as f64 + 8.0;
                m.remote_result(&meta.caps, rows, w, rows)
            }
            PhysicalOp::RemoteFetch { meta } => {
                let w = meta.schema.estimated_row_width() as f64 + 8.0;
                m.round_trip(&meta.caps) + m.transfer(rows, w)
            }
            PhysicalOp::RemoteQuery { server, .. } => {
                let caps = self
                    .config
                    .server_caps
                    .get(server.as_ref())
                    .cloned()
                    .unwrap_or_else(|| ProviderCapabilities::sql_server("SQLOLEDB"));
                // Remote input work is unknown for rule-built param queries;
                // charge the output-driven terms (the paper's model).
                m.remote_result(&caps, rows, width, rows)
            }
            PhysicalOp::SemiJoinReduce { .. } => {
                // Local terms only: the build side (c0) hashes locally and
                // the join output probes back. The wire cost of the reduced
                // fetch — which depends on the *probe group's* cardinality,
                // not the join output — is attached as extra cost by the
                // implementation rule, where the memo is in scope.
                c0 * m.hash_build_row + rows * m.hash_probe_row
            }
            PhysicalOp::Filter { .. } => c0 * m.cpu_row,
            PhysicalOp::StartupFilter { .. } => 1.0,
            PhysicalOp::Project { .. } => c0 * m.cpu_row,
            PhysicalOp::NestedLoopJoin { .. } => (c0 * c1.max(1.0)).max(c0) * m.cpu_row,
            PhysicalOp::HashJoin { .. } => {
                c1 * m.hash_build_row + c0 * m.hash_probe_row + rows * m.cpu_row
            }
            PhysicalOp::MergeJoin { .. } => (c0 + c1) * m.cpu_row + rows * m.cpu_row,
            PhysicalOp::HashAggregate { .. } => c0 * m.hash_build_row + rows * m.cpu_row,
            PhysicalOp::StreamAggregate { .. } => c0 * m.cpu_row,
            PhysicalOp::Sort { .. } => m.sort(c0),
            PhysicalOp::Top { .. } => rows * m.cpu_row,
            PhysicalOp::UnionAll { .. } | PhysicalOp::Exchange { .. } => {
                children.iter().map(|c| c.est_rows).sum::<f64>() * m.cpu_row * 0.1
            }
            PhysicalOp::Spool => 0.0, // charged via extra_cost
            PhysicalOp::Values { .. } | PhysicalOp::Empty { .. } => rows.max(1.0) * m.cpu_row,
        }
    }
}

/// The ordering an alternative's root delivers.
fn alt_delivered(alt: &PhysAlt) -> RequiredProps {
    match alt {
        PhysAlt::ChildRef { required, .. } => required.clone(),
        PhysAlt::Node {
            delivered,
            children,
            ..
        } => match delivered {
            Delivered::None => RequiredProps::none(),
            Delivered::Keys(k) => RequiredProps::ordered(k.clone()),
            Delivered::Inherit(i) => children.get(*i).map(alt_delivered).unwrap_or_default(),
        },
    }
}

/// Output column list of a physical node given its children.
fn node_output(op: &PhysicalOp, children: &[PhysNode]) -> Vec<ColumnId> {
    match op {
        PhysicalOp::TableScan { meta }
        | PhysicalOp::IndexRange { meta, .. }
        | PhysicalOp::RemoteScan { meta }
        | PhysicalOp::RemoteRange { meta, .. }
        | PhysicalOp::RemoteFetch { meta } => meta.column_ids.clone(),
        PhysicalOp::RemoteQuery { columns, .. } => columns.clone(),
        PhysicalOp::SemiJoinReduce { kind, columns, .. } => {
            let mut out = children[0].output.clone();
            if kind.produces_right() {
                out.extend(columns.iter().copied());
            }
            out
        }
        PhysicalOp::Filter { .. }
        | PhysicalOp::StartupFilter { .. }
        | PhysicalOp::Sort { .. }
        | PhysicalOp::Top { .. }
        | PhysicalOp::Spool => children[0].output.clone(),
        PhysicalOp::Project { outputs } => outputs.iter().map(|(c, _)| *c).collect(),
        PhysicalOp::NestedLoopJoin { kind, .. } | PhysicalOp::HashJoin { kind, .. } => {
            let mut out = children[0].output.clone();
            if kind.produces_right() {
                out.extend(children[1].output.iter().copied());
            }
            out
        }
        PhysicalOp::MergeJoin { .. } => {
            let mut out = children[0].output.clone();
            out.extend(children[1].output.iter().copied());
            out
        }
        PhysicalOp::HashAggregate { group_by, aggs }
        | PhysicalOp::StreamAggregate { group_by, aggs } => {
            let mut out = group_by.clone();
            out.extend(aggs.iter().map(|a| a.output));
            out
        }
        PhysicalOp::UnionAll { output, .. } | PhysicalOp::Exchange { output, .. } => output.clone(),
        PhysicalOp::Values { columns, .. } | PhysicalOp::Empty { columns } => columns.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{test_table_meta, JoinKind, Locality, TableMeta};
    use crate::props::PhysicalProps;
    use crate::scalar::{AggCall, AggFunc, CmpOp, ScalarExpr};
    use dhqp_types::{DataType, Value};
    use std::sync::Arc;

    struct Fixture {
        registry: ColumnRegistry,
        local: Arc<TableMeta>,
        remote_a: Arc<TableMeta>,
        remote_b: Arc<TableMeta>,
    }

    fn fixture() -> Fixture {
        let mut registry = ColumnRegistry::new();
        let local = test_table_meta(
            0,
            "nation",
            Locality::Local,
            &[("nk", DataType::Int), ("nname", DataType::Str)],
            &mut registry,
            25,
        );
        let remote_a = test_table_meta(
            1,
            "customer",
            Locality::remote("r0"),
            &[("ck", DataType::Int), ("cnk", DataType::Int)],
            &mut registry,
            5000,
        );
        let remote_b = test_table_meta(
            2,
            "supplier",
            Locality::remote("r0"),
            &[("sk", DataType::Int), ("snk", DataType::Int)],
            &mut registry,
            200,
        );
        Fixture {
            registry,
            local,
            remote_a,
            remote_b,
        }
    }

    fn eq(l: ColumnId, r: ColumnId) -> ScalarExpr {
        ScalarExpr::eq(ScalarExpr::Column(l), ScalarExpr::Column(r))
    }

    #[test]
    fn fully_remote_selective_tree_becomes_one_remote_query() {
        let f = fixture();
        // A selective filter makes the join output far smaller than the
        // base tables, so pushing the whole statement minimizes traffic.
        let tree = LogicalExpr::join(
            JoinKind::Inner,
            LogicalExpr::get(Arc::clone(&f.remote_a)),
            LogicalExpr::get(Arc::clone(&f.remote_b)).filter(ScalarExpr::cmp(
                CmpOp::Eq,
                ScalarExpr::Column(f.remote_b.column_id(0)),
                ScalarExpr::literal(Value::Int(3)),
            )),
            Some(eq(f.remote_a.column_id(1), f.remote_b.column_id(1))),
        );
        let (plan, _) = Optimizer::with_defaults()
            .optimize(tree, &mut f.registry.clone(), RequiredProps::none())
            .unwrap();
        assert!(
            matches!(plan.op, PhysicalOp::RemoteQuery { .. }),
            "{}",
            plan.display_indent()
        );
    }

    #[test]
    fn fully_remote_exploding_join_ships_tables_not_result() {
        let f = fixture();
        // With a 10 000-row join output vs 5 200 base rows, separate
        // access wins — the Figure 4 reasoning applied within one server.
        let tree = LogicalExpr::join(
            JoinKind::Inner,
            LogicalExpr::get(Arc::clone(&f.remote_a)),
            LogicalExpr::get(Arc::clone(&f.remote_b)),
            Some(eq(f.remote_a.column_id(1), f.remote_b.column_id(1))),
        );
        let (plan, _) = Optimizer::with_defaults()
            .optimize(tree, &mut f.registry.clone(), RequiredProps::none())
            .unwrap();
        assert!(
            !matches!(plan.op, PhysicalOp::RemoteQuery { .. }),
            "join output exceeds inputs; must not push:\n{}",
            plan.display_indent()
        );
    }

    #[test]
    fn mixed_locality_example1_shape_avoids_pushed_join() {
        let f = fixture();
        // (customer ⋈ nation) ⋈ supplier with nation as the middle key —
        // the optimizer should not ship customer⋈supplier.
        let tree = LogicalExpr::join(
            JoinKind::Inner,
            LogicalExpr::join(
                JoinKind::Inner,
                LogicalExpr::get(Arc::clone(&f.remote_a)),
                LogicalExpr::get(Arc::clone(&f.local)),
                Some(eq(f.remote_a.column_id(1), f.local.column_id(0))),
            ),
            LogicalExpr::get(Arc::clone(&f.remote_b)),
            Some(eq(f.local.column_id(0), f.remote_b.column_id(1))),
        );
        let (plan, stats) = Optimizer::with_defaults()
            .optimize(tree, &mut f.registry.clone(), RequiredProps::none())
            .unwrap();
        let text = plan.display_indent();
        let remote_joins = plan.count_ops(
            &mut |op| matches!(op, PhysicalOp::RemoteQuery { sql, .. } if sql.contains("JOIN")),
        );
        assert_eq!(remote_joins, 0, "no pushed customer⋈supplier:\n{text}");
        assert!(stats.phases.len() >= 2, "remote plans escalate past TP");
    }

    #[test]
    fn ordering_requirement_is_enforced_or_delivered() {
        let f = fixture();
        let tree = LogicalExpr::get(Arc::clone(&f.local));
        let required = PhysicalProps::ordered(vec![(f.local.column_id(1), true)]);
        let (plan, _) = Optimizer::with_defaults()
            .optimize(tree, &mut f.registry.clone(), required)
            .unwrap();
        // No index on nname: a Sort enforcer must appear at the root.
        assert!(
            matches!(plan.op, PhysicalOp::Sort { .. }),
            "{}",
            plan.display_indent()
        );
    }

    #[test]
    fn remote_order_by_is_pushed_when_possible() {
        let f = fixture();
        let tree = LogicalExpr::get(Arc::clone(&f.remote_a));
        let required = PhysicalProps::ordered(vec![(f.remote_a.column_id(0), true)]);
        let (plan, _) = Optimizer::with_defaults()
            .optimize(tree, &mut f.registry.clone(), required)
            .unwrap();
        match &plan.op {
            PhysicalOp::RemoteQuery { sql, .. } => {
                assert!(sql.contains("ORDER BY"), "{sql}");
            }
            PhysicalOp::Sort { .. } => {} // also legal: local sort of remote scan
            other => panic!("unexpected root {other:?}"),
        }
    }

    #[test]
    fn aggregate_gets_hash_implementation() {
        let f = fixture();
        let mut registry = f.registry.clone();
        let out = registry.allocate("cnt", "", DataType::Int, false);
        let tree = LogicalExpr::get(Arc::clone(&f.local)).aggregate(
            vec![f.local.column_id(1)],
            vec![AggCall {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
                output: out,
            }],
        );
        let (plan, _) = Optimizer::with_defaults()
            .optimize(tree, &mut registry, RequiredProps::none())
            .unwrap();
        assert!(
            plan.count_ops(&mut |op| matches!(
                op,
                PhysicalOp::HashAggregate { .. } | PhysicalOp::StreamAggregate { .. }
            )) == 1,
            "{}",
            plan.display_indent()
        );
    }

    #[test]
    fn forced_phases_all_produce_valid_plans() {
        let f = fixture();
        for phase in [
            OptimizationPhase::TransactionProcessing,
            OptimizationPhase::QuickPlan,
            OptimizationPhase::Full,
        ] {
            let tree = LogicalExpr::join(
                JoinKind::Inner,
                LogicalExpr::get(Arc::clone(&f.local)),
                LogicalExpr::get(Arc::clone(&f.remote_b)),
                Some(eq(f.local.column_id(0), f.remote_b.column_id(1))),
            );
            let config = OptimizerConfig {
                forced_phase: Some(phase),
                ..Default::default()
            };
            let (plan, stats) = Optimizer::new(config)
                .optimize(tree, &mut f.registry.clone(), RequiredProps::none())
                .unwrap();
            assert!(plan.est_cost.is_finite());
            assert_eq!(stats.phases.len(), 1);
        }
    }

    #[test]
    fn phase_costs_are_monotonically_non_increasing() {
        let f = fixture();
        let tree = LogicalExpr::join(
            JoinKind::Inner,
            LogicalExpr::join(
                JoinKind::Inner,
                LogicalExpr::get(Arc::clone(&f.remote_a)),
                LogicalExpr::get(Arc::clone(&f.local)),
                Some(eq(f.remote_a.column_id(1), f.local.column_id(0))),
            ),
            LogicalExpr::get(Arc::clone(&f.remote_b)),
            Some(eq(f.local.column_id(0), f.remote_b.column_id(1))),
        );
        let mut last = f64::INFINITY;
        for phase in [
            OptimizationPhase::TransactionProcessing,
            OptimizationPhase::QuickPlan,
            OptimizationPhase::Full,
        ] {
            let config = OptimizerConfig {
                forced_phase: Some(phase),
                ..Default::default()
            };
            let (plan, _) = Optimizer::new(config)
                .optimize(tree.clone(), &mut f.registry.clone(), RequiredProps::none())
                .unwrap();
            assert!(
                plan.est_cost <= last + 1e-6,
                "{} cost {} regressed from {last}",
                phase.name(),
                plan.est_cost
            );
            last = plan.est_cost;
        }
    }

    #[test]
    fn cheap_local_plan_exits_early() {
        let f = fixture();
        let tree = LogicalExpr::get(Arc::clone(&f.local)).filter(ScalarExpr::cmp(
            CmpOp::Eq,
            ScalarExpr::Column(f.local.column_id(0)),
            ScalarExpr::literal(Value::Int(3)),
        ));
        let (_, stats) = Optimizer::with_defaults()
            .optimize(tree, &mut f.registry.clone(), RequiredProps::none())
            .unwrap();
        assert!(stats.early_exit, "trivial local lookup should exit at TP");
        assert_eq!(stats.phases.len(), 1);
    }

    #[test]
    fn empty_get_plans_to_empty() {
        let f = fixture();
        let tree = LogicalExpr::get(Arc::clone(&f.local)).filter(ScalarExpr::cmp(
            CmpOp::Eq,
            ScalarExpr::literal(Value::Int(1)),
            ScalarExpr::literal(Value::Int(2)),
        ));
        let (plan, _) = Optimizer::with_defaults()
            .optimize(tree, &mut f.registry.clone(), RequiredProps::none())
            .unwrap();
        assert!(
            matches!(plan.op, PhysicalOp::Empty { .. }),
            "{}",
            plan.display_indent()
        );
    }

    #[test]
    fn disabled_remote_query_falls_back_to_scans() {
        let f = fixture();
        let tree = LogicalExpr::get(Arc::clone(&f.remote_a));
        let config = OptimizerConfig {
            enable_remote_query: false,
            ..Default::default()
        };
        let (plan, _) = Optimizer::new(config)
            .optimize(tree, &mut f.registry.clone(), RequiredProps::none())
            .unwrap();
        assert!(
            matches!(plan.op, PhysicalOp::RemoteScan { .. }),
            "{}",
            plan.display_indent()
        );
    }
}
