//! A *simple provider* (paper §3.3): comma-separated text files exposed as
//! named rowsets. No command object — "DHQP provides all of the querying
//! functionality on top of this base provider".

use dhqp_oledb::{
    ColumnInfo, DataSource, MemRowset, ProviderCapabilities, Rowset, Session, TableInfo,
};
use dhqp_types::{value::parse_date, DataType, DhqpError, Result, Row, Schema, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A parsed CSV "file".
#[derive(Debug, Clone)]
struct CsvTable {
    info: TableInfo,
    rows: Vec<Row>,
}

/// Data source over a set of in-memory CSV files (file name → table name).
pub struct CsvProvider {
    name: String,
    tables: Arc<BTreeMap<String, CsvTable>>,
}

impl CsvProvider {
    /// Create a provider; each `(name, text)` pair is one CSV file with a
    /// header row. Column types are inferred from the data: INT, FLOAT,
    /// DATE (ISO), else VARCHAR. Empty fields are NULL.
    pub fn new(name: impl Into<String>, files: &[(&str, &str)]) -> Result<Self> {
        let mut tables = BTreeMap::new();
        for (fname, text) in files {
            let table = parse_csv(fname, text)?;
            tables.insert(fname.to_lowercase(), table);
        }
        Ok(CsvProvider {
            name: name.into(),
            tables: Arc::new(tables),
        })
    }
}

fn split_line(line: &str) -> Vec<String> {
    // Minimal quoting support: "a,b" fields with doubled quotes.
    let mut out = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                field.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut field));
            }
            c => field.push(c),
        }
    }
    out.push(field);
    out
}

fn infer_type(samples: &[&str]) -> DataType {
    let non_empty: Vec<&&str> = samples.iter().filter(|s| !s.is_empty()).collect();
    if non_empty.is_empty() {
        return DataType::Str;
    }
    if non_empty.iter().all(|s| s.parse::<i64>().is_ok()) {
        return DataType::Int;
    }
    if non_empty.iter().all(|s| s.parse::<f64>().is_ok()) {
        return DataType::Float;
    }
    if non_empty.iter().all(|s| parse_date(s).is_some()) {
        return DataType::Date;
    }
    DataType::Str
}

fn parse_value(text: &str, ty: DataType) -> Result<Value> {
    if text.is_empty() {
        return Ok(Value::Null);
    }
    Value::Str(text.to_string()).cast(ty)
}

fn parse_csv(name: &str, text: &str) -> Result<CsvTable> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| DhqpError::Provider(format!("csv file '{name}' is empty")))?;
    let columns_raw = split_line(header);
    let data: Vec<Vec<String>> = lines.map(split_line).collect();
    for (i, row) in data.iter().enumerate() {
        if row.len() != columns_raw.len() {
            return Err(DhqpError::Provider(format!(
                "csv file '{name}' line {} has {} fields, expected {}",
                i + 2,
                row.len(),
                columns_raw.len()
            )));
        }
    }
    let mut columns = Vec::new();
    for (c, col_name) in columns_raw.iter().enumerate() {
        let samples: Vec<&str> = data.iter().map(|r| r[c].as_str()).collect();
        columns.push(ColumnInfo::new(col_name.trim(), infer_type(&samples)));
    }
    let rows = data
        .iter()
        .enumerate()
        .map(|(i, fields)| {
            let values = fields
                .iter()
                .zip(&columns)
                .map(|(f, col)| parse_value(f.trim(), col.data_type))
                .collect::<Result<Vec<_>>>()?;
            Ok(Row::with_bookmark(values, i as u64))
        })
        .collect::<Result<Vec<_>>>()?;
    let info = TableInfo {
        name: name.to_string(),
        columns,
        indexes: Vec::new(),
        cardinality: Some(rows.len() as u64),
    };
    Ok(CsvTable { info, rows })
}

impl DataSource for CsvProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> ProviderCapabilities {
        ProviderCapabilities::simple("DHQP-CSV")
    }

    fn tables(&self) -> Result<Vec<TableInfo>> {
        Ok(self.tables.values().map(|t| t.info.clone()).collect())
    }

    fn create_session(&self) -> Result<Box<dyn Session>> {
        Ok(Box::new(CsvSession {
            tables: Arc::clone(&self.tables),
        }))
    }
}

struct CsvSession {
    tables: Arc<BTreeMap<String, CsvTable>>,
}

impl Session for CsvSession {
    fn open_rowset(&mut self, table: &str) -> Result<Box<dyn Rowset>> {
        let t = self
            .tables
            .get(&table.to_lowercase())
            .ok_or_else(|| DhqpError::Catalog(format!("no csv file '{table}'")))?;
        let schema: Schema = t.info.schema();
        Ok(Box::new(MemRowset::new(schema, t.rows.clone())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_oledb::{ProviderClass, RowsetExt};

    const SAMPLE: &str = "id,name,score,joined\n1,alice,3.5,2004-01-15\n2,\"bob, jr\",4.0,2004-02-01\n3,carol,,2004-03-10\n";

    fn provider() -> CsvProvider {
        CsvProvider::new("files", &[("people.csv", SAMPLE)]).unwrap()
    }

    #[test]
    fn schema_inference() {
        let p = provider();
        let t = p.table("people.csv").unwrap();
        let types: Vec<DataType> = t.columns.iter().map(|c| c.data_type).collect();
        assert_eq!(
            types,
            vec![
                DataType::Int,
                DataType::Str,
                DataType::Float,
                DataType::Date
            ]
        );
        assert_eq!(t.cardinality, Some(3));
    }

    #[test]
    fn quoted_fields_and_nulls() {
        let p = provider();
        let mut s = p.create_session().unwrap();
        let rows = s.open_rowset("PEOPLE.CSV").unwrap().collect_rows().unwrap();
        assert_eq!(rows[1].get(1), &Value::Str("bob, jr".into()));
        assert!(rows[2].get(2).is_null());
        assert_eq!(rows[0].bookmark, Some(0));
    }

    #[test]
    fn simple_provider_class_no_command() {
        let p = provider();
        assert_eq!(p.capabilities().class(), ProviderClass::Simple);
        let mut s = p.create_session().unwrap();
        assert!(s.create_command().is_err());
        assert!(s.open_rowset("missing.csv").is_err());
    }

    #[test]
    fn malformed_csv_errors() {
        assert!(CsvProvider::new("f", &[("bad.csv", "a,b\n1\n")]).is_err());
        assert!(CsvProvider::new("f", &[("empty.csv", "")]).is_err());
    }
}
