//! Heterogeneous data-source providers (paper §2, §3.3).
//!
//! One provider per source family the paper's scenarios use:
//!
//! | Provider | §3.3 class | Stands in for |
//! |---|---|---|
//! | [`csv::CsvProvider`] | simple (rowsets only) | text files / ISAM data |
//! | [`spreadsheet::SpreadsheetProvider`] | simple | Microsoft Excel |
//! | [`mail::MailboxProvider`] | simple | Exchange mail files (§2.4) |
//! | [`minisql::MiniSqlProvider`] | SQL (Minimum or ODBC Core) | Microsoft Access / desktop DBMSs |
//!
//! The fully capable "remote SQL Server" provider lives in the `dhqp` core
//! crate (it wraps a whole engine); the full-text provider lives in
//! `dhqp-fulltext`. Wrap any of these in
//! `dhqp_netsim::NetworkedDataSource` to place them across a simulated
//! link.

pub mod csv;
pub mod mail;
pub mod minisql;
pub mod spreadsheet;

pub use csv::CsvProvider;
pub use mail::{MailMessage, MailboxProvider};
pub use minisql::MiniSqlProvider;
pub use spreadsheet::{Sheet, SpreadsheetProvider};

#[cfg(test)]
mod thread_safety {
    use super::*;

    #[test]
    fn providers_are_shareable_across_threads() {
        // Parallel exchange branches open provider sessions from worker
        // threads, so every provider must satisfy `DataSource`'s
        // `Send + Sync` bound as a concrete type too.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CsvProvider>();
        assert_send_sync::<SpreadsheetProvider>();
        assert_send_sync::<MailboxProvider>();
        assert_send_sync::<MiniSqlProvider>();
    }
}
