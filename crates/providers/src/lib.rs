//! Heterogeneous data-source providers (paper §2, §3.3).
//!
//! One provider per source family the paper's scenarios use:
//!
//! | Provider | §3.3 class | Stands in for |
//! |---|---|---|
//! | [`csv::CsvProvider`] | simple (rowsets only) | text files / ISAM data |
//! | [`spreadsheet::SpreadsheetProvider`] | simple | Microsoft Excel |
//! | [`mail::MailboxProvider`] | simple | Exchange mail files (§2.4) |
//! | [`minisql::MiniSqlProvider`] | SQL (Minimum or ODBC Core) | Microsoft Access / desktop DBMSs |
//!
//! The fully capable "remote SQL Server" provider lives in the `dhqp` core
//! crate (it wraps a whole engine); the full-text provider lives in
//! `dhqp-fulltext`. Wrap any of these in
//! `dhqp_netsim::NetworkedDataSource` to place them across a simulated
//! link.

pub mod csv;
pub mod mail;
pub mod minisql;
pub mod spreadsheet;

pub use csv::CsvProvider;
pub use mail::{MailMessage, MailboxProvider};
pub use minisql::MiniSqlProvider;
pub use spreadsheet::{Sheet, SpreadsheetProvider};
