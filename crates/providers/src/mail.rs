//! The mailbox provider — the Exchange/mail-file source of the paper's
//! §2.4 salesman scenario: "MakeTable is a table-valued function that
//! transforms the mail file (d:\mail\smith.mmf) into a stream of rows, each
//! representing a message."
//!
//! The mail-file format here is a small mbox-like text format:
//!
//! ```text
//! Msg-Id: <id>
//! From: alice@example.com
//! To: smith@corp.example
//! Date: 2004-06-12
//! Subject: order status
//! In-Reply-To: <other-id>      (optional)
//!
//! body text until the next "Msg-Id:" line
//! ```

use dhqp_oledb::{
    ColumnInfo, DataSource, MemRowset, ProviderCapabilities, Rowset, Session, TableInfo,
};
use dhqp_types::{value::parse_date, DataType, DhqpError, Result, Row, Schema, Value};
use std::sync::Arc;

/// One parsed message.
#[derive(Debug, Clone, PartialEq)]
pub struct MailMessage {
    pub msg_id: String,
    pub from_addr: String,
    pub to_addr: String,
    /// Days since epoch.
    pub date: i32,
    pub subject: String,
    pub in_reply_to: Option<String>,
    pub body: String,
}

impl MailMessage {
    fn to_row(&self, bookmark: u64) -> Row {
        Row::with_bookmark(
            vec![
                Value::Str(self.msg_id.clone()),
                Value::Str(self.from_addr.clone()),
                Value::Str(self.to_addr.clone()),
                Value::Date(self.date),
                Value::Str(self.subject.clone()),
                self.in_reply_to.clone().map_or(Value::Null, Value::Str),
                Value::Str(self.body.clone()),
            ],
            bookmark,
        )
    }
}

/// Columns of the `messages` rowset.
fn message_columns() -> Vec<ColumnInfo> {
    vec![
        ColumnInfo::not_null("msgid", DataType::Str),
        ColumnInfo::not_null("from_addr", DataType::Str),
        ColumnInfo::not_null("to_addr", DataType::Str),
        ColumnInfo::not_null("date", DataType::Date),
        ColumnInfo::new("subject", DataType::Str),
        ColumnInfo::new("inreplyto", DataType::Str),
        ColumnInfo::new("body", DataType::Str),
    ]
}

/// Parse a mail file's text into messages.
pub fn parse_mail_file(text: &str) -> Result<Vec<MailMessage>> {
    let mut messages = Vec::new();
    let mut current: Option<MailMessage> = None;
    let mut in_body = false;
    for line in text.lines() {
        if let Some(id) = line.strip_prefix("Msg-Id:") {
            if let Some(m) = current.take() {
                messages.push(m);
            }
            current = Some(MailMessage {
                msg_id: id.trim().to_string(),
                from_addr: String::new(),
                to_addr: String::new(),
                date: 0,
                subject: String::new(),
                in_reply_to: None,
                body: String::new(),
            });
            in_body = false;
            continue;
        }
        let Some(m) = current.as_mut() else {
            if line.trim().is_empty() {
                continue;
            }
            return Err(DhqpError::Provider(
                "mail file must start with a Msg-Id header".into(),
            ));
        };
        if in_body {
            if !m.body.is_empty() {
                m.body.push(' ');
            }
            m.body.push_str(line.trim());
        } else if let Some(v) = line.strip_prefix("From:") {
            m.from_addr = v.trim().to_string();
        } else if let Some(v) = line.strip_prefix("To:") {
            m.to_addr = v.trim().to_string();
        } else if let Some(v) = line.strip_prefix("Date:") {
            m.date = parse_date(v.trim()).ok_or_else(|| {
                DhqpError::Provider(format!("bad Date header in message {}", m.msg_id))
            })?;
        } else if let Some(v) = line.strip_prefix("Subject:") {
            m.subject = v.trim().to_string();
        } else if let Some(v) = line.strip_prefix("In-Reply-To:") {
            m.in_reply_to = Some(v.trim().to_string());
        } else if line.trim().is_empty() {
            in_body = true;
        } else {
            return Err(DhqpError::Provider(format!(
                "unknown mail header '{line}' in message {}",
                m.msg_id
            )));
        }
    }
    if let Some(m) = current {
        messages.push(m);
    }
    Ok(messages)
}

/// Data source over one mail file, exposing the `messages` rowset.
pub struct MailboxProvider {
    /// The mail file path this provider was "opened" on.
    path: String,
    messages: Arc<Vec<MailMessage>>,
}

impl MailboxProvider {
    pub fn from_text(path: impl Into<String>, text: &str) -> Result<Self> {
        Ok(MailboxProvider {
            path: path.into(),
            messages: Arc::new(parse_mail_file(text)?),
        })
    }

    pub fn from_messages(path: impl Into<String>, messages: Vec<MailMessage>) -> Self {
        MailboxProvider {
            path: path.into(),
            messages: Arc::new(messages),
        }
    }

    pub fn message_count(&self) -> usize {
        self.messages.len()
    }
}

impl DataSource for MailboxProvider {
    fn name(&self) -> &str {
        &self.path
    }

    fn capabilities(&self) -> ProviderCapabilities {
        ProviderCapabilities::simple("DHQP-MAIL")
    }

    fn tables(&self) -> Result<Vec<TableInfo>> {
        Ok(vec![TableInfo {
            name: "messages".into(),
            columns: message_columns(),
            indexes: Vec::new(),
            cardinality: Some(self.messages.len() as u64),
        }])
    }

    fn create_session(&self) -> Result<Box<dyn Session>> {
        Ok(Box::new(MailSession {
            messages: Arc::clone(&self.messages),
        }))
    }
}

struct MailSession {
    messages: Arc<Vec<MailMessage>>,
}

impl Session for MailSession {
    fn open_rowset(&mut self, table: &str) -> Result<Box<dyn Rowset>> {
        if !table.eq_ignore_ascii_case("messages") {
            return Err(DhqpError::Catalog(format!(
                "mailbox provider exposes only 'messages', not '{table}'"
            )));
        }
        let schema = Schema::new(
            message_columns()
                .iter()
                .map(ColumnInfo::to_column)
                .collect(),
        );
        let rows = self
            .messages
            .iter()
            .enumerate()
            .map(|(i, m)| m.to_row(i as u64))
            .collect();
        Ok(Box::new(MemRowset::new(schema, rows)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_oledb::{ProviderClass, RowsetExt};

    const MAILBOX: &str = "\
Msg-Id: <m1@ext>
From: buyer@seattle.example
To: smith@corp.example
Date: 2004-06-10
Subject: quote request

Please send a quote for 40 units.
Thanks!

Msg-Id: <m2@corp>
From: smith@corp.example
To: buyer@seattle.example
Date: 2004-06-11
Subject: RE: quote request
In-Reply-To: <m1@ext>

Quote attached.
";

    #[test]
    fn parses_headers_and_bodies() {
        let msgs = parse_mail_file(MAILBOX).unwrap();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].msg_id, "<m1@ext>");
        assert_eq!(msgs[0].from_addr, "buyer@seattle.example");
        assert!(msgs[0].body.contains("40 units"));
        assert_eq!(msgs[0].in_reply_to, None);
        assert_eq!(msgs[1].in_reply_to.as_deref(), Some("<m1@ext>"));
        assert!(msgs[1].date > msgs[0].date);
    }

    #[test]
    fn rowset_shape() {
        let p = MailboxProvider::from_text("d:\\mail\\smith.mmf", MAILBOX).unwrap();
        assert_eq!(p.capabilities().class(), ProviderClass::Simple);
        let mut s = p.create_session().unwrap();
        let mut rs = s.open_rowset("messages").unwrap();
        assert_eq!(rs.schema().len(), 7);
        let rows = rs.collect_rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].get(5).is_null(), "m1 has no In-Reply-To");
        assert!(s.open_rowset("calendar").is_err());
    }

    #[test]
    fn malformed_files_error() {
        assert!(parse_mail_file("garbage first line").is_err());
        assert!(parse_mail_file("Msg-Id: <a>\nDate: not-a-date\n").is_err());
        assert!(parse_mail_file("Msg-Id: <a>\nX-Unknown: ?\n").is_err());
        assert!(parse_mail_file("").unwrap().is_empty());
    }
}
