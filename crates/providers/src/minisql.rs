//! A desktop-DBMS provider (the Microsoft Access stand-in): a *SQL
//! provider* in the §3.3 sense, but a limited one. Its command object
//! interprets a restricted dialect directly over its own storage:
//!
//! * `SqlSupport::Minimum` — single-table SELECT, conjunctive comparison
//!   predicates, projection.
//! * `SqlSupport::OdbcCore` — adds inner joins (comma or ANSI), ORDER BY,
//!   TOP, IN/BETWEEN/LIKE/IS NULL.
//!
//! No GROUP BY, no subqueries, no derived tables — the DHQP's decoder must
//! not overshoot these limits, and tests verify the provider rejects what
//! its advertised level excludes.

use dhqp_oledb::{
    ColumnInfo, Command, CommandResult, DataSource, KeyRange, MemRowset, ProviderCapabilities,
    Rowset, Session, SqlSupport, TableInfo,
};
use dhqp_sqlfront::{
    parse_statement, BinaryOp, Expr, JoinKind, SelectItem, SelectStmt, Statement, TableRef, UnaryOp,
};
use dhqp_storage::StorageEngine;
use dhqp_types::{value::like_match, Column, DhqpError, Result, Row, Schema, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// A provider with a restricted SQL interpreter over a private storage
/// engine.
pub struct MiniSqlProvider {
    name: String,
    engine: Arc<StorageEngine>,
    level: SqlSupport,
}

impl MiniSqlProvider {
    /// `level` must be `Minimum` or `OdbcCore`; full SQL-92 sources are the
    /// engine-wrapping provider in the core crate.
    pub fn new(
        name: impl Into<String>,
        engine: Arc<StorageEngine>,
        level: SqlSupport,
    ) -> Result<Self> {
        if !matches!(level, SqlSupport::Minimum | SqlSupport::OdbcCore) {
            return Err(DhqpError::Provider(
                "MiniSqlProvider supports SQL Minimum or ODBC Core levels only".into(),
            ));
        }
        Ok(MiniSqlProvider {
            name: name.into(),
            engine,
            level,
        })
    }

    pub fn engine(&self) -> &Arc<StorageEngine> {
        &self.engine
    }
}

impl DataSource for MiniSqlProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> ProviderCapabilities {
        ProviderCapabilities {
            provider_name: "DHQP-JET".into(),
            sql_support: self.level,
            proprietary_command: false,
            index_support: false,
            statistics_support: false,
            transaction_support: false,
            dialect: dhqp_oledb::Dialect {
                // Access-style brackets, no nested SELECT support.
                nested_select: false,
                parameter_markers: false,
                ..Default::default()
            },
            latency_hint_us: 300,
        }
    }

    fn tables(&self) -> Result<Vec<TableInfo>> {
        let mut out = Vec::new();
        for name in self.engine.table_names() {
            let info = self.engine.with_table(&name, |t| TableInfo {
                name: t.name.clone(),
                columns: t
                    .schema
                    .columns()
                    .iter()
                    .map(|c| ColumnInfo {
                        name: c.name.clone(),
                        data_type: c.data_type,
                        nullable: c.nullable,
                    })
                    .collect(),
                indexes: Vec::new(),
                cardinality: Some(t.row_count()),
            })?;
            out.push(info);
        }
        Ok(out)
    }

    fn create_session(&self) -> Result<Box<dyn Session>> {
        Ok(Box::new(MiniSession {
            engine: Arc::clone(&self.engine),
            level: self.level,
        }))
    }
}

struct MiniSession {
    engine: Arc<StorageEngine>,
    level: SqlSupport,
}

impl Session for MiniSession {
    fn open_rowset(&mut self, table: &str) -> Result<Box<dyn Rowset>> {
        let (schema, rows) = self
            .engine
            .with_table(table, |t| (t.schema.clone(), t.scan_rows()))?;
        Ok(Box::new(MemRowset::new(schema, rows)))
    }

    fn open_index(
        &mut self,
        _table: &str,
        _index: &str,
        _range: &KeyRange,
    ) -> Result<Box<dyn Rowset>> {
        Err(DhqpError::Unsupported(
            "MiniSqlProvider exposes no indexes".into(),
        ))
    }

    fn create_command(&mut self) -> Result<Box<dyn Command>> {
        Ok(Box::new(MiniCommand {
            engine: Arc::clone(&self.engine),
            level: self.level,
            text: None,
        }))
    }
}

struct MiniCommand {
    engine: Arc<StorageEngine>,
    level: SqlSupport,
    text: Option<String>,
}

impl Command for MiniCommand {
    fn set_text(&mut self, text: &str) -> Result<()> {
        self.text = Some(text.to_string());
        Ok(())
    }

    fn execute(&mut self) -> Result<CommandResult> {
        let text = self
            .text
            .as_deref()
            .ok_or_else(|| DhqpError::Provider("command has no text".into()))?;
        let stmt = parse_statement(text)?;
        let Statement::Select(select) = stmt else {
            return Err(DhqpError::Unsupported(
                "MiniSqlProvider executes SELECT only".into(),
            ));
        };
        let rowset = Interpreter {
            engine: &self.engine,
            level: self.level,
        }
        .run(&select)?;
        Ok(CommandResult::Rowset(rowset))
    }
}

/// One FROM-clause binding: alias + schema + materialized rows.
struct Binding {
    alias: String,
    schema: Schema,
    rows: Vec<Row>,
}

struct Interpreter<'a> {
    engine: &'a StorageEngine,
    level: SqlSupport,
}

impl<'a> Interpreter<'a> {
    fn run(&self, select: &SelectStmt) -> Result<Box<dyn Rowset>> {
        if !select.group_by.is_empty() || select.having.is_some() || select.distinct {
            return Err(DhqpError::Unsupported(
                "provider does not support GROUP BY/HAVING/DISTINCT".into(),
            ));
        }
        if !select.union_branches.is_empty() {
            return Err(DhqpError::Unsupported(
                "provider does not support UNION".into(),
            ));
        }
        if select.from.is_empty() {
            return Err(DhqpError::Unsupported(
                "provider requires a FROM clause".into(),
            ));
        }
        // Flatten FROM into bindings + join predicates.
        let mut bindings = Vec::new();
        let mut predicates = Vec::new();
        for r in &select.from {
            self.flatten(r, &mut bindings, &mut predicates)?;
        }
        if bindings.len() > 1 && !self.level.supports_joins() {
            return Err(DhqpError::Unsupported(
                "provider does not support joins".into(),
            ));
        }
        if let Some(w) = &select.where_clause {
            self.check_level(w)?;
            predicates.push(w.clone());
        }
        if !select.order_by.is_empty() && !self.level.supports_order_by() {
            return Err(DhqpError::Unsupported(
                "provider does not support ORDER BY".into(),
            ));
        }

        // Nested-loop evaluation over the cartesian space with all
        // predicates applied (good enough for a desktop-DBMS stand-in).
        let env_schema: Vec<(String, Schema)> = bindings
            .iter()
            .map(|b| (b.alias.clone(), b.schema.clone()))
            .collect();
        let mut current: Vec<Row> = vec![Row::new(vec![])];
        for b in &bindings {
            let mut next = Vec::new();
            for partial in &current {
                for row in &b.rows {
                    next.push(partial.join(row));
                }
            }
            current = next;
        }
        let mut kept = Vec::new();
        'rows: for row in current {
            for p in &predicates {
                if eval_bool(p, &env_schema, &row)? != Some(true) {
                    continue 'rows;
                }
            }
            kept.push(row);
        }

        // ORDER BY before projection (keys refer to base columns).
        if !select.order_by.is_empty() {
            let mut keyed: Vec<(Vec<Value>, Row)> = kept
                .into_iter()
                .map(|row| {
                    let keys = select
                        .order_by
                        .iter()
                        .map(|item| eval_expr(&item.expr, &env_schema, &row))
                        .collect::<Result<Vec<_>>>()?;
                    Ok((keys, row))
                })
                .collect::<Result<Vec<_>>>()?;
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (i, item) in select.order_by.iter().enumerate() {
                    let o = ka[i].total_cmp(&kb[i]);
                    if o != Ordering::Equal {
                        return if item.ascending { o } else { o.reverse() };
                    }
                }
                Ordering::Equal
            });
            kept = keyed.into_iter().map(|(_, r)| r).collect();
        }
        if let Some(n) = select.top {
            kept.truncate(n as usize);
        }

        // Projection.
        let mut out_columns: Vec<Column> = Vec::new();
        let mut projections: Vec<Expr> = Vec::new();
        for (i, item) in select.projections.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for (alias, schema) in &env_schema {
                        for c in schema.columns() {
                            out_columns.push(c.clone());
                            projections.push(Expr::Column(vec![alias.clone(), c.name.clone()]));
                        }
                    }
                }
                SelectItem::QualifiedWildcard(alias) => {
                    let (_, schema) = env_schema
                        .iter()
                        .find(|(a, _)| a.eq_ignore_ascii_case(alias))
                        .ok_or_else(|| DhqpError::Bind(format!("unknown alias '{alias}'")))?;
                    for c in schema.columns() {
                        out_columns.push(c.clone());
                        projections.push(Expr::Column(vec![alias.clone(), c.name.clone()]));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    self.check_level(expr)?;
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        Expr::Column(parts) => parts.last().cloned().unwrap_or_default(),
                        _ => format!("expr{i}"),
                    });
                    // Output type inferred from the first row lazily; use
                    // Str as a safe placeholder when empty.
                    out_columns.push(Column::new(name, dhqp_types::DataType::Str));
                    projections.push(expr.clone());
                }
            }
        }
        let mut out_rows = Vec::with_capacity(kept.len());
        for row in &kept {
            let values = projections
                .iter()
                .map(|e| eval_expr(e, &env_schema, row))
                .collect::<Result<Vec<_>>>()?;
            out_rows.push(Row::new(values));
        }
        // Refine column types from data.
        for (c, col) in out_columns.iter_mut().enumerate() {
            if let Some(v) = out_rows.iter().map(|r| r.get(c)).find(|v| !v.is_null()) {
                if let Some(t) = v.data_type() {
                    col.data_type = t;
                }
            }
        }
        Ok(Box::new(MemRowset::new(Schema::new(out_columns), out_rows)))
    }

    fn flatten(
        &self,
        r: &TableRef,
        bindings: &mut Vec<Binding>,
        predicates: &mut Vec<Expr>,
    ) -> Result<()> {
        match r {
            TableRef::Named { name, alias } => {
                if name.0.len() > 1 {
                    return Err(DhqpError::Unsupported(
                        "provider does not accept qualified table names".into(),
                    ));
                }
                let table = name.object().to_string();
                let (schema, rows) = self
                    .engine
                    .with_table(&table, |t| (t.schema.clone(), t.scan_rows()))?;
                bindings.push(Binding {
                    alias: alias.clone().unwrap_or(table),
                    schema,
                    rows,
                });
                Ok(())
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                if !self.level.supports_joins() {
                    return Err(DhqpError::Unsupported(
                        "provider does not support joins".into(),
                    ));
                }
                if !matches!(kind, JoinKind::Inner | JoinKind::Cross) {
                    return Err(DhqpError::Unsupported(
                        "provider supports inner/cross joins only".into(),
                    ));
                }
                self.flatten(left, bindings, predicates)?;
                self.flatten(right, bindings, predicates)?;
                if let Some(p) = on {
                    self.check_level(p)?;
                    predicates.push(p.clone());
                }
                Ok(())
            }
            TableRef::Derived { .. } | TableRef::OpenRowset { .. } | TableRef::OpenQuery { .. } => {
                Err(DhqpError::Unsupported(
                    "provider does not support derived tables".into(),
                ))
            }
        }
    }

    /// Enforce the advertised SQL level on an expression.
    fn check_level(&self, e: &Expr) -> Result<()> {
        if self.level >= SqlSupport::OdbcCore {
            return check_no_subqueries(e);
        }
        // SQL Minimum: conjunctive comparisons over columns/literals only.
        match e {
            Expr::Literal(_) | Expr::Column(_) => Ok(()),
            Expr::Binary { op, left, right } => {
                if op.is_comparison() || *op == BinaryOp::And {
                    self.check_level(left)?;
                    self.check_level(right)
                } else {
                    Err(DhqpError::Unsupported(format!(
                        "operator {} exceeds SQL Minimum",
                        op.sql_symbol()
                    )))
                }
            }
            other => Err(DhqpError::Unsupported(format!(
                "expression form exceeds SQL Minimum: {other:?}"
            ))),
        }
    }
}

fn check_no_subqueries(e: &Expr) -> Result<()> {
    match e {
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => Err(
            DhqpError::Unsupported("provider does not support subqueries".into()),
        ),
        Expr::Binary { left, right, .. } => {
            check_no_subqueries(left)?;
            check_no_subqueries(right)
        }
        Expr::Unary { operand, .. } => check_no_subqueries(operand),
        Expr::Between {
            expr, low, high, ..
        } => {
            check_no_subqueries(expr)?;
            check_no_subqueries(low)?;
            check_no_subqueries(high)
        }
        Expr::InList { expr, list, .. } => {
            check_no_subqueries(expr)?;
            list.iter().try_for_each(check_no_subqueries)
        }
        Expr::Like { expr, pattern, .. } => {
            check_no_subqueries(expr)?;
            check_no_subqueries(pattern)
        }
        Expr::IsNull { expr, .. } => check_no_subqueries(expr),
        _ => Ok(()),
    }
}

/// Resolve a column reference against the bound schemas.
fn resolve(parts: &[String], env: &[(String, Schema)], row: &Row) -> Result<Value> {
    let mut offset = 0;
    match parts {
        [col] => {
            for (_, schema) in env {
                if let Some(i) = schema.index_of(col) {
                    return Ok(row.values[offset + i].clone());
                }
                offset += schema.len();
            }
            Err(DhqpError::Bind(format!("unknown column '{col}'")))
        }
        [alias, col] => {
            for (a, schema) in env {
                if a.eq_ignore_ascii_case(alias) {
                    let i = schema.index_of(col).ok_or_else(|| {
                        DhqpError::Bind(format!("no column '{col}' in '{alias}'"))
                    })?;
                    return Ok(row.values[offset + i].clone());
                }
                offset += schema.len();
            }
            Err(DhqpError::Bind(format!("unknown alias '{alias}'")))
        }
        other => Err(DhqpError::Bind(format!(
            "unsupported column reference {other:?}"
        ))),
    }
}

/// AST-level scalar evaluation (three-valued through `eval_bool`).
fn eval_expr(e: &Expr, env: &[(String, Schema)], row: &Row) -> Result<Value> {
    match e {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(parts) => resolve(parts, env, row),
        Expr::Unary {
            op: UnaryOp::Neg,
            operand,
        } => {
            let v = eval_expr(operand, env, row)?;
            Value::Int(0).sub(&v).or_else(|_| Value::Float(0.0).sub(&v))
        }
        Expr::Binary { op, left, right }
            if !op.is_comparison() && *op != BinaryOp::And && *op != BinaryOp::Or =>
        {
            let l = eval_expr(left, env, row)?;
            let r = eval_expr(right, env, row)?;
            match op {
                BinaryOp::Add => l.add(&r),
                BinaryOp::Sub => l.sub(&r),
                BinaryOp::Mul => l.mul(&r),
                BinaryOp::Div => l.div(&r),
                BinaryOp::Mod => match (l, r) {
                    (Value::Int(a), Value::Int(b)) if b != 0 => Ok(Value::Int(a % b)),
                    _ => Err(DhqpError::Execute("bad modulo".into())),
                },
                _ => unreachable!("guarded above"),
            }
        }
        other => Ok(match eval_bool(other, env, row)? {
            Some(b) => Value::Bool(b),
            None => Value::Null,
        }),
    }
}

fn eval_bool(e: &Expr, env: &[(String, Schema)], row: &Row) -> Result<Option<bool>> {
    match e {
        Expr::Binary { op, left, right } if op.is_comparison() => {
            let l = eval_expr(left, env, row)?;
            // Contextual coercion: a string literal compared with a date.
            let mut r = eval_expr(right, env, row)?;
            if let (Value::Date(_), Value::Str(_)) = (&l, &r) {
                r = r.cast(dhqp_types::DataType::Date)?;
            }
            let mut l = l;
            if let (Value::Str(_), Value::Date(_)) = (&l, &r) {
                l = l.cast(dhqp_types::DataType::Date)?;
            }
            Ok(l.sql_cmp(&r).map(|o| match op {
                BinaryOp::Eq => o == Ordering::Equal,
                BinaryOp::Neq => o != Ordering::Equal,
                BinaryOp::Lt => o == Ordering::Less,
                BinaryOp::Le => o != Ordering::Greater,
                BinaryOp::Gt => o == Ordering::Greater,
                BinaryOp::Ge => o != Ordering::Less,
                _ => unreachable!("comparison guarded"),
            }))
        }
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            let l = eval_bool(left, env, row)?;
            let r = eval_bool(right, env, row)?;
            Ok(match (l, r) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            })
        }
        Expr::Binary {
            op: BinaryOp::Or,
            left,
            right,
        } => {
            let l = eval_bool(left, env, row)?;
            let r = eval_bool(right, env, row)?;
            Ok(match (l, r) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            })
        }
        Expr::Unary {
            op: UnaryOp::Not,
            operand,
        } => Ok(eval_bool(operand, env, row)?.map(|b| !b)),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_expr(expr, env, row)?;
            let lo = eval_expr(low, env, row)?;
            let hi = eval_expr(high, env, row)?;
            let in_range = match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => Some(a != Ordering::Less && b != Ordering::Greater),
                _ => None,
            };
            Ok(in_range.map(|b| b != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(expr, env, row)?;
            if v.is_null() {
                return Ok(None);
            }
            let mut unknown = false;
            for item in list {
                let iv = eval_expr(item, env, row)?;
                match v.sql_eq(&iv) {
                    Some(true) => return Ok(Some(!negated)),
                    None => unknown = true,
                    Some(false) => {}
                }
            }
            Ok(if unknown { None } else { Some(*negated) })
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_expr(expr, env, row)?;
            let p = eval_expr(pattern, env, row)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(None),
                (Value::Str(s), Value::Str(p)) => Ok(Some(like_match(&s, &p) != *negated)),
                _ => Err(DhqpError::Type("LIKE requires strings".into())),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(expr, env, row)?;
            Ok(Some(v.is_null() != *negated))
        }
        Expr::Literal(Value::Bool(b)) => Ok(Some(*b)),
        Expr::Literal(Value::Null) => Ok(None),
        other => Err(DhqpError::Unsupported(format!(
            "expression not supported by this provider: {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_oledb::{ProviderClass, RowsetExt};
    use dhqp_storage::TableDef;
    use dhqp_types::DataType;

    fn access_db(level: SqlSupport) -> MiniSqlProvider {
        let engine = Arc::new(StorageEngine::new("enterprise.mdb"));
        engine
            .create_table(TableDef::new(
                "Customers",
                Schema::new(vec![
                    Column::not_null("Emailaddr", DataType::Str),
                    Column::not_null("City", DataType::Str),
                    Column::new("Address", DataType::Str),
                ]),
            ))
            .unwrap();
        engine
            .insert_rows(
                "Customers",
                &[
                    Row::new(vec![
                        Value::Str("buyer@seattle.example".into()),
                        Value::Str("Seattle".into()),
                        Value::Str("12 Pine St".into()),
                    ]),
                    Row::new(vec![
                        Value::Str("cust@portland.example".into()),
                        Value::Str("Portland".into()),
                        Value::Str("9 Oak Ave".into()),
                    ]),
                ],
            )
            .unwrap();
        engine
            .create_table(TableDef::new(
                "Orders",
                Schema::new(vec![
                    Column::not_null("Emailaddr", DataType::Str),
                    Column::not_null("Total", DataType::Int),
                ]),
            ))
            .unwrap();
        engine
            .insert_rows(
                "Orders",
                &[
                    Row::new(vec![
                        Value::Str("buyer@seattle.example".into()),
                        Value::Int(250),
                    ]),
                    Row::new(vec![
                        Value::Str("buyer@seattle.example".into()),
                        Value::Int(90),
                    ]),
                ],
            )
            .unwrap();
        MiniSqlProvider::new("AccessCustomers", engine, level).unwrap()
    }

    fn run(p: &MiniSqlProvider, sql: &str) -> Result<Vec<Row>> {
        let mut s = p.create_session().unwrap();
        let mut cmd = s.create_command()?;
        cmd.set_text(sql)?;
        cmd.execute()?.into_rowset()?.collect_rows()
    }

    #[test]
    fn classifies_as_sql_provider() {
        let p = access_db(SqlSupport::OdbcCore);
        assert_eq!(p.capabilities().class(), ProviderClass::Sql);
        assert!(!p.capabilities().dialect.nested_select);
    }

    #[test]
    fn single_table_select_where() {
        let p = access_db(SqlSupport::Minimum);
        let rows = run(
            &p,
            "SELECT Emailaddr, Address FROM Customers WHERE City = 'Seattle'",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(1), &Value::Str("12 Pine St".into()));
    }

    #[test]
    fn minimum_level_rejects_joins_or_and_order() {
        let p = access_db(SqlSupport::Minimum);
        assert!(run(
            &p,
            "SELECT * FROM Customers c, Orders o WHERE c.Emailaddr = o.Emailaddr"
        )
        .is_err());
        assert!(run(&p, "SELECT * FROM Customers WHERE City = 'a' OR City = 'b'").is_err());
        assert!(run(&p, "SELECT * FROM Customers ORDER BY City").is_err());
    }

    #[test]
    fn odbc_core_joins_and_order_by() {
        let p = access_db(SqlSupport::OdbcCore);
        let rows = run(
            &p,
            "SELECT c.City, o.Total FROM Customers c INNER JOIN Orders o \
             ON c.Emailaddr = o.Emailaddr ORDER BY o.Total DESC",
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(1), &Value::Int(250));
        // TOP applies after ordering.
        let rows = run(
            &p,
            "SELECT TOP 1 o.Total FROM Customers c, Orders o \
             WHERE c.Emailaddr = o.Emailaddr ORDER BY o.Total",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int(90));
    }

    #[test]
    fn odbc_core_rejects_group_by_and_subqueries() {
        let p = access_db(SqlSupport::OdbcCore);
        assert!(run(&p, "SELECT City, COUNT(*) FROM Customers GROUP BY City").is_err());
        assert!(run(
            &p,
            "SELECT * FROM Customers WHERE Emailaddr IN (SELECT Emailaddr FROM Orders)"
        )
        .is_err());
        assert!(run(&p, "SELECT * FROM (SELECT City FROM Customers) d").is_err());
    }

    #[test]
    fn like_between_in_at_odbc_core() {
        let p = access_db(SqlSupport::OdbcCore);
        let rows = run(
            &p,
            "SELECT City FROM Customers WHERE Emailaddr LIKE '%seattle%'",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        let rows = run(
            &p,
            "SELECT Total FROM Orders WHERE Total BETWEEN 100 AND 300",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        let rows = run(
            &p,
            "SELECT City FROM Customers WHERE City IN ('Seattle', 'Boise')",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn decoder_style_aliased_output() {
        // The DHQP decoder emits [tN].[col] AS [cM] shapes — ensure they run.
        let p = access_db(SqlSupport::OdbcCore);
        let rows = run(
            &p,
            "SELECT [t0].[City] AS [c7] FROM [Customers] AS [t0] WHERE ([t0].[City] = 'Seattle')",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn dml_commands_rejected() {
        let p = access_db(SqlSupport::OdbcCore);
        assert!(run(&p, "DELETE FROM Customers").is_err());
    }
}
