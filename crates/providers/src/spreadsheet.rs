//! A spreadsheet provider — the Microsoft Excel analog of §2.1 ("other
//! tabular data sources (Microsoft Excel, text files, ...)"). Each sheet is
//! a named rowset; like Excel's OLE DB provider it is a *simple provider*:
//! no query language, just tabular data.

use dhqp_oledb::{
    ColumnInfo, DataSource, MemRowset, ProviderCapabilities, Rowset, Session, TableInfo,
};
use dhqp_types::{DataType, DhqpError, Result, Row, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One worksheet: named, typed columns plus cell rows.
#[derive(Debug, Clone)]
pub struct Sheet {
    pub name: String,
    pub columns: Vec<(String, DataType)>,
    pub cells: Vec<Vec<Value>>,
}

impl Sheet {
    pub fn new(name: impl Into<String>, columns: Vec<(String, DataType)>) -> Self {
        Sheet {
            name: name.into(),
            columns,
            cells: Vec::new(),
        }
    }

    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(DhqpError::Provider(format!(
                "sheet '{}' expects {} cells per row, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        self.cells.push(row);
        Ok(())
    }
}

/// A workbook exposed through the OLE DB-style traits.
pub struct SpreadsheetProvider {
    name: String,
    sheets: Arc<BTreeMap<String, Sheet>>,
}

impl SpreadsheetProvider {
    pub fn new(name: impl Into<String>, sheets: Vec<Sheet>) -> Self {
        let map = sheets
            .into_iter()
            .map(|s| (s.name.to_lowercase(), s))
            .collect();
        SpreadsheetProvider {
            name: name.into(),
            sheets: Arc::new(map),
        }
    }
}

impl DataSource for SpreadsheetProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> ProviderCapabilities {
        ProviderCapabilities::simple("DHQP-XLS")
    }

    fn tables(&self) -> Result<Vec<TableInfo>> {
        Ok(self
            .sheets
            .values()
            .map(|s| TableInfo {
                name: s.name.clone(),
                columns: s
                    .columns
                    .iter()
                    .map(|(n, t)| ColumnInfo::new(n.clone(), *t))
                    .collect(),
                indexes: Vec::new(),
                cardinality: Some(s.cells.len() as u64),
            })
            .collect())
    }

    fn create_session(&self) -> Result<Box<dyn Session>> {
        Ok(Box::new(SheetSession {
            sheets: Arc::clone(&self.sheets),
        }))
    }
}

struct SheetSession {
    sheets: Arc<BTreeMap<String, Sheet>>,
}

impl Session for SheetSession {
    fn open_rowset(&mut self, table: &str) -> Result<Box<dyn Rowset>> {
        let sheet = self
            .sheets
            .get(&table.to_lowercase())
            .ok_or_else(|| DhqpError::Catalog(format!("no sheet '{table}' in workbook")))?;
        let schema = dhqp_types::Schema::new(
            sheet
                .columns
                .iter()
                .map(|(n, t)| dhqp_types::Column::new(n.clone(), *t))
                .collect(),
        );
        let rows = sheet
            .cells
            .iter()
            .enumerate()
            .map(|(i, cells)| Row::with_bookmark(cells.clone(), i as u64))
            .collect();
        Ok(Box::new(MemRowset::new(schema, rows)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_oledb::{ProviderClass, RowsetExt};

    fn workbook() -> SpreadsheetProvider {
        let mut budget = Sheet::new(
            "Budget",
            vec![
                ("Quarter".into(), DataType::Str),
                ("Amount".into(), DataType::Float),
            ],
        );
        budget
            .push_row(vec![Value::Str("Q1".into()), Value::Float(120_000.0)])
            .unwrap();
        budget
            .push_row(vec![Value::Str("Q2".into()), Value::Float(95_500.5)])
            .unwrap();
        SpreadsheetProvider::new("enterprise.xls", vec![budget])
    }

    #[test]
    fn sheets_are_tables() {
        let wb = workbook();
        let tables = wb.tables().unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].name, "Budget");
        assert_eq!(tables[0].cardinality, Some(2));
    }

    #[test]
    fn rowset_access_case_insensitive() {
        let wb = workbook();
        let mut s = wb.create_session().unwrap();
        let rows = s.open_rowset("budget").unwrap().collect_rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get(0), &Value::Str("Q2".into()));
        assert!(s.open_rowset("ghost").is_err());
    }

    #[test]
    fn simple_class() {
        assert_eq!(workbook().capabilities().class(), ProviderClass::Simple);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut sheet = Sheet::new("s", vec![("a".into(), DataType::Int)]);
        assert!(sheet.push_row(vec![Value::Int(1), Value::Int(2)]).is_err());
    }
}
