//! Abstract syntax tree for the dialect.

use dhqp_types::Value;
use std::fmt;

/// A possibly-qualified object name: up to four parts,
/// `server.catalog.schema.object` (paper §2.1's linked-server convention).
/// Empty middle parts (`server..table`) are allowed in the grammar and
/// normalized away here.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectName(pub Vec<String>);

impl ObjectName {
    pub fn bare(name: impl Into<String>) -> Self {
        ObjectName(vec![name.into()])
    }

    /// The unqualified object (last) part.
    pub fn object(&self) -> &str {
        self.0.last().map(String::as_str).unwrap_or("")
    }

    /// The server (first) part when the name has all four parts.
    pub fn server(&self) -> Option<&str> {
        if self.0.len() == 4 {
            Some(&self.0[0])
        } else {
            None
        }
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.join("."))
    }
}

/// Top-level statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    Insert(InsertStmt),
    Update(UpdateStmt),
    Delete(DeleteStmt),
    /// `EXPLAIN [ANALYZE] <select>`: render the optimized plan; with
    /// `ANALYZE`, also execute it and report per-operator runtime stats.
    Explain {
        analyze: bool,
        stmt: Box<SelectStmt>,
    },
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    /// `SELECT TOP n`.
    pub top: Option<u64>,
    pub projections: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    /// ORDER BY applies after any UNION branches.
    pub order_by: Vec<OrderByItem>,
    /// Additional `UNION [ALL]` branches: `(branch, all)`. Branches carry
    /// no ORDER BY of their own; this statement's `order_by`/`top` apply to
    /// the combined result.
    pub union_branches: Vec<(SelectStmt, bool)>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub ascending: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// Join kinds supported by the algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    RightOuter,
    /// `CROSS JOIN` / comma syntax.
    Cross,
}

/// FROM-clause items.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A (possibly four-part) table name with optional alias.
    Named {
        name: ObjectName,
        alias: Option<String>,
    },
    /// An explicit ANSI join.
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        on: Option<Expr>,
    },
    /// `(SELECT ...) alias` derived table.
    Derived {
        query: Box<SelectStmt>,
        alias: String,
    },
    /// `OPENROWSET('provider', 'datasource', 'query-or-table') [AS] alias` —
    /// ad-hoc access to any provider (paper §2.2).
    OpenRowset {
        provider: String,
        datasource: String,
        query: String,
        alias: Option<String>,
    },
    /// `OPENQUERY(linked_server, 'pass-through text')` — pass-through to a
    /// query provider with proprietary syntax (paper §3.3).
    OpenQuery {
        server: String,
        query: String,
        alias: Option<String>,
    },
}

impl TableRef {
    /// The alias under which this item's columns are visible.
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableRef::Named { name, alias } => alias.as_deref().or_else(|| Some(name.object())),
            TableRef::Derived { alias, .. } => Some(alias),
            TableRef::OpenRowset { alias, .. } | TableRef::OpenQuery { alias, .. } => {
                alias.as_deref()
            }
            TableRef::Join { .. } => None,
        }
    }
}

/// `INSERT INTO t [(cols)] VALUES ... | SELECT ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    pub table: ObjectName,
    pub columns: Vec<String>,
    pub source: InsertSource,
}

#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Select(Box<SelectStmt>),
}

/// `UPDATE t SET c = e, ... [WHERE p]`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    pub table: ObjectName,
    pub assignments: Vec<(String, Expr)>,
    pub where_clause: Option<Expr>,
}

/// `DELETE FROM t [WHERE p]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    pub table: ObjectName,
    pub where_clause: Option<Expr>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinaryOp {
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
        )
    }

    pub fn sql_symbol(&self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }

    /// Mirror a comparison for operand swap: `a < b` ⇔ `b > a`.
    pub fn flip(&self) -> BinaryOp {
        match self {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::Le => BinaryOp::Ge,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::Ge => BinaryOp::Le,
            other => *other,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    /// Possibly-qualified column reference: `c`, `t.c`.
    Column(Vec<String>),
    /// `@param`.
    Param(String),
    Unary {
        op: UnaryOp,
        operand: Box<Expr>,
    },
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `expr [NOT] IN (list)` or `expr [NOT] IN (subquery)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        subquery: Box<SelectStmt>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (SQL `%`/`_` wildcards).
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        subquery: Box<SelectStmt>,
        negated: bool,
    },
    /// Scalar subquery `(SELECT ...)` in expression position.
    ScalarSubquery(Box<SelectStmt>),
    /// Function call: aggregates (`COUNT`, `SUM`, ...), scalar functions
    /// (`DATEDIFF`, ...), and the full-text predicate `CONTAINS(col, 'q')`.
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
    },
    /// `COUNT(*)`.
    CountStar,
    /// `CAST(expr AS type)`.
    Cast {
        expr: Box<Expr>,
        type_name: String,
    },
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.split('.').map(str::to_string).collect())
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// AND-combine a list of predicates; `None` for the empty list.
    pub fn conjunction(preds: Vec<Expr>) -> Option<Expr> {
        let mut iter = preds.into_iter();
        let first = iter.next()?;
        Some(iter.fold(first, |acc, p| Expr::binary(BinaryOp::And, acc, p)))
    }

    /// Split a predicate into its top-level AND conjuncts.
    pub fn split_conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } => {
                let mut out = left.split_conjuncts();
                out.extend(right.split_conjuncts());
                out
            }
            other => vec![other],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_name_parts() {
        let n = ObjectName(vec![
            "remote0".into(),
            "tpch".into(),
            "dbo".into(),
            "customer".into(),
        ]);
        assert_eq!(n.server(), Some("remote0"));
        assert_eq!(n.object(), "customer");
        assert_eq!(n.to_string(), "remote0.tpch.dbo.customer");
        assert_eq!(ObjectName::bare("t").server(), None);
    }

    #[test]
    fn conjunction_roundtrip() {
        let preds = vec![
            Expr::binary(BinaryOp::Gt, Expr::col("a"), Expr::lit(Value::Int(1))),
            Expr::binary(BinaryOp::Lt, Expr::col("b"), Expr::lit(Value::Int(2))),
            Expr::binary(BinaryOp::Eq, Expr::col("c"), Expr::lit(Value::Int(3))),
        ];
        let combined = Expr::conjunction(preds.clone()).unwrap();
        assert_eq!(combined.split_conjuncts(), preds);
        assert_eq!(Expr::conjunction(vec![]), None);
    }

    #[test]
    fn flip_comparisons() {
        assert_eq!(BinaryOp::Lt.flip(), BinaryOp::Gt);
        assert_eq!(BinaryOp::Ge.flip(), BinaryOp::Le);
        assert_eq!(BinaryOp::Eq.flip(), BinaryOp::Eq);
        assert!(BinaryOp::Le.is_comparison());
        assert!(!BinaryOp::And.is_comparison());
    }

    #[test]
    fn binding_names() {
        let named = TableRef::Named {
            name: ObjectName(vec!["s".into(), "c".into(), "d".into(), "emp".into()]),
            alias: None,
        };
        assert_eq!(named.binding_name(), Some("emp"));
        let aliased = TableRef::Named {
            name: ObjectName::bare("emp"),
            alias: Some("e".into()),
        };
        assert_eq!(aliased.binding_name(), Some("e"));
    }
}
