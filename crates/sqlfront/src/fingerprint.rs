//! Statement fingerprinting: SQL Server-style *simple parameterization*.
//!
//! `SELECT … WHERE k = 1` and `SELECT … WHERE k = 2` should share one plan
//! cache entry. [`fingerprint`] rewrites a SELECT's numeric literals in
//! predicate position into `@__litN` parameters and renders the resulting
//! token stream as a canonical template string — the cache key — together
//! with the extracted parameter values.
//!
//! The rewrite is deliberately conservative, mirroring SQL Server's "safe
//! auto-parameterization": only `Int` and `Float` literals inside
//! `WHERE`/`ON`/`HAVING` zones are lifted. String and date literals stay in
//! the template (they drive bind-time coercion, dialect-specific remote
//! rendering and compile-time partition pruning, all of which must behave
//! byte-identically to the uncached path), `IN (…)` lists stay literal
//! (the binder requires literal elements), and anything outside a predicate
//! zone — `TOP n`, projection constants, `GROUP BY`/`ORDER BY` — is left
//! untouched. A template that later fails to parse, bind or optimize simply
//! falls back to the uncached path; fingerprinting can never reject a
//! statement, only decline to parameterize it.

use crate::lexer::{Lexer, TokenKind};
use dhqp_types::Value;
use std::fmt::Write as _;

/// Prefix reserved for auto-extracted parameters. Statements that already
/// use `@__lit…` names are never fingerprinted (the merge would collide).
pub const AUTO_PARAM_PREFIX: &str = "__lit";

/// A fingerprinted SELECT: the canonical parameterized template plus the
/// literal values extracted from this particular statement text.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    /// Canonical template — tokens space-joined, literals lifted to
    /// `@__litN`. This is the plan-cache key.
    pub template: String,
    /// Extracted `(name, value)` pairs in occurrence order.
    pub params: Vec<(String, Value)>,
    /// `None` for a bare SELECT, `Some(true)` for an `EXPLAIN ANALYZE`
    /// wrapper, `Some(false)` for plain `EXPLAIN` (the template never
    /// includes the wrapper, so both share the underlying cache entry).
    pub explain: Option<bool>,
}

/// Predicate zones parameterize literals; everything else stays verbatim.
#[derive(Clone, Copy, PartialEq)]
enum Zone {
    NoParam,
    Param,
}

fn keyword(t: &TokenKind) -> Option<String> {
    match t {
        TokenKind::Ident(s) => Some(s.to_ascii_uppercase()),
        _ => None,
    }
}

/// Fingerprint one statement. Returns `None` when the statement is not a
/// SELECT (optionally under `EXPLAIN [ANALYZE]`), fails to lex, or already
/// uses the reserved `@__lit` parameter namespace.
pub fn fingerprint(sql: &str) -> Option<Fingerprint> {
    let tokens = Lexer::new(sql).tokenize().ok()?;
    let mut kinds: Vec<TokenKind> = tokens.into_iter().map(|t| t.kind).collect();
    while matches!(kinds.last(), Some(TokenKind::Eof | TokenKind::Semicolon)) {
        kinds.pop();
    }
    let mut i = 0;
    let explain = if keyword(kinds.first()?).as_deref() == Some("EXPLAIN") {
        i = 1;
        if kinds.get(1).and_then(keyword).as_deref() == Some("ANALYZE") {
            i = 2;
            Some(true)
        } else {
            Some(false)
        }
    } else {
        None
    };
    if keyword(kinds.get(i)?).as_deref() != Some("SELECT") {
        return None;
    }

    let mut out: Vec<TokenKind> = Vec::with_capacity(kinds.len() - i);
    let mut params: Vec<(String, Value)> = Vec::new();
    // Zone frames: parens push/pop, keywords flip the top frame. An `IN (`
    // list pushes a NoParam frame — the binder requires literal elements.
    let mut zones: Vec<Zone> = vec![Zone::NoParam];
    let mut prev: Option<TokenKind> = None;
    for t in kinds.drain(i..) {
        match &t {
            TokenKind::Param(name) if name.starts_with(AUTO_PARAM_PREFIX) => return None,
            TokenKind::Ident(_) => match keyword(&t).unwrap().as_str() {
                "WHERE" | "ON" | "HAVING" => *zones.last_mut().unwrap() = Zone::Param,
                "SELECT" | "FROM" | "GROUP" | "ORDER" | "UNION" => {
                    *zones.last_mut().unwrap() = Zone::NoParam
                }
                _ => {}
            },
            TokenKind::LParen => {
                let in_list =
                    matches!(&prev, Some(TokenKind::Ident(w)) if w.eq_ignore_ascii_case("IN"));
                let inherited = *zones.last().unwrap();
                zones.push(if in_list { Zone::NoParam } else { inherited });
            }
            TokenKind::RParen if zones.len() > 1 => {
                zones.pop();
            }
            TokenKind::Int(v) if *zones.last().unwrap() == Zone::Param => {
                let name = format!("{AUTO_PARAM_PREFIX}{}", params.len());
                params.push((name.clone(), Value::Int(*v)));
                prev = Some(t.clone());
                out.push(TokenKind::Param(name));
                continue;
            }
            TokenKind::Float(v) if *zones.last().unwrap() == Zone::Param => {
                let name = format!("{AUTO_PARAM_PREFIX}{}", params.len());
                params.push((name.clone(), Value::Float(*v)));
                prev = Some(t.clone());
                out.push(TokenKind::Param(name));
                continue;
            }
            _ => {}
        }
        prev = Some(t.clone());
        out.push(t);
    }
    Some(Fingerprint {
        template: render_tokens(&out),
        params,
        explain,
    })
}

/// Render a token stream back to lexable SQL text, one space between
/// tokens. Unlike `TokenKind`'s `Display` (built for error messages), this
/// re-escapes string and quoted-identifier bodies and keeps floats
/// re-lexable as floats.
fn render_tokens(tokens: &[TokenKind]) -> String {
    let mut out = String::new();
    for t in tokens {
        if !out.is_empty() {
            out.push(' ');
        }
        match t {
            TokenKind::Str(s) => {
                let _ = write!(out, "'{}'", s.replace('\'', "''"));
            }
            TokenKind::QuotedIdent(s) => {
                let _ = write!(out, "[{}]", s.replace(']', "]]"));
            }
            TokenKind::Float(v) => {
                // `{:?}` keeps a trailing `.0`, so "3.0" re-lexes as Float.
                let _ = write!(out, "{v:?}");
            }
            other => {
                let _ = write!(out, "{other}");
            }
        }
    }
    out
}

/// Render one extracted value as a SQL literal in the engine's own dialect
/// (the inverse of extraction, used to prove round-trips).
pub fn render_param_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(d) => format!("DATE '{}'", dhqp_types::value::format_date(*d)),
        Value::Bool(b) => if *b { "1" } else { "0" }.to_string(),
        Value::Null => "NULL".to_string(),
    }
}

/// Substitute extracted parameters back into a template, producing SQL that
/// must parse to the same AST as the original statement (the round-trip
/// property the test suite proves).
pub fn substitute(template: &str, params: &[(String, Value)]) -> Option<String> {
    let tokens = Lexer::new(template).tokenize().ok()?;
    let mut out = String::new();
    for t in tokens {
        if t.kind == TokenKind::Eof {
            break;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        match &t.kind {
            TokenKind::Param(name) => match params.iter().find(|(n, _)| n == name) {
                Some((_, v)) => out.push_str(&render_param_value(v)),
                None => {
                    let _ = write!(out, "@{name}");
                }
            },
            other => out.push_str(&render_tokens(std::slice::from_ref(other))),
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statement;

    #[test]
    fn equal_shapes_share_a_template() {
        let a = fingerprint("SELECT id FROM t WHERE k = 1").unwrap();
        let b = fingerprint("SELECT id FROM t WHERE k = 2").unwrap();
        assert_eq!(a.template, b.template);
        assert_eq!(a.params, vec![("__lit0".to_string(), Value::Int(1))]);
        assert_eq!(b.params, vec![("__lit0".to_string(), Value::Int(2))]);
    }

    #[test]
    fn strings_dates_and_top_stay_literal() {
        let fp =
            fingerprint("SELECT TOP 3 id FROM t WHERE tag = 'x' AND day > '2004-01-01'").unwrap();
        assert!(fp.params.is_empty(), "{:?}", fp.params);
        assert!(fp.template.contains("TOP 3"));
        assert!(fp.template.contains("'2004-01-01'"));
    }

    #[test]
    fn in_lists_stay_literal_but_comparisons_do_not() {
        let fp = fingerprint("SELECT id FROM t WHERE k IN (1, 2) AND v > 7").unwrap();
        assert_eq!(fp.params, vec![("__lit0".to_string(), Value::Int(7))]);
        assert!(fp.template.contains("IN ( 1 , 2 )"), "{}", fp.template);
    }

    #[test]
    fn subquery_zones_nest() {
        let fp = fingerprint(
            "SELECT id FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = 5) AND t.v = 6",
        )
        .unwrap();
        // The `SELECT 1` projection constant stays; both predicate literals lift.
        assert_eq!(
            fp.params,
            vec![
                ("__lit0".to_string(), Value::Int(5)),
                ("__lit1".to_string(), Value::Int(6)),
            ]
        );
        assert!(fp.template.contains("SELECT 1 FROM"), "{}", fp.template);
    }

    #[test]
    fn explain_wrappers_share_the_bare_template() {
        let bare = fingerprint("SELECT id FROM t WHERE k = 1").unwrap();
        let ea = fingerprint("EXPLAIN ANALYZE SELECT id FROM t WHERE k = 1").unwrap();
        let e = fingerprint("EXPLAIN SELECT id FROM t WHERE k = 1").unwrap();
        assert_eq!(bare.explain, None);
        assert_eq!(ea.explain, Some(true));
        assert_eq!(e.explain, Some(false));
        assert_eq!(bare.template, ea.template);
        assert_eq!(bare.template, e.template);
    }

    #[test]
    fn non_select_and_reserved_names_are_rejected() {
        assert!(fingerprint("INSERT INTO t (a) VALUES (1)").is_none());
        assert!(fingerprint("DELETE FROM t WHERE k = 1").is_none());
        assert!(fingerprint("SELECT id FROM t WHERE k = @__lit0").is_none());
        assert!(fingerprint("not sql at '").is_none());
    }

    #[test]
    fn round_trip_is_identity() {
        for sql in [
            "SELECT id, tag FROM t WHERE k = 10 AND score >= 2.5",
            "SELECT a.id FROM a JOIN b ON a.id = b.id + 1 WHERE b.score % 2 = 0",
            "SELECT id FROM t WHERE k BETWEEN 3 AND 9 HAVING COUNT(*) > 2",
            "SELECT [odd name] FROM t WHERE tag = 'O''Brien' AND k = -4",
        ] {
            let fp = fingerprint(sql).unwrap();
            let back = substitute(&fp.template, &fp.params).unwrap();
            assert_eq!(
                format!("{:?}", parse_statement(&back).unwrap()),
                format!("{:?}", parse_statement(sql).unwrap()),
                "{sql} -> {back}"
            );
        }
    }

    #[test]
    fn negative_literals_round_trip() {
        let fp = fingerprint("SELECT id FROM t WHERE k = -5").unwrap();
        assert_eq!(fp.params, vec![("__lit0".to_string(), Value::Int(5))]);
        let back = substitute(&fp.template, &fp.params).unwrap();
        assert_eq!(
            format!("{:?}", parse_statement(&back).unwrap()),
            format!(
                "{:?}",
                parse_statement("SELECT id FROM t WHERE k = -5").unwrap()
            ),
        );
    }
}
