//! Stable 64-bit hashing for plan and query identity.
//!
//! The query store keys history by *fingerprint template* (what the plan
//! cache parameterizes on) and by *plan shape* (the pre-order operator
//! description of a physical plan). Both need a hash that is stable across
//! process restarts — `std::collections::hash_map::DefaultHasher` is
//! randomly seeded per process, so DMV rows would never be comparable
//! between runs. FNV-1a is tiny, has no dependencies, and is the classic
//! choice for short structured strings.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher. Feed byte slices (or whole lines) in order;
/// identical input sequences produce identical hashes in every process.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }
}

impl Fnv1a {
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb one logical line: the text plus a separator byte, so that
    /// `["ab", "c"]` and `["a", "bc"]` hash differently.
    pub fn write_line(&mut self, line: &str) {
        self.write(line.as_bytes());
        self.write(&[0x0a]);
    }

    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hash a single string.
pub fn fnv1a_64(text: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write(text.as_bytes());
    h.finish()
}

/// Hash an ordered sequence of lines (e.g. a pre-order plan rendering).
pub fn hash_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> u64 {
    let mut h = Fnv1a::new();
    for line in lines {
        h.write_line(line);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a 64 of empty input is the offset basis.
        assert_eq!(fnv1a_64(""), 0xcbf2_9ce4_8422_2325);
        // Well-known vector: "a" → 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a_64("a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn line_boundaries_matter() {
        assert_ne!(hash_lines(["ab", "c"]), hash_lines(["a", "bc"]));
        assert_eq!(hash_lines(["ab", "c"]), hash_lines(["ab", "c"]));
    }

    #[test]
    fn stable_across_hashers() {
        let mut h = Fnv1a::new();
        h.write(b"SELECT 1");
        assert_eq!(h.finish(), fnv1a_64("SELECT 1"));
    }
}
