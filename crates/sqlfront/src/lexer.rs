//! Hand-written SQL lexer.
//!
//! Produces a flat token stream with byte positions for error reporting.
//! Keywords are recognized case-insensitively at parse time (the lexer emits
//! them as `Ident`; the parser matches on uppercased text), which keeps the
//! token set small and lets identifiers shadow non-reserved words.

use dhqp_types::{DhqpError, Result};
use std::fmt;

/// Lexical token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (unquoted, original case preserved).
    Ident(String),
    /// `[quoted]` or `"quoted"` identifier — never a keyword.
    QuotedIdent(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// `'single quoted'` string with `''` unescaped.
    Str(String),
    /// `@name` parameter.
    Param(String),
    // punctuation / operators
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Semicolon,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::QuotedIdent(s) => write!(f, "[{s}]"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Param(s) => write!(f, "@{s}"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Dot => f.write_str("."),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::Neq => f.write_str("<>"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::Ge => f.write_str(">="),
            TokenKind::Semicolon => f.write_str(";"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token plus its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// The lexer: call [`Lexer::tokenize`] to get the full token vector.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Lex the whole input. The last token is always `Eof`.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.kind == TokenKind::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                // -- line comment
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                // /* block comment */
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(DhqpError::Parse(format!(
                                    "unterminated block comment at offset {start}"
                                )))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia()?;
        let offset = self.pos;
        let Some(b) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                offset,
            });
        };
        let kind = match b {
            b',' => {
                self.pos += 1;
                TokenKind::Comma
            }
            b'.' => {
                self.pos += 1;
                TokenKind::Dot
            }
            b'(' => {
                self.pos += 1;
                TokenKind::LParen
            }
            b')' => {
                self.pos += 1;
                TokenKind::RParen
            }
            b'*' => {
                self.pos += 1;
                TokenKind::Star
            }
            b'+' => {
                self.pos += 1;
                TokenKind::Plus
            }
            b'-' => {
                self.pos += 1;
                TokenKind::Minus
            }
            b'/' => {
                self.pos += 1;
                TokenKind::Slash
            }
            b'%' => {
                self.pos += 1;
                TokenKind::Percent
            }
            b';' => {
                self.pos += 1;
                TokenKind::Semicolon
            }
            b'=' => {
                self.pos += 1;
                TokenKind::Eq
            }
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => {
                        self.pos += 1;
                        TokenKind::Le
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        TokenKind::Neq
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'!' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Neq
                } else {
                    return Err(DhqpError::Parse(format!(
                        "unexpected '!' at offset {offset}"
                    )));
                }
            }
            b'\'' => self.lex_string(offset)?,
            b'[' => self.lex_bracket_ident(offset)?,
            b'"' => self.lex_double_quoted_ident(offset)?,
            b'@' => {
                self.pos += 1;
                let name = self.lex_ident_text();
                if name.is_empty() {
                    return Err(DhqpError::Parse(format!(
                        "expected parameter name after '@' at offset {offset}"
                    )));
                }
                TokenKind::Param(name)
            }
            b'0'..=b'9' => self.lex_number(offset)?,
            b if b.is_ascii_alphabetic() || b == b'_' => TokenKind::Ident(self.lex_ident_text()),
            other => {
                return Err(DhqpError::Parse(format!(
                    "unexpected character '{}' at offset {offset}",
                    other as char
                )))
            }
        };
        Ok(Token { kind, offset })
    }

    fn lex_ident_text(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'$' {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.src[start..self.pos].to_string()
    }

    fn lex_string(&mut self, offset: usize) -> Result<TokenKind> {
        self.pos += 1; // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        s.push('\'');
                        self.pos += 1;
                    } else {
                        return Ok(TokenKind::Str(s));
                    }
                }
                Some(b) => s.push(b as char),
                None => {
                    return Err(DhqpError::Parse(format!(
                        "unterminated string literal at offset {offset}"
                    )))
                }
            }
        }
    }

    fn lex_bracket_ident(&mut self, offset: usize) -> Result<TokenKind> {
        self.pos += 1; // '['
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b']') => {
                    if self.peek() == Some(b']') {
                        s.push(']');
                        self.pos += 1;
                    } else {
                        return Ok(TokenKind::QuotedIdent(s));
                    }
                }
                Some(b) => s.push(b as char),
                None => {
                    return Err(DhqpError::Parse(format!(
                        "unterminated [identifier] at offset {offset}"
                    )))
                }
            }
        }
    }

    fn lex_double_quoted_ident(&mut self, offset: usize) -> Result<TokenKind> {
        self.pos += 1; // '"'
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => {
                    if self.peek() == Some(b'"') {
                        s.push('"');
                        self.pos += 1;
                    } else {
                        return Ok(TokenKind::QuotedIdent(s));
                    }
                }
                Some(b) => s.push(b as char),
                None => {
                    return Err(DhqpError::Parse(format!(
                        "unterminated \"identifier\" at offset {offset}"
                    )))
                }
            }
        }
    }

    fn lex_number(&mut self, offset: usize) -> Result<TokenKind> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        // A dot only makes this a float if followed by a digit; otherwise it
        // is the member-access dot (e.g. `1.t` never occurs, but `a.1` won't
        // parse anyway).
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                is_float = true;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            } else {
                self.pos = save; // not an exponent; `10east` style
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| DhqpError::Parse(format!("bad float literal at offset {offset}")))
        } else {
            text.parse::<i64>().map(TokenKind::Int).map_err(|_| {
                DhqpError::Parse(format!("integer literal overflow at offset {offset}"))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_select_tokens() {
        let k = kinds("SELECT a, b FROM t WHERE a >= 10;");
        assert_eq!(k[0], TokenKind::Ident("SELECT".into()));
        assert!(k.contains(&TokenKind::Ge));
        assert!(k.contains(&TokenKind::Int(10)));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn strings_unescape_doubled_quotes() {
        assert_eq!(kinds("'O''Brien'")[0], TokenKind::Str("O'Brien".into()));
    }

    #[test]
    fn bracket_and_double_quoted_idents() {
        assert_eq!(
            kinds("[Order Details]")[0],
            TokenKind::QuotedIdent("Order Details".into())
        );
        assert_eq!(
            kinds("\"x\"\"y\"")[0],
            TokenKind::QuotedIdent("x\"y".into())
        );
        assert_eq!(kinds("[a]]b]")[0], TokenKind::QuotedIdent("a]b".into()));
    }

    #[test]
    fn numbers_int_float_exponent() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("3.25")[0], TokenKind::Float(3.25));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5E-1")[0], TokenKind::Float(0.25));
    }

    #[test]
    fn four_part_name_tokens() {
        let k = kinds("remote0.tpch10g.dbo.customer");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("remote0".into()),
                TokenKind::Dot,
                TokenKind::Ident("tpch10g".into()),
                TokenKind::Dot,
                TokenKind::Ident("dbo".into()),
                TokenKind::Dot,
                TokenKind::Ident("customer".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn params_and_comparisons() {
        let k = kinds("@customerId <> 5 != 6 <= 7");
        assert_eq!(k[0], TokenKind::Param("customerId".into()));
        assert_eq!(k[1], TokenKind::Neq);
        assert_eq!(k[3], TokenKind::Neq);
        assert_eq!(k[5], TokenKind::Le);
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("SELECT -- everything\n * /* really\n everything */ FROM t");
        assert_eq!(k.len(), 5); // SELECT * FROM t EOF
    }

    #[test]
    fn errors_carry_offsets() {
        let e = Lexer::new("SELECT 'oops").tokenize().unwrap_err();
        assert!(e.to_string().contains("offset 7"), "{e}");
        assert!(Lexer::new("a ! b").tokenize().is_err());
        assert!(Lexer::new("[never").tokenize().is_err());
        assert!(Lexer::new("99999999999999999999").tokenize().is_err());
    }
}
