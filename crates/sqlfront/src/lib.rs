//! SQL frontend: lexer, AST and parser for the engine's T-SQL-flavoured
//! dialect.
//!
//! The dialect covers what the paper's scenarios need: four-part names for
//! linked servers (`remote0.tpch10g.dbo.customer`, §2.1), `OPENROWSET` /
//! `OPENQUERY` for ad-hoc and pass-through access (§2.2, §3.3), `CONTAINS`
//! full-text predicates (§2.3), parameters (`@customerId`, §4.1.5), plus
//! ordinary SELECT/INSERT/UPDATE/DELETE with joins, subqueries, grouping,
//! UNION \[ALL\] and TOP.

pub mod ast;
pub mod fingerprint;
pub mod hash;
pub mod lexer;
pub mod parser;

pub use ast::*;
pub use fingerprint::{fingerprint, Fingerprint, AUTO_PARAM_PREFIX};
pub use hash::{fnv1a_64, hash_lines, Fnv1a};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_expression, parse_statement, Parser};
