//! Recursive-descent parser.
//!
//! Grammar summary (keywords case-insensitive):
//!
//! ```text
//! statement   := select | insert | update | delete
//!              | EXPLAIN [ANALYZE] select
//! select      := body (UNION [ALL] body)* [ORDER BY expr [ASC|DESC], ...]
//! body        := SELECT [DISTINCT] [TOP int] items FROM refs
//!                [WHERE expr] [GROUP BY exprs] [HAVING expr]
//! refs        := ref (',' ref)*
//! ref         := primary ( join_kind JOIN primary [ON expr] )*
//! primary     := name4 [alias] | '(' select ')' alias
//!              | OPENROWSET '(' str ',' str ',' str ')' [alias]
//!              | OPENQUERY '(' ident ',' str ')' [alias]
//! expr        := or-precedence expression grammar with IN / BETWEEN /
//!                LIKE / IS NULL / EXISTS / scalar subqueries / CAST /
//!                function calls
//! ```

use crate::ast::*;
use crate::lexer::{Lexer, Token, TokenKind};
use dhqp_types::{value::parse_date, DhqpError, Result, Value};

/// Words that terminate an implicit alias position.
const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "ON", "INNER", "LEFT", "RIGHT", "FULL",
    "CROSS", "JOIN", "AND", "OR", "NOT", "AS", "INSERT", "UPDATE", "DELETE", "SET", "VALUES",
    "TOP", "DISTINCT", "UNION", "ALL", "EXISTS", "BETWEEN", "LIKE", "IS", "NULL", "IN", "ASC",
    "DESC", "INTO", "CASE", "WHEN", "THEN", "ELSE", "END", "EXPLAIN", "ANALYZE",
];

/// Parse one statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = Lexer::new(sql).tokenize()?;
    let mut p = Parser::new(tokens);
    let stmt = p.parse_statement()?;
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a standalone scalar expression (used by tests and tools).
pub fn parse_expression(sql: &str) -> Result<Expr> {
    let tokens = Lexer::new(sql).tokenize()?;
    let mut p = Parser::new(tokens);
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Token-stream parser. Construct with a token vector from [`Lexer`].
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{kind}'")))
        }
    }

    fn error(&self, msg: &str) -> DhqpError {
        DhqpError::Parse(format!(
            "{msg}, found '{}' at offset {}",
            self.peek(),
            self.offset()
        ))
    }

    /// Is the current token the given keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected keyword {kw}")))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(self.error("expected end of statement"))
        }
    }

    /// Any identifier (quoted or not).
    fn expect_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) | TokenKind::QuotedIdent(s) => {
                self.bump();
                Ok(s)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    fn expect_string(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Str(s) => {
                self.bump();
                Ok(s)
            }
            _ => Err(self.error("expected string literal")),
        }
    }

    // ---- statements -------------------------------------------------------

    pub fn parse_statement(&mut self) -> Result<Statement> {
        if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            if !self.at_kw("SELECT") {
                return Err(self.error("EXPLAIN supports SELECT statements only"));
            }
            let stmt = Box::new(self.parse_select()?);
            Ok(Statement::Explain { analyze, stmt })
        } else if self.at_kw("SELECT") {
            Ok(Statement::Select(self.parse_select()?))
        } else if self.at_kw("INSERT") {
            self.parse_insert().map(Statement::Insert)
        } else if self.at_kw("UPDATE") {
            self.parse_update().map(Statement::Update)
        } else if self.at_kw("DELETE") {
            self.parse_delete().map(Statement::Delete)
        } else {
            Err(self.error("expected SELECT, INSERT, UPDATE or DELETE"))
        }
    }

    pub fn parse_select(&mut self) -> Result<SelectStmt> {
        let mut stmt = self.parse_select_core()?;
        while self.at_kw("UNION") {
            if !stmt.order_by.is_empty() {
                return Err(self.error("ORDER BY must follow the last UNION branch"));
            }
            self.bump();
            let all = self.eat_kw("ALL");
            let mut branch = self.parse_select_core()?;
            if !branch.order_by.is_empty() && self.at_kw("UNION") {
                return Err(self.error("ORDER BY must follow the last UNION branch"));
            }
            // A trailing ORDER BY binds to the whole union.
            if !branch.order_by.is_empty() {
                stmt.order_by = std::mem::take(&mut branch.order_by);
            }
            stmt.union_branches.push((branch, all));
        }
        Ok(stmt)
    }

    fn parse_select_core(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let top = if self.eat_kw("TOP") {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                _ => return Err(self.error("expected non-negative integer after TOP")),
            }
        } else {
            None
        };
        let mut projections = vec![self.parse_select_item()?];
        while self.eat(&TokenKind::Comma) {
            projections.push(self.parse_select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            from.push(self.parse_table_ref()?);
            while self.eat(&TokenKind::Comma) {
                from.push(self.parse_table_ref()?);
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.parse_expr()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let ascending = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC") | true
                };
                order_by.push(OrderByItem { expr, ascending });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        Ok(SelectStmt {
            distinct,
            top,
            projections,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            union_branches: Vec::new(),
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let TokenKind::Ident(name) | TokenKind::QuotedIdent(name) = self.peek().clone() {
            if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Dot)
                && self.tokens.get(self.pos + 2).map(|t| &t.kind) == Some(&TokenKind::Star)
            {
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_optional_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            return self.expect_ident().map(Some);
        }
        match self.peek().clone() {
            TokenKind::Ident(s) if !RESERVED.iter().any(|r| s.eq_ignore_ascii_case(r)) => {
                self.bump();
                Ok(Some(s))
            }
            TokenKind::QuotedIdent(s) => {
                self.bump();
                Ok(Some(s))
            }
            _ => Ok(None),
        }
    }

    // ---- FROM clause ------------------------------------------------------

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.at_kw("JOIN") || self.at_kw("INNER") {
                self.eat_kw("INNER");
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.at_kw("LEFT") {
                self.bump();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::LeftOuter
            } else if self.at_kw("RIGHT") {
                self.bump();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::RightOuter
            } else if self.at_kw("CROSS") {
                self.bump();
                self.expect_kw("JOIN")?;
                JoinKind::Cross
            } else {
                return Ok(left);
            };
            let right = self.parse_table_primary()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_kw("ON")?;
                Some(self.parse_expr()?)
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
    }

    fn parse_table_primary(&mut self) -> Result<TableRef> {
        if self.at_kw("OPENROWSET") {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            let provider = self.expect_string()?;
            self.expect(&TokenKind::Comma)?;
            let datasource = self.expect_string()?;
            self.expect(&TokenKind::Comma)?;
            let query = self.expect_string()?;
            self.expect(&TokenKind::RParen)?;
            let alias = self.parse_optional_alias()?;
            return Ok(TableRef::OpenRowset {
                provider,
                datasource,
                query,
                alias,
            });
        }
        if self.at_kw("OPENQUERY") {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            let server = self.expect_ident()?;
            self.expect(&TokenKind::Comma)?;
            let query = self.expect_string()?;
            self.expect(&TokenKind::RParen)?;
            let alias = self.parse_optional_alias()?;
            return Ok(TableRef::OpenQuery {
                server,
                query,
                alias,
            });
        }
        if self.eat(&TokenKind::LParen) {
            if self.at_kw("SELECT") {
                let query = self.parse_select()?;
                self.expect(&TokenKind::RParen)?;
                self.eat_kw("AS");
                let alias = self
                    .parse_optional_alias()?
                    .ok_or_else(|| self.error("derived table requires an alias"))?;
                return Ok(TableRef::Derived {
                    query: Box::new(query),
                    alias,
                });
            }
            // Parenthesized join tree.
            let inner = self.parse_table_ref()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(inner);
        }
        let name = self.parse_object_name()?;
        let alias = self.parse_optional_alias()?;
        Ok(TableRef::Named { name, alias })
    }

    /// Dotted name of 1..=4 parts; empty middle parts (`srv..t`) are
    /// dropped, matching T-SQL's defaulting behaviour.
    fn parse_object_name(&mut self) -> Result<ObjectName> {
        let mut parts = vec![self.expect_ident()?];
        while self.eat(&TokenKind::Dot) {
            if self.peek() == &TokenKind::Dot {
                continue; // empty part: server..table
            }
            parts.push(self.expect_ident()?);
        }
        if parts.len() > 4 {
            return Err(self.error("object names have at most four parts"));
        }
        Ok(ObjectName(parts))
    }

    fn parse_insert(&mut self) -> Result<InsertStmt> {
        self.expect_kw("INSERT")?;
        self.eat_kw("INTO");
        let table = self.parse_object_name()?;
        let mut columns = Vec::new();
        if self.eat(&TokenKind::LParen) {
            columns.push(self.expect_ident()?);
            while self.eat(&TokenKind::Comma) {
                columns.push(self.expect_ident()?);
            }
            self.expect(&TokenKind::RParen)?;
        }
        let source = if self.eat_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect(&TokenKind::LParen)?;
                let mut row = vec![self.parse_expr()?];
                while self.eat(&TokenKind::Comma) {
                    row.push(self.parse_expr()?);
                }
                self.expect(&TokenKind::RParen)?;
                rows.push(row);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.at_kw("SELECT") {
            InsertSource::Select(Box::new(self.parse_select()?))
        } else {
            return Err(self.error("expected VALUES or SELECT"));
        };
        Ok(InsertStmt {
            table,
            columns,
            source,
        })
    }

    fn parse_update(&mut self) -> Result<UpdateStmt> {
        self.expect_kw("UPDATE")?;
        let table = self.parse_object_name()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect(&TokenKind::Eq)?;
            assignments.push((col, self.parse_expr()?));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(UpdateStmt {
            table,
            assignments,
            where_clause,
        })
    }

    fn parse_delete(&mut self) -> Result<DeleteStmt> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.parse_object_name()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(DeleteStmt {
            table,
            where_clause,
        })
    }

    // ---- expressions --------------------------------------------------------

    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(BinaryOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::binary(BinaryOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            // NOT EXISTS folds into the Exists node.
            if self.at_kw("EXISTS") {
                return match self.parse_not()? {
                    Expr::Exists { subquery, negated } => Ok(Expr::Exists {
                        subquery,
                        negated: !negated,
                    }),
                    other => Ok(Expr::Unary {
                        op: UnaryOp::Not,
                        operand: Box::new(other),
                    }),
                };
            }
            let operand = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        if self.at_kw("EXISTS") {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            let sub = self.parse_select()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Exists {
                subquery: Box::new(sub),
                negated: false,
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // Comparison operators.
        let op = match self.peek() {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::Neq => Some(BinaryOp::Neq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::Le => Some(BinaryOp::Le),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::Ge => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(op, left, right));
        }
        // Postfix predicate forms, optionally negated.
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect(&TokenKind::LParen)?;
            if self.at_kw("SELECT") {
                let sub = self.parse_select()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = vec![self.parse_expr()?];
            while self.eat(&TokenKind::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        if negated {
            return Err(self.error("expected IN, BETWEEN or LIKE after NOT"));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(op, left, right);
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::binary(op, left, right);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            // Fold negation into numeric literals immediately.
            return Ok(match self.parse_unary()? {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    operand: Box::new(other),
                },
            });
        }
        if self.eat(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(i)))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(f)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::Param(p) => {
                self.bump();
                Ok(Expr::Param(p))
            }
            TokenKind::LParen => {
                self.bump();
                if self.at_kw("SELECT") {
                    let sub = self.parse_select()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(sub)));
                }
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(word) if word.eq_ignore_ascii_case("NULL") => {
                self.bump();
                Ok(Expr::Literal(Value::Null))
            }
            TokenKind::Ident(word) if word.eq_ignore_ascii_case("TRUE") => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            TokenKind::Ident(word) if word.eq_ignore_ascii_case("FALSE") => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            // DATE '1992-01-01' typed literal.
            TokenKind::Ident(word)
                if word.eq_ignore_ascii_case("DATE")
                    && matches!(
                        self.tokens.get(self.pos + 1).map(|t| &t.kind),
                        Some(TokenKind::Str(_))
                    ) =>
            {
                self.bump();
                let s = self.expect_string()?;
                let d = parse_date(&s)
                    .ok_or_else(|| DhqpError::Parse(format!("invalid date literal '{s}'")))?;
                Ok(Expr::Literal(Value::Date(d)))
            }
            TokenKind::Ident(word) if word.eq_ignore_ascii_case("CAST") => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let e = self.parse_expr()?;
                self.expect_kw("AS")?;
                let type_name = self.expect_ident()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Cast {
                    expr: Box::new(e),
                    type_name,
                })
            }
            TokenKind::Ident(word)
                if RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
                    && self.tokens.get(self.pos + 1).map(|t| &t.kind)
                        != Some(&TokenKind::LParen) =>
            {
                Err(self.error("expected expression"))
            }
            TokenKind::Ident(_) | TokenKind::QuotedIdent(_) => {
                // Function call or column reference.
                if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LParen) {
                    let name = self.expect_ident()?;
                    self.bump(); // '('
                    if name.eq_ignore_ascii_case("COUNT") && self.peek() == &TokenKind::Star {
                        self.bump();
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Expr::CountStar);
                    }
                    let distinct = self.eat_kw("DISTINCT");
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        args.push(self.parse_expr()?);
                        while self.eat(&TokenKind::Comma) {
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Function {
                        name: name.to_ascii_uppercase(),
                        args,
                        distinct,
                    });
                }
                // Column reference: ident(.ident)*
                let mut parts = vec![self.expect_ident()?];
                while self.eat(&TokenKind::Dot) {
                    parts.push(self.expect_ident()?);
                }
                Ok(Expr::Column(parts))
            }
            _ => Err(self.error("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn paper_example_1_parses() {
        let s = sel("SELECT c.c_name, c.c_address, c.c_phone \
                     FROM remote0.tpch10g.dbo.customer c, remote0.tpch10g.dbo.supplier s, nation n \
                     WHERE c.c_nationkey = n.n_nationkey AND n.n_nationkey = s.s_nationkey");
        assert_eq!(s.projections.len(), 3);
        assert_eq!(s.from.len(), 3);
        match &s.from[0] {
            TableRef::Named { name, alias } => {
                assert_eq!(name.server(), Some("remote0"));
                assert_eq!(name.object(), "customer");
                assert_eq!(alias.as_deref(), Some("c"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let conjuncts = s.where_clause.unwrap().split_conjuncts();
        assert_eq!(conjuncts.len(), 2);
    }

    #[test]
    fn ansi_joins_and_aliases() {
        let s = sel("SELECT * FROM a INNER JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y");
        match &s.from[0] {
            TableRef::Join { kind, left, .. } => {
                assert_eq!(*kind, JoinKind::LeftOuter);
                assert!(matches!(
                    left.as_ref(),
                    TableRef::Join {
                        kind: JoinKind::Inner,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn openrowset_matches_paper_section_2_2() {
        let s = sel("SELECT FS.path FROM OPENROWSET('MSIDXS','DQLiterature',\
                     'Select Path from SCOPE() where CONTAINS(''x'')') AS FS");
        match &s.from[0] {
            TableRef::OpenRowset {
                provider,
                datasource,
                query,
                alias,
            } => {
                assert_eq!(provider, "MSIDXS");
                assert_eq!(datasource, "DQLiterature");
                assert!(query.contains("CONTAINS('x')"));
                assert_eq!(alias.as_deref(), Some("FS"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn openquery_pass_through() {
        let s = sel("SELECT * FROM OPENQUERY(ftsrv, 'title:database') q");
        assert!(matches!(&s.from[0], TableRef::OpenQuery { server, .. } if server == "ftsrv"));
    }

    #[test]
    fn subqueries_exists_in_scalar() {
        let s = sel(
            "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.k = t.k) \
                     AND t.x IN (SELECT y FROM v) AND t.z = (SELECT MAX(w) FROM m)",
        );
        let conj = s.where_clause.unwrap().split_conjuncts();
        assert!(matches!(&conj[0], Expr::Exists { negated: true, .. }));
        assert!(matches!(&conj[1], Expr::InSubquery { negated: false, .. }));
        assert!(
            matches!(&conj[2], Expr::Binary { right, .. } if matches!(right.as_ref(), Expr::ScalarSubquery(_)))
        );
    }

    #[test]
    fn group_by_having_order_top_distinct() {
        let s = sel(
            "SELECT DISTINCT TOP 10 dept, COUNT(*) AS n, SUM(sal) FROM emp \
                     GROUP BY dept HAVING COUNT(*) > 3 ORDER BY n DESC, dept",
        );
        assert!(s.distinct);
        assert_eq!(s.top, Some(10));
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].ascending);
        assert!(s.order_by[1].ascending);
        assert!(matches!(
            &s.projections[1],
            SelectItem::Expr { expr: Expr::CountStar, alias: Some(a) } if a == "n"
        ));
    }

    #[test]
    fn predicate_forms() {
        let e = parse_expression(
            "a BETWEEN 1 AND 10 AND b NOT IN (1,2) AND c LIKE 'x%' \
                                  AND d IS NOT NULL AND e NOT BETWEEN 0 AND 1",
        )
        .unwrap();
        let conj = e.split_conjuncts();
        assert!(matches!(&conj[0], Expr::Between { negated: false, .. }));
        assert!(matches!(&conj[1], Expr::InList { negated: true, .. }));
        assert!(matches!(&conj[2], Expr::Like { negated: false, .. }));
        assert!(matches!(&conj[3], Expr::IsNull { negated: true, .. }));
        assert!(matches!(&conj[4], Expr::Between { negated: true, .. }));
    }

    #[test]
    fn precedence_or_and_cmp_arith() {
        // a = 1 OR b = 2 AND c = 3  =>  a=1 OR (b=2 AND c=3)
        let e = parse_expression("a = 1 OR b = 2 AND c = 3").unwrap();
        assert!(matches!(
            &e,
            Expr::Binary {
                op: BinaryOp::Or,
                ..
            }
        ));
        // 1 + 2 * 3 => 1 + (2*3)
        let e = parse_expression("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinaryOp::Add,
                right,
                ..
            } => {
                assert!(matches!(
                    right.as_ref(),
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn date_literals_and_negative_numbers() {
        let e = parse_expression("d >= DATE '1992-01-01'").unwrap();
        match e {
            Expr::Binary { right, .. } => {
                assert!(matches!(right.as_ref(), Expr::Literal(Value::Date(_))));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse_expression("-5").unwrap(),
            Expr::Literal(Value::Int(-5))
        );
        assert_eq!(
            parse_expression("-2.5").unwrap(),
            Expr::Literal(Value::Float(-2.5))
        );
    }

    #[test]
    fn insert_update_delete() {
        let i = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match i {
            Statement::Insert(ins) => {
                assert_eq!(ins.columns, vec!["a", "b"]);
                assert!(matches!(ins.source, InsertSource::Values(ref v) if v.len() == 2));
            }
            other => panic!("unexpected {other:?}"),
        }
        let u = parse_statement("UPDATE t SET a = a + 1 WHERE k = @id").unwrap();
        assert!(matches!(u, Statement::Update(_)));
        let d = parse_statement("DELETE FROM t WHERE a < 0").unwrap();
        assert!(matches!(d, Statement::Delete(_)));
        let i2 = parse_statement("INSERT INTO t SELECT * FROM s").unwrap();
        match i2 {
            Statement::Insert(ins) => assert!(matches!(ins.source, InsertSource::Select(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn derived_table_requires_alias() {
        assert!(parse_statement("SELECT * FROM (SELECT a FROM t)").is_err());
        let s = sel("SELECT * FROM (SELECT a FROM t) d");
        assert!(matches!(&s.from[0], TableRef::Derived { alias, .. } if alias == "d"));
    }

    #[test]
    fn contains_predicate_is_a_function() {
        let e =
            parse_expression("CONTAINS(body, '\"parallel database\" OR \"heterogeneous query\"')")
                .unwrap();
        match e {
            Expr::Function { name, args, .. } => {
                assert_eq!(name, "CONTAINS");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cast_and_functions_with_distinct() {
        assert!(matches!(
            parse_expression("CAST(a AS BIGINT)").unwrap(),
            Expr::Cast { .. }
        ));
        assert!(matches!(
            parse_expression("COUNT(DISTINCT x)").unwrap(),
            Expr::Function { distinct: true, .. }
        ));
    }

    #[test]
    fn explain_and_explain_analyze() {
        match parse_statement("EXPLAIN SELECT a FROM t").unwrap() {
            Statement::Explain { analyze, stmt } => {
                assert!(!analyze);
                assert_eq!(stmt.projections.len(), 1);
            }
            other => panic!("expected Explain, got {other:?}"),
        }
        match parse_statement("explain analyze SELECT a FROM t WHERE a > 1;").unwrap() {
            Statement::Explain { analyze, .. } => assert!(analyze),
            other => panic!("expected Explain, got {other:?}"),
        }
        // EXPLAIN wraps SELECT only, and ANALYZE alone is not a statement.
        assert!(parse_statement("EXPLAIN DELETE FROM t").is_err());
        assert!(parse_statement("ANALYZE SELECT a FROM t").is_err());
        assert!(parse_statement("EXPLAIN ANALYZE").is_err());
    }

    #[test]
    fn error_paths() {
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("FROB x").is_err());
        assert!(parse_statement("SELECT a FROM a.b.c.d.e").is_err());
        assert!(parse_statement("SELECT a FROM t WHERE a NOT 5").is_err());
        assert!(parse_statement("SELECT a FROM t extra garbage !").is_err());
        assert!(parse_expression("DATE 'not-a-date'").is_err());
    }

    #[test]
    fn union_branches_and_trailing_order() {
        let s = sel("SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT c FROM v ORDER BY a");
        assert_eq!(s.union_branches.len(), 2);
        assert!(s.union_branches[0].1, "first branch is UNION ALL");
        assert!(!s.union_branches[1].1, "second branch is plain UNION");
        assert_eq!(
            s.order_by.len(),
            1,
            "trailing ORDER BY belongs to the union"
        );
        assert!(s.union_branches[1].0.order_by.is_empty());
        // ORDER BY before UNION is rejected.
        assert!(parse_statement("SELECT a FROM t ORDER BY a UNION SELECT b FROM u").is_err());
    }

    #[test]
    fn trailing_semicolon_and_empty_parts() {
        let s = sel("SELECT a FROM srv..t;");
        match &s.from[0] {
            TableRef::Named { name, .. } => assert_eq!(name.0, vec!["srv", "t"]),
            other => panic!("unexpected {other:?}"),
        }
    }
}
