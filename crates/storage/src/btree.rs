//! Ordered secondary indexes with range seeks — the `IRowsetIndex`
//! capability that makes a provider an *index provider* (paper §3.3).
//!
//! Entries map a composite key to the bookmarks of rows bearing it; range
//! scans return `(key, bookmark)` pairs in key order so the optimizer can
//! rely on the delivered sort order as a physical property.

use dhqp_oledb::KeyRange;
use dhqp_types::{DhqpError, Result, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;

/// A composite key ordered by [`Value::total_cmp`] lexicographically.
/// Shorter keys order before longer keys sharing the prefix, which makes
/// prefix seeks natural.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexKey(pub Vec<Value>);

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            let o = a.total_cmp(b);
            if o != Ordering::Equal {
                return o;
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A B-tree index over a table's key columns.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    pub name: String,
    /// Positions of the key columns within the table schema, in key order.
    pub key_positions: Vec<usize>,
    pub unique: bool,
    entries: BTreeMap<IndexKey, Vec<u64>>,
    len: usize,
}

impl BTreeIndex {
    pub fn new(name: impl Into<String>, key_positions: Vec<usize>, unique: bool) -> Self {
        BTreeIndex {
            name: name.into(),
            key_positions,
            unique,
            entries: BTreeMap::new(),
            len: 0,
        }
    }

    /// Extract this index's key from a full table row.
    pub fn key_of(&self, row: &[Value]) -> IndexKey {
        IndexKey(self.key_positions.iter().map(|&i| row[i].clone()).collect())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn insert(&mut self, key: IndexKey, bookmark: u64) -> Result<()> {
        let slot = self.entries.entry(key).or_default();
        if self.unique && !slot.is_empty() {
            return Err(DhqpError::Constraint(format!(
                "duplicate key in unique index '{}'",
                self.name
            )));
        }
        slot.push(bookmark);
        self.len += 1;
        Ok(())
    }

    pub fn remove(&mut self, key: &IndexKey, bookmark: u64) {
        if let Some(slot) = self.entries.get_mut(key) {
            if let Some(pos) = slot.iter().position(|&b| b == bookmark) {
                slot.swap_remove(pos);
                self.len -= 1;
            }
            if slot.is_empty() {
                self.entries.remove(key);
            }
        }
    }

    /// Range scan in key order; yields `(key, bookmark)`. Bound key prefixes
    /// may be shorter than the full key (prefix seek).
    pub fn range(&self, range: &KeyRange) -> Vec<(IndexKey, u64)> {
        // Translate prefix bounds into full-key bounds: a prefix lower bound
        // starts at the prefix itself (shorter keys sort first), a prefix
        // upper bound must extend past every key sharing the prefix, which
        // we achieve by using the exclusive successor semantics below.
        let low: Bound<IndexKey> = match &range.low {
            None => Bound::Unbounded,
            Some((k, true)) => Bound::Included(IndexKey(k.clone())),
            Some((k, false)) => Bound::Excluded(IndexKey(k.clone())),
        };
        let mut out = Vec::new();
        let iter = self.entries.range((low, Bound::<IndexKey>::Unbounded));
        for (key, bookmarks) in iter {
            // Exclusive low on a *prefix* must also skip longer keys that
            // share the prefix; delegate the fine-grained check to
            // KeyRange::contains which compares on the shared prefix only.
            if !range.contains(&key.0) {
                // Keys are ordered; once past the high bound we can stop.
                if let Some((hi, _)) = &range.high {
                    let shared = key.0.len().min(hi.len());
                    let cmp = IndexKey(key.0[..shared].to_vec()).cmp(&IndexKey(hi.clone()));
                    if cmp == Ordering::Greater {
                        break;
                    }
                }
                continue;
            }
            for &b in bookmarks {
                out.push((key.clone(), b));
            }
        }
        out
    }

    /// Bookmarks for an exact key match.
    pub fn seek(&self, key: &IndexKey) -> &[u64] {
        self.entries.get(key).map_or(&[], |v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: i64) -> IndexKey {
        IndexKey(vec![Value::Int(v)])
    }

    fn index_with(vals: &[i64]) -> BTreeIndex {
        let mut ix = BTreeIndex::new("ix", vec![0], false);
        for (i, &v) in vals.iter().enumerate() {
            ix.insert(key(v), i as u64).unwrap();
        }
        ix
    }

    #[test]
    fn range_scan_is_ordered_and_bounded() {
        let ix = index_with(&[5, 3, 9, 1, 7]);
        let r = KeyRange {
            low: Some((vec![Value::Int(3)], true)),
            high: Some((vec![Value::Int(7)], true)),
        };
        let hits: Vec<i64> = ix
            .range(&r)
            .iter()
            .map(|(k, _)| match &k.0[0] {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(hits, vec![3, 5, 7]);
    }

    #[test]
    fn unbounded_range_returns_everything_sorted() {
        let ix = index_with(&[5, 3, 9]);
        assert_eq!(ix.range(&KeyRange::all()).len(), 3);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut ix = BTreeIndex::new("u", vec![0], true);
        ix.insert(key(1), 0).unwrap();
        assert!(ix.insert(key(1), 1).is_err());
    }

    #[test]
    fn duplicates_allowed_on_non_unique() {
        let mut ix = BTreeIndex::new("n", vec![0], false);
        ix.insert(key(1), 0).unwrap();
        ix.insert(key(1), 1).unwrap();
        assert_eq!(ix.seek(&key(1)).len(), 2);
        ix.remove(&key(1), 0);
        assert_eq!(ix.seek(&key(1)), &[1]);
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn exact_seek_via_keyrange_eq() {
        let ix = index_with(&[2, 4, 4, 6]);
        let hits = ix.range(&KeyRange::eq(vec![Value::Int(4)]));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn composite_prefix_seek() {
        let mut ix = BTreeIndex::new("c", vec![0, 1], false);
        for (i, (a, b)) in [(1, 10), (1, 20), (2, 10), (3, 10)].iter().enumerate() {
            ix.insert(IndexKey(vec![Value::Int(*a), Value::Int(*b)]), i as u64)
                .unwrap();
        }
        // Prefix seek on a = 1 must return both (1,10) and (1,20).
        let hits = ix.range(&KeyRange::eq(vec![Value::Int(1)]));
        assert_eq!(hits.len(), 2);
        // Range a in [2, 3] returns the last two.
        let r = KeyRange {
            low: Some((vec![Value::Int(2)], true)),
            high: Some((vec![Value::Int(3)], true)),
        };
        assert_eq!(ix.range(&r).len(), 2);
    }

    #[test]
    fn shorter_key_sorts_before_extension() {
        assert!(IndexKey(vec![Value::Int(1)]) < IndexKey(vec![Value::Int(1), Value::Int(0)]));
    }
}
