//! The storage engine catalog: named tables, constraints and statistics,
//! plus the transactional write path.

use crate::histogram::analyze_table;
use crate::table::Table;
use crate::txn::{PendingOp, TxnState};
use dhqp_oledb::{TableStatistics, TxnId};
use dhqp_types::{DhqpError, IntervalSet, Result, Row, Schema};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};

/// A single-column CHECK constraint expressed as a value domain — the form
/// the paper's constraint property framework consumes ("the range of values
/// in each member table is enforced by a CHECK constraint on a column
/// designated as the partitioning column", §4.1.5).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckConstraint {
    pub name: String,
    pub column: String,
    pub domain: IntervalSet,
}

/// Declarative table definition used at creation time.
#[derive(Debug, Clone)]
pub struct TableDef {
    pub name: String,
    pub schema: Schema,
    /// `(index name, key columns, unique)`.
    pub indexes: Vec<(String, Vec<String>, bool)>,
    pub checks: Vec<CheckConstraint>,
}

impl TableDef {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        TableDef {
            name: name.into(),
            schema,
            indexes: Vec::new(),
            checks: Vec::new(),
        }
    }

    pub fn with_index(mut self, name: &str, columns: &[&str], unique: bool) -> Self {
        self.indexes.push((
            name.to_string(),
            columns.iter().map(|c| c.to_string()).collect(),
            unique,
        ));
        self
    }

    pub fn with_check(mut self, check: CheckConstraint) -> Self {
        self.checks.push(check);
        self
    }
}

/// An in-memory multi-table storage engine instance.
///
/// One `StorageEngine` plays the role of one server: the local SQL Server
/// instance, or — wrapped behind a simulated network link — a remote linked
/// server. Interior locking makes it shareable across sessions.
pub struct StorageEngine {
    name: String,
    tables: RwLock<BTreeMap<String, Table>>,
    stats: RwLock<HashMap<String, TableStatistics>>,
    txns: Mutex<HashMap<TxnId, TxnState>>,
    /// Test hook: when true, `prepare` fails (2PC failure injection).
    fail_prepare: std::sync::atomic::AtomicBool,
    /// Test hook: when true, `commit_txn` fails without consuming state,
    /// leaving the transaction recoverable (in-doubt at the coordinator).
    fail_commit: std::sync::atomic::AtomicBool,
}

impl StorageEngine {
    pub fn new(name: impl Into<String>) -> Self {
        StorageEngine {
            name: name.into(),
            tables: RwLock::new(BTreeMap::new()),
            stats: RwLock::new(HashMap::new()),
            txns: Mutex::new(HashMap::new()),
            fail_prepare: std::sync::atomic::AtomicBool::new(false),
            fail_commit: std::sync::atomic::AtomicBool::new(false),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    pub fn create_table(&self, def: TableDef) -> Result<()> {
        let key = Self::key(&def.name);
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(DhqpError::Catalog(format!(
                "table '{}' already exists",
                def.name
            )));
        }
        let mut table = Table::new(def.name.clone(), def.schema);
        table.checks = def.checks;
        for (ix_name, cols, unique) in &def.indexes {
            let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            table.create_index(ix_name, &col_refs, *unique)?;
        }
        tables.insert(key, table);
        Ok(())
    }

    pub fn drop_table(&self, name: &str) -> Result<()> {
        let key = Self::key(name);
        self.tables
            .write()
            .remove(&key)
            .map(|_| ())
            .ok_or_else(|| DhqpError::Catalog(format!("table '{name}' does not exist")))?;
        self.stats.write().remove(&key);
        Ok(())
    }

    pub fn table_names(&self) -> Vec<String> {
        self.tables
            .read()
            .values()
            .map(|t| t.name.clone())
            .collect()
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&Self::key(name))
    }

    /// Run `f` against a table under a read lock.
    pub fn with_table<R>(&self, name: &str, f: impl FnOnce(&Table) -> R) -> Result<R> {
        let tables = self.tables.read();
        let t = tables
            .get(&Self::key(name))
            .ok_or_else(|| DhqpError::Catalog(format!("table '{name}' does not exist")))?;
        Ok(f(t))
    }

    /// Run `f` against a table under a write lock.
    pub fn with_table_mut<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut Table) -> Result<R>,
    ) -> Result<R> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(&Self::key(name))
            .ok_or_else(|| DhqpError::Catalog(format!("table '{name}' does not exist")))?;
        f(t)
    }

    // ---- autocommit DML --------------------------------------------------

    pub fn insert_rows(&self, table: &str, rows: &[Row]) -> Result<u64> {
        self.with_table_mut(table, |t| {
            for r in rows {
                t.insert(r.clone())?;
            }
            Ok(rows.len() as u64)
        })
    }

    pub fn delete_bookmarks(&self, table: &str, bookmarks: &[u64]) -> Result<u64> {
        self.with_table_mut(table, |t| {
            for &b in bookmarks {
                t.delete(b)?;
            }
            Ok(bookmarks.len() as u64)
        })
    }

    pub fn update_bookmarks(&self, table: &str, bookmarks: &[u64], rows: &[Row]) -> Result<u64> {
        if bookmarks.len() != rows.len() {
            return Err(DhqpError::Execute(
                "update bookmark/row arity mismatch".into(),
            ));
        }
        self.with_table_mut(table, |t| {
            for (&b, r) in bookmarks.iter().zip(rows) {
                t.update(b, r.clone())?;
            }
            Ok(bookmarks.len() as u64)
        })
    }

    // ---- transactional write path (2PC participant) ----------------------

    /// Buffer an insert under `txn`; CHECK constraints are validated
    /// eagerly so the client learns of violations at statement time.
    pub fn txn_insert(&self, txn: TxnId, table: &str, rows: &[Row]) -> Result<u64> {
        self.with_table(table, |t| -> Result<()> {
            for r in rows {
                if r.len() != t.schema.len() {
                    return Err(DhqpError::Execute(format!(
                        "row arity {} does not match table '{}' arity {}",
                        r.len(),
                        t.name,
                        t.schema.len()
                    )));
                }
                t.validate_checks(r)?;
            }
            Ok(())
        })??;
        let mut txns = self.txns.lock();
        let state = txns.entry(txn).or_insert_with(TxnState::active);
        let ops = state.active_ops().ok_or_else(|| {
            DhqpError::Transaction(format!("transaction {txn} is no longer active"))
        })?;
        for r in rows {
            ops.push(PendingOp::Insert {
                table: table.to_string(),
                row: r.clone(),
            });
        }
        Ok(rows.len() as u64)
    }

    /// Buffer deletes under `txn`.
    pub fn txn_delete(&self, txn: TxnId, table: &str, bookmarks: &[u64]) -> Result<u64> {
        let mut txns = self.txns.lock();
        let state = txns.entry(txn).or_insert_with(TxnState::active);
        let ops = state.active_ops().ok_or_else(|| {
            DhqpError::Transaction(format!("transaction {txn} is no longer active"))
        })?;
        for &b in bookmarks {
            ops.push(PendingOp::Delete {
                table: table.to_string(),
                bookmark: b,
            });
        }
        Ok(bookmarks.len() as u64)
    }

    /// 2PC phase one. After `Ok`, this participant guarantees `commit_txn`
    /// will succeed.
    pub fn prepare_txn(&self, txn: TxnId) -> Result<()> {
        if self.fail_prepare.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(DhqpError::Transaction(format!(
                "injected prepare failure on '{}' for txn {txn}",
                self.name
            )));
        }
        let mut txns = self.txns.lock();
        // A participant that only read (no buffered writes) prepares
        // trivially.
        let Some(state) = txns.get_mut(&txn) else {
            return Ok(());
        };
        // Validate every buffered op against current state so commit cannot
        // fail: replay against a scratch copy of the touched tables.
        {
            let ops = state
                .active_ops()
                .ok_or_else(|| DhqpError::Transaction(format!("transaction {txn} not active")))?;
            let tables = self.tables.read();
            let mut scratch: HashMap<String, Table> = HashMap::new();
            for op in ops.iter() {
                let key = Self::key(op.table());
                if !scratch.contains_key(&key) {
                    let t = tables.get(&key).ok_or_else(|| {
                        DhqpError::Catalog(format!("table '{}' does not exist", op.table()))
                    })?;
                    scratch.insert(key.clone(), t.clone());
                }
                let t = scratch.get_mut(&key).expect("inserted above");
                op.apply(t)?;
            }
        }
        state.mark_prepared();
        Ok(())
    }

    /// 2PC phase two: apply buffered writes. Unknown transactions commit
    /// trivially (read-only participant).
    pub fn commit_txn(&self, txn: TxnId) -> Result<()> {
        // Fail *before* consuming the buffered state: a coordinator that saw
        // this error can re-deliver the commit during recovery and succeed.
        if self.fail_commit.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(DhqpError::Transaction(format!(
                "injected commit failure on '{}' for txn {txn}",
                self.name
            )));
        }
        let Some(state) = self.txns.lock().remove(&txn) else {
            return Ok(());
        };
        let mut tables = self.tables.write();
        for op in state.into_ops() {
            let key = Self::key(op.table());
            let t = tables
                .get_mut(&key)
                .ok_or_else(|| DhqpError::Catalog(format!("table '{}' vanished", op.table())))?;
            // Prepared transactions were validated; a failure here is an
            // engine invariant violation, not a user error.
            op.apply(t)?;
        }
        Ok(())
    }

    /// 2PC phase two (failure path): discard buffered writes.
    pub fn abort_txn(&self, txn: TxnId) -> Result<()> {
        self.txns.lock().remove(&txn);
        Ok(())
    }

    /// Whether a transaction has buffered state here.
    pub fn has_txn(&self, txn: TxnId) -> bool {
        self.txns.lock().contains_key(&txn)
    }

    /// Failure-injection hook for 2PC tests/benches.
    pub fn set_fail_prepare(&self, fail: bool) {
        self.fail_prepare
            .store(fail, std::sync::atomic::Ordering::Relaxed);
    }

    /// Failure-injection hook for the commit phase: while set, `commit_txn`
    /// errors without consuming the prepared state, modeling a participant
    /// that crashed between prepare and commit delivery.
    pub fn set_fail_commit(&self, fail: bool) {
        self.fail_commit
            .store(fail, std::sync::atomic::Ordering::Relaxed);
    }

    // ---- statistics -------------------------------------------------------

    /// Build (or rebuild) histogram statistics for a table.
    pub fn analyze(&self, table: &str, buckets: usize) -> Result<()> {
        let stats = self.with_table(table, |t| analyze_table(t, buckets))??;
        self.stats.write().insert(Self::key(table), stats);
        Ok(())
    }

    /// Statistics previously built by [`StorageEngine::analyze`].
    pub fn statistics(&self, table: &str) -> Option<TableStatistics> {
        self.stats.read().get(&Self::key(table)).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_types::{Column, DataType, Value};

    fn engine() -> StorageEngine {
        let e = StorageEngine::new("local");
        e.create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("id", DataType::Int)]),
        ))
        .unwrap();
        e
    }

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i)])
    }

    #[test]
    fn create_and_drop() {
        let e = engine();
        assert!(e.has_table("T"));
        assert!(e.create_table(TableDef::new("t", Schema::empty())).is_err());
        e.drop_table("t").unwrap();
        assert!(!e.has_table("t"));
        assert!(e.drop_table("t").is_err());
    }

    #[test]
    fn autocommit_dml_is_visible_immediately() {
        let e = engine();
        e.insert_rows("t", &[row(1), row(2)]).unwrap();
        assert_eq!(e.with_table("t", |t| t.row_count()).unwrap(), 2);
    }

    #[test]
    fn txn_writes_invisible_until_commit() {
        let e = engine();
        e.txn_insert(7, "t", &[row(1)]).unwrap();
        assert_eq!(e.with_table("t", |t| t.row_count()).unwrap(), 0);
        e.prepare_txn(7).unwrap();
        e.commit_txn(7).unwrap();
        assert_eq!(e.with_table("t", |t| t.row_count()).unwrap(), 1);
        assert!(!e.has_txn(7));
    }

    #[test]
    fn abort_discards_buffered_writes() {
        let e = engine();
        e.txn_insert(8, "t", &[row(1)]).unwrap();
        e.abort_txn(8).unwrap();
        assert_eq!(e.with_table("t", |t| t.row_count()).unwrap(), 0);
    }

    #[test]
    fn prepare_failure_injection() {
        let e = engine();
        e.txn_insert(9, "t", &[row(1)]).unwrap();
        e.set_fail_prepare(true);
        assert!(e.prepare_txn(9).is_err());
        e.set_fail_prepare(false);
        e.abort_txn(9).unwrap();
    }

    #[test]
    fn prepare_detects_unique_violation_across_buffered_ops() {
        let e = StorageEngine::new("local");
        e.create_table(
            TableDef::new(
                "u",
                Schema::new(vec![Column::not_null("id", DataType::Int)]),
            )
            .with_index("pk", &["id"], true),
        )
        .unwrap();
        e.txn_insert(1, "u", &[row(5), row(5)]).unwrap();
        assert!(
            e.prepare_txn(1).is_err(),
            "duplicate buffered keys must fail prepare"
        );
        e.abort_txn(1).unwrap();
        assert_eq!(e.with_table("u", |t| t.row_count()).unwrap(), 0);
    }

    #[test]
    fn no_writes_after_prepare() {
        let e = engine();
        e.txn_insert(3, "t", &[row(1)]).unwrap();
        e.prepare_txn(3).unwrap();
        assert!(e.txn_insert(3, "t", &[row(2)]).is_err());
        e.commit_txn(3).unwrap();
    }

    #[test]
    fn analyze_builds_statistics() {
        let e = engine();
        let rows: Vec<Row> = (0..100).map(row).collect();
        e.insert_rows("t", &rows).unwrap();
        e.analyze("t", 8).unwrap();
        let stats = e.statistics("t").unwrap();
        assert_eq!(stats.row_count, Some(100));
        assert!(stats.histogram("id").is_some());
    }
}
