//! Heap files: unordered row storage addressed by bookmark.
//!
//! A bookmark is a stable slot number — the storage-level identity OLE DB's
//! `IRowsetLocate` exposes and the *remote fetch* access path uses to pull
//! base rows located through an index.

use dhqp_types::{DhqpError, Result, Row};

/// An unordered collection of rows in stable slots.
#[derive(Debug, Default, Clone)]
pub struct Heap {
    slots: Vec<Option<Row>>,
    live: usize,
}

impl Heap {
    pub fn new() -> Self {
        Heap::default()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a row, returning its bookmark. Slots are never reused, so
    /// bookmarks stay unique for the heap's lifetime (deleted bookmarks
    /// dangle rather than aliasing new rows).
    pub fn insert(&mut self, row: Row) -> u64 {
        let bookmark = self.slots.len() as u64;
        self.slots.push(Some(row));
        self.live += 1;
        bookmark
    }

    /// Fetch by bookmark.
    pub fn get(&self, bookmark: u64) -> Option<&Row> {
        self.slots.get(bookmark as usize).and_then(|s| s.as_ref())
    }

    /// Delete by bookmark; returns the removed row.
    pub fn delete(&mut self, bookmark: u64) -> Result<Row> {
        let slot = self
            .slots
            .get_mut(bookmark as usize)
            .ok_or_else(|| DhqpError::Execute(format!("invalid bookmark {bookmark}")))?;
        let row = slot
            .take()
            .ok_or_else(|| DhqpError::Execute(format!("bookmark {bookmark} already deleted")))?;
        self.live -= 1;
        Ok(row)
    }

    /// Replace the row at `bookmark`, returning the old row.
    pub fn update(&mut self, bookmark: u64, row: Row) -> Result<Row> {
        let slot = self
            .slots
            .get_mut(bookmark as usize)
            .ok_or_else(|| DhqpError::Execute(format!("invalid bookmark {bookmark}")))?;
        match slot {
            Some(old) => Ok(std::mem::replace(old, row)),
            None => Err(DhqpError::Execute(format!(
                "bookmark {bookmark} already deleted"
            ))),
        }
    }

    /// Iterate live rows with their bookmarks, in slot order.
    pub fn scan(&self) -> impl Iterator<Item = (u64, &Row)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (i as u64, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_types::Value;

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i)])
    }

    #[test]
    fn insert_assigns_increasing_bookmarks() {
        let mut h = Heap::new();
        assert_eq!(h.insert(row(1)), 0);
        assert_eq!(h.insert(row(2)), 1);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn delete_frees_slot_without_reuse() {
        let mut h = Heap::new();
        let b = h.insert(row(1));
        h.delete(b).unwrap();
        assert!(h.get(b).is_none());
        assert_eq!(h.len(), 0);
        // New insert gets a fresh bookmark, never the deleted one.
        assert_eq!(h.insert(row(2)), 1);
        assert!(h.delete(b).is_err(), "double delete must fail");
    }

    #[test]
    fn update_replaces_in_place() {
        let mut h = Heap::new();
        let b = h.insert(row(1));
        let old = h.update(b, row(9)).unwrap();
        assert_eq!(old.get(0), &Value::Int(1));
        assert_eq!(h.get(b).unwrap().get(0), &Value::Int(9));
    }

    #[test]
    fn scan_skips_deleted() {
        let mut h = Heap::new();
        let a = h.insert(row(1));
        h.insert(row(2));
        h.delete(a).unwrap();
        let rows: Vec<_> = h.scan().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, 1);
    }

    #[test]
    fn invalid_bookmark_errors() {
        let mut h = Heap::new();
        assert!(h.delete(42).is_err());
        assert!(h.update(42, row(0)).is_err());
        assert!(h.get(42).is_none());
    }
}
