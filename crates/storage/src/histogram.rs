//! Statistics construction: equi-depth histograms per column plus table
//! cardinality, in the shape the OLE DB statistics extension (§3.2.4)
//! exposes to consumers.

use crate::table::Table;
use dhqp_oledb::{Histogram, TableStatistics};
use dhqp_types::Result;

/// Build statistics for every column of a table.
///
/// Columns whose values are all NULL get no histogram (there is nothing to
/// bucket), but their null counts still shape `row_count`.
pub fn analyze_table(table: &Table, buckets: usize) -> Result<TableStatistics> {
    let mut stats = TableStatistics {
        row_count: Some(table.row_count()),
        ..Default::default()
    };
    let total = table.row_count() as f64;
    for col in table.schema.columns() {
        let values = table.sorted_column_values(&col.name)?;
        let null_rows = total - values.len() as f64;
        if let Some(h) = Histogram::build(&values, buckets, null_rows) {
            stats.set_histogram(&col.name, h);
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_types::{Column, DataType, Interval, IntervalSet, Row, Schema, Value};

    fn table_with_ints(n: i64) -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("maybe", DataType::Int),
            ]),
        );
        for i in 0..n {
            let maybe = if i % 2 == 0 {
                Value::Int(i * 10)
            } else {
                Value::Null
            };
            t.insert(Row::new(vec![Value::Int(i), maybe])).unwrap();
        }
        t
    }

    #[test]
    fn analyze_covers_all_columns() {
        let stats = analyze_table(&table_with_ints(100), 8).unwrap();
        assert_eq!(stats.row_count, Some(100));
        assert!(stats.histogram("id").is_some());
        let maybe = stats.histogram("maybe").unwrap();
        assert!((maybe.null_rows - 50.0).abs() < 1e-9);
        assert!((maybe.total_rows - 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_estimates_match_reality() {
        let stats = analyze_table(&table_with_ints(1000), 16).unwrap();
        let h = stats.histogram("id").unwrap();
        let half = IntervalSet::single(Interval::less_than(Value::Int(500)));
        let est = h.estimate_set(&half);
        assert!(
            (est - 500.0).abs() < 70.0,
            "estimate {est} should be near 500"
        );
    }

    #[test]
    fn all_null_column_has_no_histogram() {
        let mut t = Table::new("t", Schema::new(vec![Column::new("n", DataType::Int)]));
        t.insert(Row::new(vec![Value::Null])).unwrap();
        let stats = analyze_table(&t, 4).unwrap();
        assert!(stats.histogram("n").is_none());
    }
}
