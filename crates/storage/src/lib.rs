//! The local storage engine.
//!
//! SQL Server accesses its own storage engine through OLE DB — "the code
//! patterns to access data from local and external sources are almost
//! identical" (paper §2). This crate follows suit: it implements heap
//! tables with bookmarks, B-tree secondary indexes with range seeks,
//! CHECK constraints, equi-depth histogram statistics and a transactional
//! write buffer with two-phase-commit participant hooks — and then exposes
//! all of it through the `dhqp_oledb` traits via [`provider::LocalDataSource`].
//!
//! The same engine type doubles as the "remote SQL Server" when wrapped
//! behind a network-simulating provider, which is how the repo reproduces
//! distributed experiments on one machine.

pub mod btree;
pub mod catalog;
pub mod heap;
pub mod histogram;
pub mod provider;
pub mod table;
pub mod txn;

pub use catalog::{CheckConstraint, StorageEngine, TableDef};
pub use provider::LocalDataSource;
pub use table::Table;
