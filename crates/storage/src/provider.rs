//! The storage engine exposed through the OLE DB-style traits.
//!
//! SQL Server's relational engine talks to its *own* storage engine through
//! OLE DB (paper Figure 1); `LocalDataSource` is that arrangement here. It
//! is a *base table* provider: rowsets, indexes, bookmarks, statistics and
//! transaction enlistment — but no command object (all query processing
//! happens in the relational engine above it). The fully SQL-capable remote
//! provider lives in `dhqp-providers` and wraps a whole engine.

use crate::catalog::StorageEngine;
use dhqp_oledb::{
    ColumnInfo, DataSource, KeyRange, MemRowset, ProviderCapabilities, Rowset, Session, SqlSupport,
    TableInfo, TxnId,
};
use dhqp_types::{DhqpError, Result, Row};
use std::sync::Arc;

/// An OLE DB-style data source over a [`StorageEngine`].
pub struct LocalDataSource {
    engine: Arc<StorageEngine>,
}

impl LocalDataSource {
    pub fn new(engine: Arc<StorageEngine>) -> Self {
        LocalDataSource { engine }
    }

    pub fn engine(&self) -> &Arc<StorageEngine> {
        &self.engine
    }
}

impl DataSource for LocalDataSource {
    fn name(&self) -> &str {
        self.engine.name()
    }

    fn capabilities(&self) -> ProviderCapabilities {
        ProviderCapabilities {
            provider_name: "NATIVE-STORAGE".into(),
            sql_support: SqlSupport::None,
            proprietary_command: false,
            index_support: true,
            statistics_support: true,
            transaction_support: true,
            dialect: Default::default(),
            latency_hint_us: 0,
        }
    }

    fn tables(&self) -> Result<Vec<TableInfo>> {
        let mut out = Vec::new();
        for name in self.engine.table_names() {
            let info = self.engine.with_table(&name, |t| {
                let columns = t
                    .schema
                    .columns()
                    .iter()
                    .map(|c| ColumnInfo {
                        name: c.name.clone(),
                        data_type: c.data_type,
                        nullable: c.nullable,
                    })
                    .collect();
                TableInfo {
                    name: t.name.clone(),
                    columns,
                    indexes: t.index_infos(),
                    cardinality: Some(t.row_count()),
                }
            })?;
            out.push(info);
        }
        Ok(out)
    }

    fn create_session(&self) -> Result<Box<dyn Session>> {
        Ok(Box::new(LocalSession {
            engine: Arc::clone(&self.engine),
            txn: None,
        }))
    }
}

/// A session over the local storage engine. When enlisted in a distributed
/// transaction, DML is buffered in the engine's 2PC participant state.
pub struct LocalSession {
    engine: Arc<StorageEngine>,
    txn: Option<TxnId>,
}

impl Session for LocalSession {
    fn open_rowset(&mut self, table: &str) -> Result<Box<dyn Rowset>> {
        let (schema, rows) = self
            .engine
            .with_table(table, |t| (t.schema.clone(), t.scan_rows()))?;
        Ok(Box::new(MemRowset::new(schema, rows)))
    }

    fn open_index(
        &mut self,
        table: &str,
        index: &str,
        range: &KeyRange,
    ) -> Result<Box<dyn Rowset>> {
        let (schema, rows) = self.engine.with_table(table, |t| {
            t.index_range(index, range)
                .map(|rows| (t.schema.clone(), rows))
        })??;
        Ok(Box::new(MemRowset::new(schema, rows)))
    }

    fn fetch_by_bookmarks(&mut self, table: &str, bookmarks: &[u64]) -> Result<Vec<Row>> {
        self.engine.with_table(table, |t| {
            bookmarks
                .iter()
                .map(|&b| {
                    t.heap
                        .get(b)
                        .map(|r| Row::with_bookmark(r.values.clone(), b))
                        .ok_or_else(|| DhqpError::Execute(format!("dangling bookmark {b}")))
                })
                .collect::<Result<Vec<Row>>>()
        })?
    }

    fn histogram(&mut self, table: &str, column: &str) -> Result<Option<dhqp_oledb::Histogram>> {
        Ok(self
            .engine
            .statistics(table)
            .and_then(|s| s.histogram(column).cloned()))
    }

    fn join_transaction(&mut self, txn: TxnId) -> Result<()> {
        self.txn = Some(txn);
        Ok(())
    }

    fn prepare(&mut self, txn: TxnId) -> Result<()> {
        self.engine.prepare_txn(txn)
    }

    fn commit(&mut self, txn: TxnId) -> Result<()> {
        self.engine.commit_txn(txn)?;
        self.txn = None;
        Ok(())
    }

    fn abort(&mut self, txn: TxnId) -> Result<()> {
        self.engine.abort_txn(txn)?;
        self.txn = None;
        Ok(())
    }

    fn insert(&mut self, table: &str, rows: &[Row]) -> Result<u64> {
        match self.txn {
            Some(txn) => self.engine.txn_insert(txn, table, rows),
            None => self.engine.insert_rows(table, rows),
        }
    }

    fn delete_by_bookmarks(&mut self, table: &str, bookmarks: &[u64]) -> Result<u64> {
        match self.txn {
            Some(txn) => self.engine.txn_delete(txn, table, bookmarks),
            None => self.engine.delete_bookmarks(table, bookmarks),
        }
    }

    fn update_by_bookmarks(
        &mut self,
        table: &str,
        bookmarks: &[u64],
        updates: &[Row],
    ) -> Result<u64> {
        match self.txn {
            // Model an update as delete+insert inside the buffer.
            Some(txn) => {
                self.engine.txn_delete(txn, table, bookmarks)?;
                self.engine.txn_insert(txn, table, updates)
            }
            None => self.engine.update_bookmarks(table, bookmarks, updates),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableDef;
    use dhqp_oledb::RowsetExt;
    use dhqp_types::{Column, DataType, Schema, Value};

    fn source() -> LocalDataSource {
        let engine = Arc::new(StorageEngine::new("srv1"));
        engine
            .create_table(
                TableDef::new(
                    "emp",
                    Schema::new(vec![
                        Column::not_null("id", DataType::Int),
                        Column::new("dept", DataType::Str),
                    ]),
                )
                .with_index("pk_emp", &["id"], true),
            )
            .unwrap();
        engine
            .insert_rows(
                "emp",
                &[
                    Row::new(vec![Value::Int(1), Value::Str("hr".into())]),
                    Row::new(vec![Value::Int(2), Value::Str("eng".into())]),
                    Row::new(vec![Value::Int(3), Value::Str("eng".into())]),
                ],
            )
            .unwrap();
        engine.analyze("emp", 4).unwrap();
        LocalDataSource::new(engine)
    }

    #[test]
    fn metadata_reports_indexes_and_cardinality() {
        let ds = source();
        let t = ds.table("EMP").unwrap();
        assert_eq!(t.cardinality, Some(3));
        assert_eq!(t.indexes.len(), 1);
        assert!(ds.table("nope").is_err());
    }

    #[test]
    fn session_opens_rowsets_and_indexes() {
        let ds = source();
        let mut s = ds.create_session().unwrap();
        assert_eq!(s.open_rowset("emp").unwrap().count_rows().unwrap(), 3);
        let mut idx = s
            .open_index("emp", "pk_emp", &KeyRange::eq(vec![Value::Int(2)]))
            .unwrap();
        let rows = idx.collect_rows().unwrap();
        assert_eq!(rows.len(), 1);
        let bm = rows[0].bookmark.unwrap();
        let fetched = s.fetch_by_bookmarks("emp", &[bm]).unwrap();
        assert_eq!(fetched[0].get(1), &Value::Str("eng".into()));
    }

    #[test]
    fn histogram_flows_through_session() {
        let ds = source();
        let mut s = ds.create_session().unwrap();
        assert!(s.histogram("emp", "id").unwrap().is_some());
        assert!(s.histogram("emp", "ghost").unwrap().is_none());
    }

    #[test]
    fn enlisted_session_buffers_until_commit() {
        let ds = source();
        let mut s = ds.create_session().unwrap();
        s.join_transaction(42).unwrap();
        s.insert("emp", &[Row::new(vec![Value::Int(9), Value::Null])])
            .unwrap();
        assert_eq!(ds.engine().with_table("emp", |t| t.row_count()).unwrap(), 3);
        s.prepare(42).unwrap();
        s.commit(42).unwrap();
        assert_eq!(ds.engine().with_table("emp", |t| t.row_count()).unwrap(), 4);
    }

    #[test]
    fn capability_class_is_index_provider() {
        let ds = source();
        assert_eq!(ds.capabilities().class(), dhqp_oledb::ProviderClass::Index);
        assert!(!ds.capabilities().has_command());
    }
}
