//! A table: heap + secondary indexes + CHECK constraints, kept consistent
//! across DML.

use crate::btree::BTreeIndex;
use crate::catalog::CheckConstraint;
use crate::heap::Heap;
use dhqp_oledb::{IndexInfo, KeyRange};
use dhqp_types::{DhqpError, Result, Row, Schema, Value};

/// A base table in the storage engine.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub schema: Schema,
    pub heap: Heap,
    pub indexes: Vec<BTreeIndex>,
    pub checks: Vec<CheckConstraint>,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            heap: Heap::new(),
            indexes: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// Number of live rows.
    pub fn row_count(&self) -> u64 {
        self.heap.len() as u64
    }

    /// Add a secondary index over the named columns, populating it from
    /// existing rows.
    pub fn create_index(&mut self, name: &str, columns: &[&str], unique: bool) -> Result<()> {
        if self
            .indexes
            .iter()
            .any(|ix| ix.name.eq_ignore_ascii_case(name))
        {
            return Err(DhqpError::Catalog(format!("index '{name}' already exists")));
        }
        let mut positions = Vec::with_capacity(columns.len());
        for c in columns {
            positions.push(self.schema.index_of(c).ok_or_else(|| {
                DhqpError::Catalog(format!("no column '{c}' in table '{}'", self.name))
            })?);
        }
        let mut ix = BTreeIndex::new(name, positions, unique);
        for (bookmark, row) in self.heap.scan() {
            let key = ix.key_of(&row.values);
            ix.insert(key, bookmark)?;
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// Validate CHECK constraints for a candidate row. SQL semantics: a
    /// constraint is violated only when it evaluates to FALSE; NULL passes.
    pub fn validate_checks(&self, row: &Row) -> Result<()> {
        for check in &self.checks {
            let pos = self.schema.index_of(&check.column).ok_or_else(|| {
                DhqpError::Catalog(format!(
                    "check constraint '{}' references unknown column '{}'",
                    check.name, check.column
                ))
            })?;
            let v = row.get(pos);
            if !v.is_null() && !check.domain.contains(v) {
                return Err(DhqpError::Constraint(format!(
                    "value {v} for column '{}' violates CHECK constraint '{}' (domain {})",
                    check.column, check.name, check.domain
                )));
            }
        }
        Ok(())
    }

    /// Insert one row, maintaining indexes; returns its bookmark.
    pub fn insert(&mut self, row: Row) -> Result<u64> {
        if row.len() != self.schema.len() {
            return Err(DhqpError::Execute(format!(
                "row arity {} does not match table '{}' arity {}",
                row.len(),
                self.name,
                self.schema.len()
            )));
        }
        self.validate_checks(&row)?;
        // Probe unique indexes before touching anything so a violation
        // leaves the table unchanged.
        for ix in &self.indexes {
            if ix.unique {
                let key = ix.key_of(&row.values);
                if !ix.seek(&key).is_empty() {
                    return Err(DhqpError::Constraint(format!(
                        "duplicate key in unique index '{}' on '{}'",
                        ix.name, self.name
                    )));
                }
            }
        }
        let bookmark = self.heap.insert(row);
        let row_ref = self.heap.get(bookmark).expect("row just inserted").clone();
        for ix in &mut self.indexes {
            let key = ix.key_of(&row_ref.values);
            ix.insert(key, bookmark)?;
        }
        Ok(bookmark)
    }

    /// Delete by bookmark, maintaining indexes.
    pub fn delete(&mut self, bookmark: u64) -> Result<Row> {
        let row = self.heap.delete(bookmark)?;
        for ix in &mut self.indexes {
            let key = ix.key_of(&row.values);
            ix.remove(&key, bookmark);
        }
        Ok(row)
    }

    /// Update by bookmark, maintaining indexes and constraints.
    pub fn update(&mut self, bookmark: u64, new_row: Row) -> Result<Row> {
        self.validate_checks(&new_row)?;
        let old = self.heap.update(bookmark, new_row.clone())?;
        for ix in &mut self.indexes {
            let old_key = ix.key_of(&old.values);
            let new_key = ix.key_of(&new_row.values);
            if old_key != new_key {
                ix.remove(&old_key, bookmark);
                ix.insert(new_key, bookmark)?;
            }
        }
        Ok(old)
    }

    /// All live rows with bookmarks attached (table scan order).
    pub fn scan_rows(&self) -> Vec<Row> {
        self.heap
            .scan()
            .map(|(b, r)| Row::with_bookmark(r.values.clone(), b))
            .collect()
    }

    /// Index range scan: rows fetched through the named index in key order,
    /// with bookmarks attached.
    pub fn index_range(&self, index: &str, range: &KeyRange) -> Result<Vec<Row>> {
        let ix = self
            .indexes
            .iter()
            .find(|ix| ix.name.eq_ignore_ascii_case(index))
            .ok_or_else(|| {
                DhqpError::Catalog(format!("no index '{index}' on table '{}'", self.name))
            })?;
        Ok(ix
            .range(range)
            .into_iter()
            .filter_map(|(_, b)| {
                self.heap
                    .get(b)
                    .map(|r| Row::with_bookmark(r.values.clone(), b))
            })
            .collect())
    }

    /// Index metadata in provider form.
    pub fn index_infos(&self) -> Vec<IndexInfo> {
        self.indexes
            .iter()
            .map(|ix| IndexInfo {
                name: ix.name.clone(),
                key_columns: ix
                    .key_positions
                    .iter()
                    .map(|&p| self.schema.column(p).name.clone())
                    .collect(),
                unique: ix.unique,
            })
            .collect()
    }

    /// Non-null values of one column, sorted — histogram input.
    pub fn sorted_column_values(&self, column: &str) -> Result<Vec<Value>> {
        let pos = self.schema.index_of(column).ok_or_else(|| {
            DhqpError::Catalog(format!("no column '{column}' in table '{}'", self.name))
        })?;
        let mut vals: Vec<Value> = self
            .heap
            .scan()
            .map(|(_, r)| r.get(pos).clone())
            .filter(|v| !v.is_null())
            .collect();
        vals.sort_by(|a, b| a.total_cmp(b));
        Ok(vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_types::{Column, DataType, Interval, IntervalSet};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Str),
        ]);
        Table::new("t", schema)
    }

    fn row(id: i64, name: &str) -> Row {
        Row::new(vec![Value::Int(id), Value::Str(name.into())])
    }

    #[test]
    fn insert_and_scan() {
        let mut t = table();
        t.insert(row(1, "a")).unwrap();
        t.insert(row(2, "b")).unwrap();
        let rows = t.scan_rows();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].bookmark.is_some());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = table();
        assert!(t.insert(Row::new(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn index_maintained_across_dml() {
        let mut t = table();
        let b1 = t.insert(row(5, "a")).unwrap();
        t.insert(row(3, "b")).unwrap();
        t.create_index("ix_id", &["id"], true).unwrap();
        // New inserts hit the index.
        t.insert(row(4, "c")).unwrap();
        let hits = t.index_range("ix_id", &KeyRange::all()).unwrap();
        let ids: Vec<i64> = hits
            .iter()
            .map(|r| match r.get(0) {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![3, 4, 5]);
        // Update moves the index entry.
        t.update(b1, row(9, "a2")).unwrap();
        let hits = t
            .index_range("ix_id", &KeyRange::eq(vec![Value::Int(9)]))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert!(t
            .index_range("ix_id", &KeyRange::eq(vec![Value::Int(5)]))
            .unwrap()
            .is_empty());
        // Delete removes it.
        t.delete(b1).unwrap();
        assert!(t
            .index_range("ix_id", &KeyRange::eq(vec![Value::Int(9)]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unique_violation_leaves_table_unchanged() {
        let mut t = table();
        t.create_index("ix_id", &["id"], true).unwrap();
        t.insert(row(1, "a")).unwrap();
        assert!(t.insert(row(1, "dup")).is_err());
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.indexes[0].len(), 1);
    }

    #[test]
    fn check_constraint_enforced_null_passes() {
        let mut t = table();
        t.checks.push(CheckConstraint {
            name: "ck_id".into(),
            column: "id".into(),
            domain: IntervalSet::single(Interval::between(Value::Int(0), Value::Int(10))),
        });
        assert!(t.insert(row(5, "ok")).is_ok());
        assert!(t.insert(row(50, "bad")).is_err());
        // NULL passes a CHECK (SQL semantics).
        let null_row = Row::new(vec![Value::Null, Value::Str("n".into())]);
        assert!(t.validate_checks(&null_row).is_ok());
    }

    #[test]
    fn sorted_column_values_excludes_nulls() {
        let mut t = table();
        t.insert(row(3, "a")).unwrap();
        t.insert(Row::new(vec![Value::Int(1), Value::Null]))
            .unwrap();
        let vals = t.sorted_column_values("id").unwrap();
        assert_eq!(vals, vec![Value::Int(1), Value::Int(3)]);
        let names = t.sorted_column_values("name").unwrap();
        assert_eq!(names.len(), 1);
    }
}
