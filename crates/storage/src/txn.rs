//! Buffered transactional writes: the storage-side half of two-phase commit.
//!
//! A `StorageEngine` is a 2PC *participant*: the coordinator (the `dhqp-dtc`
//! crate, standing in for Microsoft DTC) drives `prepare`/`commit`/`abort`
//! across participants; each participant buffers its writes until the
//! decision arrives.

use crate::table::Table;
use dhqp_types::{Result, Row};

/// One buffered write operation.
#[derive(Debug, Clone)]
pub enum PendingOp {
    Insert {
        table: String,
        row: Row,
    },
    Delete {
        table: String,
        bookmark: u64,
    },
    Update {
        table: String,
        bookmark: u64,
        row: Row,
    },
}

impl PendingOp {
    pub fn table(&self) -> &str {
        match self {
            PendingOp::Insert { table, .. }
            | PendingOp::Delete { table, .. }
            | PendingOp::Update { table, .. } => table,
        }
    }

    /// Apply the operation to a table (used both for prepare-time validation
    /// against a scratch copy and for commit-time application).
    pub fn apply(&self, t: &mut Table) -> Result<()> {
        match self {
            PendingOp::Insert { row, .. } => t.insert(row.clone()).map(|_| ()),
            PendingOp::Delete { bookmark, .. } => t.delete(*bookmark).map(|_| ()),
            PendingOp::Update { bookmark, row, .. } => t.update(*bookmark, row.clone()).map(|_| ()),
        }
    }
}

/// Participant-side transaction lifecycle.
#[derive(Debug)]
pub enum TxnState {
    /// Accepting new operations.
    Active(Vec<PendingOp>),
    /// Voted yes; no further operations may be added.
    Prepared(Vec<PendingOp>),
}

impl TxnState {
    pub fn active() -> Self {
        TxnState::Active(Vec::new())
    }

    /// Mutable op buffer while still active, `None` once prepared.
    pub fn active_ops(&mut self) -> Option<&mut Vec<PendingOp>> {
        match self {
            TxnState::Active(ops) => Some(ops),
            TxnState::Prepared(_) => None,
        }
    }

    pub fn mark_prepared(&mut self) {
        if let TxnState::Active(ops) = self {
            *self = TxnState::Prepared(std::mem::take(ops));
        }
    }

    pub fn into_ops(self) -> Vec<PendingOp> {
        match self {
            TxnState::Active(ops) | TxnState::Prepared(ops) => ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_types::{Column, DataType, Schema, Value};

    #[test]
    fn state_machine_transitions() {
        let mut s = TxnState::active();
        s.active_ops().unwrap().push(PendingOp::Delete {
            table: "t".into(),
            bookmark: 0,
        });
        s.mark_prepared();
        assert!(s.active_ops().is_none());
        assert_eq!(s.into_ops().len(), 1);
    }

    #[test]
    fn apply_round_trip() {
        let mut t = Table::new("t", Schema::new(vec![Column::not_null("x", DataType::Int)]));
        let ins = PendingOp::Insert {
            table: "t".into(),
            row: Row::new(vec![Value::Int(1)]),
        };
        ins.apply(&mut t).unwrap();
        assert_eq!(t.row_count(), 1);
        let del = PendingOp::Delete {
            table: "t".into(),
            bookmark: 0,
        };
        del.apply(&mut t).unwrap();
        assert_eq!(t.row_count(), 0);
        assert_eq!(ins.table(), "t");
    }
}
