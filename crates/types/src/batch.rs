//! Chunked-row batches: the unit of vectorized data flow.
//!
//! A [`RowBatch`] is a schema-fixed chunk of rows — every row in a batch
//! has the layout of the producing rowset's schema, so the schema travels
//! with the cursor (as it always has) and the batch carries only data.
//! Batches are the currency of the engine's vectorized pipeline: operators
//! hand whole chunks down the tree, the network layer ships one simulated
//! round trip per chunk, and bounded channels move chunks instead of rows.

use crate::row::Row;

/// A chunk of rows sharing one schema (the producing rowset's).
///
/// The batch itself is deliberately dumb: a sized container with cheap
/// iteration, truncation (for mid-batch fault windows and retry re-slicing)
/// and an aggregate wire size. Row-accurate accounting stays possible
/// because every consumer can still see the individual rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowBatch {
    rows: Vec<Row>,
}

impl RowBatch {
    /// An empty batch with capacity for `cap` rows.
    pub fn with_capacity(cap: usize) -> Self {
        RowBatch {
            rows: Vec::with_capacity(cap),
        }
    }

    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Keep only the first `n` rows (re-slicing a partially deliverable
    /// batch: fault windows and retry rewinds cut on row boundaries).
    pub fn truncate(&mut self, n: usize) {
        self.rows.truncate(n);
    }

    /// Total wire size of the batch: the sum of its rows' wire sizes, so
    /// shipping one batch costs exactly as many bytes as shipping its rows
    /// one at a time.
    pub fn wire_size(&self) -> usize {
        self.rows.iter().map(Row::wire_size).sum()
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }

    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }
}

impl From<Vec<Row>> for RowBatch {
    fn from(rows: Vec<Row>) -> Self {
        RowBatch { rows }
    }
}

impl FromIterator<Row> for RowBatch {
    fn from_iter<I: IntoIterator<Item = Row>>(iter: I) -> Self {
        RowBatch {
            rows: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for RowBatch {
    type Item = Row;
    type IntoIter = std::vec::IntoIter<Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.into_iter()
    }
}

impl<'a> IntoIterator for &'a RowBatch {
    type Item = &'a Row;
    type IntoIter = std::slice::Iter<'a, Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn ints(vals: &[i64]) -> RowBatch {
        vals.iter()
            .map(|&i| Row::new(vec![Value::Int(i)]))
            .collect()
    }

    #[test]
    fn wire_size_matches_per_row_sum() {
        let batch = ints(&[1, 2, 3]);
        let per_row: usize = batch.iter().map(Row::wire_size).sum();
        assert_eq!(batch.wire_size(), per_row);
        assert_eq!(batch.wire_size(), 3 * 16); // 8 header + 8 int each
    }

    #[test]
    fn truncate_reslices_on_row_boundary() {
        let mut batch = ints(&[1, 2, 3, 4]);
        batch.truncate(2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.rows()[1].get(0), &Value::Int(2));
        batch.truncate(10); // no-op past the end
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn iteration_and_conversion() {
        let batch = ints(&[7, 8]);
        assert!(!batch.is_empty());
        let rows = batch.clone().into_rows();
        assert_eq!(rows.len(), 2);
        let rebuilt = RowBatch::from(rows);
        assert_eq!(rebuilt, batch);
        assert_eq!((&batch).into_iter().count(), 2);
        assert_eq!(batch.into_iter().count(), 2);
    }
}
