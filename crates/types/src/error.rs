//! The common error type used across all `dhqp` crates.

use std::fmt;

/// Convenient alias used throughout the engine.
pub type Result<T> = std::result::Result<T, DhqpError>;

/// Unified error type for the whole engine.
///
/// Variants are grouped by the subsystem that typically raises them; the
/// payload is always a human-readable message because errors cross the
/// provider boundary (where, as in OLE DB, only a status and text survive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhqpError {
    /// Lexing / parsing failures, with a position hint when available.
    Parse(String),
    /// Name resolution / typing failures during algebrization.
    Bind(String),
    /// Failures inside the Cascades optimizer (no plan found, internal
    /// invariant broken).
    Optimize(String),
    /// Runtime failures in the executor.
    Execute(String),
    /// Errors surfaced by a provider (connection, command, rowset).
    Provider(String),
    /// Type-system violations: invalid cast, incomparable values, etc.
    Type(String),
    /// Catalog problems: unknown table/column/linked server, duplicates.
    Catalog(String),
    /// Constraint violations (CHECK, partitioning ranges) during DML.
    Constraint(String),
    /// Transaction failures, including 2PC aborts.
    Transaction(String),
    /// Delayed schema validation failure: remote schema drifted between
    /// plan compilation and execution (paper §4.1.5).
    SchemaDrift(String),
    /// Feature exists in the paper's system but is intentionally out of
    /// scope here; raising it beats silently returning wrong answers.
    Unsupported(String),
    /// A remote operation exceeded its deadline (stalled link, slow
    /// provider). Transient: the retry layer may re-issue idempotent work.
    Timeout(String),
    /// A provider or link refused service (connection refused, dropped
    /// stream). Transient: the retry layer may re-issue idempotent work.
    Unavailable(String),
}

impl DhqpError {
    /// Short machine-friendly category name, used by tests and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            DhqpError::Parse(_) => "parse",
            DhqpError::Bind(_) => "bind",
            DhqpError::Optimize(_) => "optimize",
            DhqpError::Execute(_) => "execute",
            DhqpError::Provider(_) => "provider",
            DhqpError::Type(_) => "type",
            DhqpError::Catalog(_) => "catalog",
            DhqpError::Constraint(_) => "constraint",
            DhqpError::Transaction(_) => "transaction",
            DhqpError::SchemaDrift(_) => "schema-drift",
            DhqpError::Unsupported(_) => "unsupported",
            DhqpError::Timeout(_) => "timeout",
            DhqpError::Unavailable(_) => "unavailable",
        }
    }

    /// Whether re-issuing the failed operation could plausibly succeed.
    ///
    /// Only faults attributable to the *transport* — a refused connection,
    /// a dropped stream, a deadline hit — are transient. Everything the
    /// provider said about the request itself (parse, bind, constraint,
    /// transaction outcome, ...) is permanent: retrying would either fail
    /// identically or, worse, repeat non-idempotent work.
    pub fn is_retryable(&self) -> bool {
        matches!(self, DhqpError::Timeout(_) | DhqpError::Unavailable(_))
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            DhqpError::Parse(m)
            | DhqpError::Bind(m)
            | DhqpError::Optimize(m)
            | DhqpError::Execute(m)
            | DhqpError::Provider(m)
            | DhqpError::Type(m)
            | DhqpError::Catalog(m)
            | DhqpError::Constraint(m)
            | DhqpError::Transaction(m)
            | DhqpError::SchemaDrift(m)
            | DhqpError::Unsupported(m)
            | DhqpError::Timeout(m)
            | DhqpError::Unavailable(m) => m,
        }
    }
}

impl fmt::Display for DhqpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for DhqpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = DhqpError::Parse("unexpected token `FROM`".into());
        assert_eq!(e.to_string(), "parse error: unexpected token `FROM`");
        assert_eq!(e.kind(), "parse");
        assert_eq!(e.message(), "unexpected token `FROM`");
    }

    #[test]
    fn every_variant_has_distinct_kind() {
        let variants = [
            DhqpError::Parse(String::new()),
            DhqpError::Bind(String::new()),
            DhqpError::Optimize(String::new()),
            DhqpError::Execute(String::new()),
            DhqpError::Provider(String::new()),
            DhqpError::Type(String::new()),
            DhqpError::Catalog(String::new()),
            DhqpError::Constraint(String::new()),
            DhqpError::Transaction(String::new()),
            DhqpError::SchemaDrift(String::new()),
            DhqpError::Unsupported(String::new()),
            DhqpError::Timeout(String::new()),
            DhqpError::Unavailable(String::new()),
        ];
        let mut kinds: Vec<_> = variants.iter().map(|v| v.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), variants.len());
    }

    #[test]
    fn only_transport_faults_are_retryable() {
        assert!(DhqpError::Timeout(String::new()).is_retryable());
        assert!(DhqpError::Unavailable(String::new()).is_retryable());
        for permanent in [
            DhqpError::Parse(String::new()),
            DhqpError::Provider(String::new()),
            DhqpError::Constraint(String::new()),
            DhqpError::Transaction(String::new()),
            DhqpError::SchemaDrift(String::new()),
        ] {
            assert!(!permanent.is_retryable(), "{}", permanent.kind());
        }
    }
}
