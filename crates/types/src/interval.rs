//! Typed value-domain intervals: the substrate of the paper's *constraint
//! property framework* (§4.1.5).
//!
//! The optimizer tracks, for each scalar expression, the set of values it may
//! take as a normalized union of disjoint intervals. Filters narrow domains
//! (`CustomerId > 50` ⇒ `(50, +∞)`), CHECK constraints seed them, and empty
//! intersections prove a subtree returns no rows (static partition pruning).
//! NULL is never a member of any domain: SQL predicates are not satisfied by
//! NULL, which is exactly the semantics pruning needs.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// One end of an interval.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntervalBound {
    /// -∞ for a low bound, +∞ for a high bound.
    Unbounded,
    Included(Value),
    Excluded(Value),
}

impl IntervalBound {
    fn value(&self) -> Option<&Value> {
        match self {
            IntervalBound::Unbounded => None,
            IntervalBound::Included(v) | IntervalBound::Excluded(v) => Some(v),
        }
    }
}

/// A single contiguous interval over the total order of [`Value::total_cmp`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    pub low: IntervalBound,
    pub high: IntervalBound,
}

/// Compare two *low* bounds: which one starts earlier.
fn cmp_low(a: &IntervalBound, b: &IntervalBound) -> Ordering {
    use IntervalBound::*;
    match (a, b) {
        (Unbounded, Unbounded) => Ordering::Equal,
        (Unbounded, _) => Ordering::Less,
        (_, Unbounded) => Ordering::Greater,
        _ => {
            let (av, bv) = (a.value().unwrap(), b.value().unwrap());
            av.total_cmp(bv).then_with(|| match (a, b) {
                (Included(_), Excluded(_)) => Ordering::Less,
                (Excluded(_), Included(_)) => Ordering::Greater,
                _ => Ordering::Equal,
            })
        }
    }
}

/// Compare two *high* bounds: which one ends earlier.
fn cmp_high(a: &IntervalBound, b: &IntervalBound) -> Ordering {
    use IntervalBound::*;
    match (a, b) {
        (Unbounded, Unbounded) => Ordering::Equal,
        (Unbounded, _) => Ordering::Greater,
        (_, Unbounded) => Ordering::Less,
        _ => {
            let (av, bv) = (a.value().unwrap(), b.value().unwrap());
            av.total_cmp(bv).then_with(|| match (a, b) {
                (Included(_), Excluded(_)) => Ordering::Greater,
                (Excluded(_), Included(_)) => Ordering::Less,
                _ => Ordering::Equal,
            })
        }
    }
}

impl Interval {
    /// The full domain `(-∞, +∞)`.
    pub fn full() -> Self {
        Interval {
            low: IntervalBound::Unbounded,
            high: IntervalBound::Unbounded,
        }
    }

    /// The single point `[v, v]`.
    pub fn point(v: Value) -> Self {
        Interval {
            low: IntervalBound::Included(v.clone()),
            high: IntervalBound::Included(v),
        }
    }

    /// `[v, +∞)`.
    pub fn at_least(v: Value) -> Self {
        Interval {
            low: IntervalBound::Included(v),
            high: IntervalBound::Unbounded,
        }
    }

    /// `(v, +∞)`.
    pub fn greater_than(v: Value) -> Self {
        Interval {
            low: IntervalBound::Excluded(v),
            high: IntervalBound::Unbounded,
        }
    }

    /// `(-∞, v]`.
    pub fn at_most(v: Value) -> Self {
        Interval {
            low: IntervalBound::Unbounded,
            high: IntervalBound::Included(v),
        }
    }

    /// `(-∞, v)`.
    pub fn less_than(v: Value) -> Self {
        Interval {
            low: IntervalBound::Unbounded,
            high: IntervalBound::Excluded(v),
        }
    }

    /// Closed range `[lo, hi]` (SQL BETWEEN).
    pub fn between(lo: Value, hi: Value) -> Self {
        Interval {
            low: IntervalBound::Included(lo),
            high: IntervalBound::Included(hi),
        }
    }

    /// An interval is empty when its low bound exceeds its high bound, or
    /// they touch on an excluded endpoint.
    pub fn is_empty(&self) -> bool {
        match (self.low.value(), self.high.value()) {
            (Some(lo), Some(hi)) => match lo.total_cmp(hi) {
                Ordering::Greater => true,
                Ordering::Equal => !matches!(
                    (&self.low, &self.high),
                    (IntervalBound::Included(_), IntervalBound::Included(_))
                ),
                Ordering::Less => false,
            },
            _ => false,
        }
    }

    /// Whether `v` lies inside the interval. NULL is never contained.
    pub fn contains(&self, v: &Value) -> bool {
        if v.is_null() {
            return false;
        }
        let above_low = match &self.low {
            IntervalBound::Unbounded => true,
            IntervalBound::Included(lo) => lo.total_cmp(v) != Ordering::Greater,
            IntervalBound::Excluded(lo) => lo.total_cmp(v) == Ordering::Less,
        };
        let below_high = match &self.high {
            IntervalBound::Unbounded => true,
            IntervalBound::Included(hi) => v.total_cmp(hi) != Ordering::Greater,
            IntervalBound::Excluded(hi) => v.total_cmp(hi) == Ordering::Less,
        };
        above_low && below_high
    }

    /// Intersection of two intervals, `None` when disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let low = if cmp_low(&self.low, &other.low) == Ordering::Greater {
            self.low.clone()
        } else {
            other.low.clone()
        };
        let high = if cmp_high(&self.high, &other.high) == Ordering::Less {
            self.high.clone()
        } else {
            other.high.clone()
        };
        let out = Interval { low, high };
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    /// Whether the two intervals overlap or are directly adjacent on an
    /// inclusive/exclusive boundary pair (so their union is contiguous).
    fn touches(&self, other: &Interval) -> bool {
        // Overlap test first.
        if self.intersect(other).is_some() {
            return true;
        }
        // Adjacency: [a, v) followed by [v, b] (one side inclusive).
        let adjacent = |hi: &IntervalBound, lo: &IntervalBound| match (hi, lo) {
            (IntervalBound::Included(a), IntervalBound::Excluded(b))
            | (IntervalBound::Excluded(a), IntervalBound::Included(b))
            | (IntervalBound::Included(a), IntervalBound::Included(b)) => {
                a.total_cmp(b) == Ordering::Equal
            }
            _ => false,
        };
        adjacent(&self.high, &other.low) || adjacent(&other.high, &self.low)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.low {
            IntervalBound::Unbounded => write!(f, "(-inf")?,
            IntervalBound::Included(v) => write!(f, "[{v}")?,
            IntervalBound::Excluded(v) => write!(f, "({v}")?,
        }
        match &self.high {
            IntervalBound::Unbounded => write!(f, ", +inf)"),
            IntervalBound::Included(v) => write!(f, ", {v}]"),
            IntervalBound::Excluded(v) => write!(f, ", {v})"),
        }
    }
}

/// A normalized union of disjoint, sorted intervals — the domain of a scalar
/// expression (e.g. `[1,1] ∪ [5,5] ∪ [50,100]` from the paper's
/// `CustomerId IN (1,5) OR CustomerId BETWEEN 50 AND 100`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IntervalSet {
    intervals: Vec<Interval>,
}

impl IntervalSet {
    /// The empty domain: no value satisfies the constraints.
    pub fn empty() -> Self {
        IntervalSet {
            intervals: Vec::new(),
        }
    }

    /// The unconstrained domain.
    pub fn full() -> Self {
        IntervalSet {
            intervals: vec![Interval::full()],
        }
    }

    pub fn single(interval: Interval) -> Self {
        IntervalSet::from_intervals(vec![interval])
    }

    pub fn point(v: Value) -> Self {
        IntervalSet::single(Interval::point(v))
    }

    /// Build from arbitrary intervals, normalizing (drop empties, sort,
    /// merge overlapping/adjacent).
    pub fn from_intervals(intervals: Vec<Interval>) -> Self {
        let mut ivs: Vec<Interval> = intervals.into_iter().filter(|i| !i.is_empty()).collect();
        ivs.sort_by(|a, b| cmp_low(&a.low, &b.low));
        let mut merged: Vec<Interval> = Vec::with_capacity(ivs.len());
        for iv in ivs {
            match merged.last_mut() {
                Some(last) if last.touches(&iv) => {
                    if cmp_high(&iv.high, &last.high) == Ordering::Greater {
                        last.high = iv.high;
                    }
                }
                _ => merged.push(iv),
            }
        }
        IntervalSet { intervals: merged }
    }

    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Whether this is the single unconstrained interval.
    pub fn is_full(&self) -> bool {
        self.intervals.len() == 1
            && self.intervals[0].low == IntervalBound::Unbounded
            && self.intervals[0].high == IntervalBound::Unbounded
    }

    pub fn contains(&self, v: &Value) -> bool {
        self.intervals.iter().any(|i| i.contains(v))
    }

    /// Set union (`OR` of predicates).
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut all = self.intervals.clone();
        all.extend(other.intervals.iter().cloned());
        IntervalSet::from_intervals(all)
    }

    /// Set intersection (`AND` of predicates).
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        for a in &self.intervals {
            for b in &other.intervals {
                if let Some(i) = a.intersect(b) {
                    out.push(i);
                }
            }
        }
        IntervalSet::from_intervals(out)
    }

    /// Whether the two domains share any value — the compile-time pruning
    /// test from §4.1.5 ("intersect the domain of CustomerId with the domain
    /// of the constant 20").
    pub fn intersects(&self, other: &IntervalSet) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Complement within the full ordered domain (`NOT` / `<>` handling).
    /// NULL semantics are unaffected: NULL is in neither a set nor its
    /// complement.
    pub fn complement(&self) -> IntervalSet {
        let mut out = Vec::new();
        let mut cursor = IntervalBound::Unbounded; // low bound of next gap
        for iv in &self.intervals {
            let gap_high = match &iv.low {
                IntervalBound::Unbounded => None, // no gap before -inf
                IntervalBound::Included(v) => Some(IntervalBound::Excluded(v.clone())),
                IntervalBound::Excluded(v) => Some(IntervalBound::Included(v.clone())),
            };
            if let Some(high) = gap_high {
                let gap = Interval {
                    low: cursor.clone(),
                    high,
                };
                if !gap.is_empty() {
                    out.push(gap);
                }
            }
            cursor = match &iv.high {
                IntervalBound::Unbounded => return IntervalSet::from_intervals(out),
                IntervalBound::Included(v) => IntervalBound::Excluded(v.clone()),
                IntervalBound::Excluded(v) => IntervalBound::Included(v.clone()),
            };
        }
        out.push(Interval {
            low: cursor,
            high: IntervalBound::Unbounded,
        });
        IntervalSet::from_intervals(out)
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.is_empty() {
            return f.write_str("{}");
        }
        let mut first = true;
        for i in &self.intervals {
            if !first {
                f.write_str(" U ")?;
            }
            first = false;
            write!(f, "{i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn paper_example_disjoint_ranges() {
        // CustomerId IN (1, 5) OR CustomerId BETWEEN 50 AND 100
        let set = IntervalSet::point(int(1))
            .union(&IntervalSet::point(int(5)))
            .union(&IntervalSet::single(Interval::between(int(50), int(100))));
        assert_eq!(set.intervals().len(), 3);
        assert!(set.contains(&int(1)));
        assert!(set.contains(&int(75)));
        assert!(!set.contains(&int(20)));
        assert_eq!(set.to_string(), "[1, 1] U [5, 5] U [50, 100]");
    }

    #[test]
    fn paper_example_static_pruning() {
        // domain (50, +inf] intersected with [20,20] is empty.
        let dom = IntervalSet::single(Interval::greater_than(int(50)));
        let pred = IntervalSet::point(int(20));
        assert!(!dom.intersects(&pred));
        assert!(dom.intersects(&IntervalSet::point(int(51))));
    }

    #[test]
    fn filter_narrows_domain() {
        // CustomerId > 50 moves [-inf,+inf] to (50,+inf].
        let dom =
            IntervalSet::full().intersect(&IntervalSet::single(Interval::greater_than(int(50))));
        assert!(!dom.contains(&int(50)));
        assert!(dom.contains(&int(51)));
    }

    #[test]
    fn overlapping_intervals_merge() {
        let set = IntervalSet::from_intervals(vec![
            Interval::between(int(1), int(10)),
            Interval::between(int(5), int(20)),
        ]);
        assert_eq!(set.intervals().len(), 1);
        assert!(set.contains(&int(15)));
    }

    #[test]
    fn adjacent_touching_intervals_merge() {
        // [1, 5) U [5, 9] => [1, 9]
        let set = IntervalSet::from_intervals(vec![
            Interval {
                low: IntervalBound::Included(int(1)),
                high: IntervalBound::Excluded(int(5)),
            },
            Interval::between(int(5), int(9)),
        ]);
        assert_eq!(set.intervals().len(), 1);
        assert!(set.contains(&int(5)));
    }

    #[test]
    fn exclusive_adjacency_does_not_merge() {
        // [1, 5) U (5, 9] leaves a hole at 5.
        let set = IntervalSet::from_intervals(vec![
            Interval {
                low: IntervalBound::Included(int(1)),
                high: IntervalBound::Excluded(int(5)),
            },
            Interval {
                low: IntervalBound::Excluded(int(5)),
                high: IntervalBound::Included(int(9)),
            },
        ]);
        assert_eq!(set.intervals().len(), 2);
        assert!(!set.contains(&int(5)));
    }

    #[test]
    fn empty_interval_is_dropped() {
        let set = IntervalSet::single(Interval::between(int(10), int(1)));
        assert!(set.is_empty());
        let half_open = Interval {
            low: IntervalBound::Included(int(3)),
            high: IntervalBound::Excluded(int(3)),
        };
        assert!(half_open.is_empty());
    }

    #[test]
    fn complement_roundtrip() {
        let set = IntervalSet::from_intervals(vec![
            Interval::between(int(1), int(5)),
            Interval::between(int(10), int(20)),
        ]);
        let c = set.complement();
        assert!(!c.contains(&int(3)));
        assert!(c.contains(&int(7)));
        assert!(c.contains(&int(0)));
        assert!(c.contains(&int(21)));
        // complement of complement restores membership behaviour
        let cc = c.complement();
        for v in [0, 1, 3, 5, 7, 10, 15, 20, 25] {
            assert_eq!(cc.contains(&int(v)), set.contains(&int(v)), "value {v}");
        }
    }

    #[test]
    fn complement_of_full_is_empty() {
        assert!(IntervalSet::full().complement().is_empty());
        assert!(IntervalSet::empty().complement().is_full());
    }

    #[test]
    fn null_never_contained() {
        assert!(!IntervalSet::full().contains(&Value::Null));
        assert!(!Interval::full().contains(&Value::Null));
    }

    #[test]
    fn date_check_constraint_ranges_are_disjoint() {
        // lineitem partitioning by commit-date year, as in §4.1.5.
        let d = |s: &str| Value::Date(crate::value::parse_date(s).unwrap());
        let y92 = IntervalSet::single(Interval {
            low: IntervalBound::Included(d("1992-01-01")),
            high: IntervalBound::Excluded(d("1993-01-01")),
        });
        let y93 = IntervalSet::single(Interval {
            low: IntervalBound::Included(d("1993-01-01")),
            high: IntervalBound::Excluded(d("1994-01-01")),
        });
        assert!(!y92.intersects(&y93));
        assert!(y92.contains(&d("1992-06-15")));
        assert!(!y92.contains(&d("1993-01-01")));
    }
}
