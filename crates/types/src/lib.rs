//! Core data model shared by every layer of the `dhqp` federated query
//! engine: SQL values, rows, schemas, typed domain intervals (the substrate
//! of the paper's *constraint property framework*), and the common error
//! type.
//!
//! This crate deliberately has no knowledge of providers, plans or SQL text;
//! everything above it (the OLE DB-style provider traits, the storage engine,
//! the Cascades optimizer, the executor) speaks in these types.

pub mod batch;
pub mod error;
pub mod interval;
pub mod row;
pub mod value;

pub use batch::RowBatch;
pub use error::{DhqpError, Result};
pub use interval::{Interval, IntervalBound, IntervalSet};
pub use row::{Column, Row, Schema};
pub use value::{DataType, Value};
