//! Rows and schemas — the tabular shape every rowset exposes.

use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A column description within a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    pub fn not_null(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }
}

/// An ordered list of columns. Cheap to clone (shared).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Arc<Vec<Column>>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        Schema {
            columns: Arc::new(columns),
        }
    }

    pub fn empty() -> Self {
        Schema::new(Vec::new())
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Case-insensitive lookup by column name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Concatenate two schemas (used by join operators).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut cols = self.columns.as_ref().clone();
        cols.extend(right.columns.iter().cloned());
        Schema::new(cols)
    }

    /// Schema containing only the given column indexes, in order.
    pub fn project(&self, indexes: &[usize]) -> Schema {
        Schema::new(indexes.iter().map(|&i| self.columns[i].clone()).collect())
    }

    /// Estimated wire width of a row of this schema, for cost estimation.
    pub fn estimated_row_width(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c.data_type {
                DataType::Bool => 1,
                DataType::Int | DataType::Float => 8,
                DataType::Date => 4,
                DataType::Str => 24, // assumed average string payload
            })
            .sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in self.columns.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{} {}", c.name, c.data_type)?;
        }
        Ok(())
    }
}

/// A single row of values.
///
/// `bookmark`, when present, identifies the row within its base table — the
/// analog of OLE DB bookmarks, used by remote-fetch and index-to-heap
/// lookups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    pub values: Vec<Value>,
    pub bookmark: Option<u64>,
}

impl Row {
    pub fn new(values: Vec<Value>) -> Self {
        Row {
            values,
            bookmark: None,
        }
    }

    pub fn with_bookmark(values: Vec<Value>, bookmark: u64) -> Self {
        Row {
            values,
            bookmark: Some(bookmark),
        }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Concatenate with another row (join output).
    pub fn join(&self, right: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + right.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&right.values);
        Row {
            values,
            bookmark: None,
        }
    }

    /// Total wire size of the row in bytes.
    pub fn wire_size(&self) -> usize {
        8 + self.values.iter().map(Value::wire_size).sum::<usize>()
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for v in &self.values {
            if !first {
                write!(f, " | ")?;
            }
            first = false;
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_ab() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("B", DataType::Str),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = schema_ab();
        assert_eq!(s.index_of("A"), Some(0));
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("c"), None);
    }

    #[test]
    fn join_concatenates_schemas_and_rows() {
        let s = schema_ab().join(&schema_ab());
        assert_eq!(s.len(), 4);
        let r = Row::new(vec![Value::Int(1), Value::Str("x".into())]);
        let joined = r.join(&r);
        assert_eq!(joined.len(), 4);
        assert_eq!(joined.bookmark, None);
    }

    #[test]
    fn project_selects_in_order() {
        let s = schema_ab().project(&[1, 0]);
        assert_eq!(s.column(0).name, "B");
        assert_eq!(s.column(1).name, "a");
    }

    #[test]
    fn row_wire_size_counts_values() {
        let r = Row::new(vec![Value::Int(1), Value::Str("abcd".into())]);
        assert_eq!(r.wire_size(), 8 + 8 + (4 + 4));
    }

    #[test]
    fn schema_display() {
        assert_eq!(schema_ab().to_string(), "a BIGINT, B VARCHAR");
    }
}
