//! SQL values and data types.
//!
//! `Value` is the single runtime representation used by rowsets everywhere in
//! the engine — local storage, remote providers, and every executor operator.
//! SQL three-valued logic lives here: comparisons between values return
//! `Option<Ordering>`/`Option<bool>` where `None` means *unknown* (NULL).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Logical column types supported by the engine.
///
/// `Date` is stored as days since 1970-01-01 (the engine treats dates as an
/// ordered integer domain, which is all the paper's examples require).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    Date,
}

impl DataType {
    /// Name as it appears in SQL text produced by the decoder.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Bool => "BIT",
            DataType::Int => "BIGINT",
            DataType::Float => "FLOAT",
            DataType::Str => "VARCHAR",
            DataType::Date => "DATE",
        }
    }

    /// Whether values of this type form a numeric domain.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A single SQL value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    /// Days since the Unix epoch.
    Date(i32),
}

impl Value {
    /// The value's type, or `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate on-the-wire size in bytes, used by the network simulator
    /// and by the optimizer's row-width estimates.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 4 + s.len(),
            Value::Date(_) => 4,
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL or the types
    /// are incomparable (SQL UNKNOWN).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality under three-valued logic.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Total ordering used for sorting and B-tree keys: NULL sorts first,
    /// then by type tag for heterogeneous columns, then by value; NaN sorts
    /// after every other float. This is *not* SQL comparison — predicates
    /// must use [`Value::sql_cmp`].
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Date(_) => 3,
                Str(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Numeric addition with Int/Float promotion; NULL propagates.
    pub fn add(&self, other: &Value) -> crate::Result<Value> {
        self.numeric_binop(other, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Numeric subtraction.
    pub fn sub(&self, other: &Value) -> crate::Result<Value> {
        // Date - Int => Date shifted by days (used by date(today(), -2)-style
        // expressions in the paper's email scenario).
        if let (Value::Date(d), Value::Int(n)) = (self, other) {
            return Ok(Value::Date(d - *n as i32));
        }
        self.numeric_binop(other, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Numeric multiplication.
    pub fn mul(&self, other: &Value) -> crate::Result<Value> {
        self.numeric_binop(other, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Numeric division; integer division by zero is an execution error,
    /// float division by zero yields infinity per IEEE.
    pub fn div(&self, other: &Value) -> crate::Result<Value> {
        match (self, other) {
            (Value::Int(_), Value::Int(0)) => {
                Err(crate::DhqpError::Execute("division by zero".into()))
            }
            _ => self.numeric_binop(other, "/", |a, b| a.checked_div(b), |a, b| a / b),
        }
    }

    fn numeric_binop(
        &self,
        other: &Value,
        op: &str,
        int_op: impl Fn(i64, i64) -> Option<i64>,
        float_op: impl Fn(f64, f64) -> f64,
    ) -> crate::Result<Value> {
        use Value::*;
        // Date + Int also promotes through here for `+` only.
        match (self, other) {
            (Null, _) | (_, Null) => Ok(Null),
            (Int(a), Int(b)) => int_op(*a, *b)
                .map(Int)
                .ok_or_else(|| crate::DhqpError::Execute(format!("integer overflow in {op}"))),
            (Float(a), Float(b)) => Ok(Float(float_op(*a, *b))),
            (Int(a), Float(b)) => Ok(Float(float_op(*a as f64, *b))),
            (Float(a), Int(b)) => Ok(Float(float_op(*a, *b as f64))),
            (Date(d), Int(n)) if op == "+" => Ok(Date(d + *n as i32)),
            (Int(n), Date(d)) if op == "+" => Ok(Date(d + *n as i32)),
            _ => Err(crate::DhqpError::Type(format!(
                "cannot apply {op} to {} and {}",
                self.type_name(),
                other.type_name()
            ))),
        }
    }

    /// Cast to the requested type following SQL conversion rules.
    pub fn cast(&self, to: DataType) -> crate::Result<Value> {
        use Value::*;
        let err = || {
            crate::DhqpError::Type(format!(
                "cannot cast {} to {}",
                self.type_name(),
                to.sql_name()
            ))
        };
        Ok(match (self, to) {
            (Null, _) => Null,
            (v, t) if v.data_type() == Some(t) => v.clone(),
            (Int(i), DataType::Float) => Float(*i as f64),
            (Float(f), DataType::Int) => Int(*f as i64),
            (Int(i), DataType::Bool) => Bool(*i != 0),
            (Bool(b), DataType::Int) => Int(*b as i64),
            (Int(i), DataType::Str) => Str(i.to_string()),
            (Float(f), DataType::Str) => Str(f.to_string()),
            (Bool(b), DataType::Str) => Str(if *b { "1".into() } else { "0".into() }),
            (Date(d), DataType::Str) => Str(format_date(*d)),
            (Date(d), DataType::Int) => Int(*d as i64),
            (Str(s), DataType::Int) => Int(s.trim().parse().map_err(|_| err())?),
            (Str(s), DataType::Float) => Float(s.trim().parse().map_err(|_| err())?),
            (Str(s), DataType::Date) => Date(parse_date(s).ok_or_else(err)?),
            (Int(i), DataType::Date) => Date(*i as i32),
            _ => return Err(err()),
        })
    }

    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Bool(_) => "BIT",
            Value::Int(_) => "BIGINT",
            Value::Float(_) => "FLOAT",
            Value::Str(_) => "VARCHAR",
            Value::Date(_) => "DATE",
        }
    }

    /// Render as a SQL literal in the engine's own dialect (ISO dates,
    /// single-quoted strings with doubled quotes). Dialect-specific literal
    /// formats are handled by the decoder, not here.
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".into(),
            Value::Bool(b) => if *b { "1" } else { "0" }.into(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    f.to_string()
                }
            }
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Date(d) => format!("'{}'", format_date(*d)),
        }
    }
}

/// SQL LIKE with `%` (any run) and `_` (any single char), case-sensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => {
                let rest = &p[1..];
                (0..=s.len()).any(|i| rec(&s[i..], rest))
            }
            Some(b'_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

/// Format days-since-epoch as `YYYY-MM-DD` (proleptic Gregorian).
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Parse `YYYY-MM-DD` into days since the epoch.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.trim().splitn(3, '-');
    let y: i64 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(days_from_civil(y, m, d))
}

// Howard Hinnant's algorithms for date <-> day-count conversion.
fn days_from_civil(y: i64, m: u32, d: u32) -> i32 {
    let y = y - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) as i64 + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era * 146097 + doe - 719468) as i32
}

fn civil_from_days(z: i32) -> (i64, u32, u32) {
    let z = z as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + if m <= 2 { 1 } else { 0 }, m, d)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => f.write_str(s),
            Value::Date(d) => f.write_str(&format_date(*d)),
        }
    }
}

/// Structural equality used by hash tables (join/aggregate keys). Unlike SQL
/// equality this treats NULL == NULL and NaN == NaN so grouping works.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and whole floats that compare equal must hash equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types_are_unknown() {
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_puts_null_first() {
        let mut vals = [Value::Int(3), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn arithmetic_promotes_and_propagates_null() {
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
    }

    #[test]
    fn date_arithmetic_shifts_days() {
        let d = parse_date("2004-03-01").unwrap();
        let shifted = Value::Date(d).sub(&Value::Int(2)).unwrap();
        assert_eq!(shifted, Value::Date(d - 2));
        assert_eq!(format_date(d - 2), "2004-02-28");
    }

    #[test]
    fn date_roundtrip() {
        for s in [
            "1970-01-01",
            "1992-01-01",
            "2000-02-29",
            "1969-12-31",
            "2026-07-08",
        ] {
            let d = parse_date(s).unwrap();
            assert_eq!(format_date(d), s, "roundtrip {s}");
        }
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-13-01"), None);
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::Str(" 42 ".into()).cast(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::Str("1992-01-01".into())
                .cast(DataType::Date)
                .unwrap(),
            Value::Date(parse_date("1992-01-01").unwrap())
        );
        assert!(Value::Str("abc".into()).cast(DataType::Int).is_err());
        assert!(Value::Null.cast(DataType::Int).unwrap().is_null());
    }

    #[test]
    fn sql_literals_escape_quotes() {
        assert_eq!(Value::Str("O'Brien".into()).to_sql_literal(), "'O''Brien'");
        assert_eq!(Value::Float(3.0).to_sql_literal(), "3.0");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
    }

    #[test]
    fn int_and_equal_float_hash_identically() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
        assert_eq!(Value::Int(7), Value::Float(7.0));
    }
}
