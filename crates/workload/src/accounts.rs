//! Account tables for the federation/2PC scaling experiment (E11): a
//! TPC-C-new-order-flavoured transfer workload over a federation of member
//! engines, echoing the paper's §4.1.5 federated TPC-C result.

use dhqp_storage::{CheckConstraint, StorageEngine, TableDef};
use dhqp_types::{Column, DataType, Interval, IntervalSet, Result, Row, Schema, Value};

/// Create an `accounts` member table holding ids `[lo, hi]` with an initial
/// balance, CHECK-constrained to its range.
pub fn create_account_partition(
    engine: &StorageEngine,
    table: &str,
    lo: i64,
    hi: i64,
    balance: i64,
) -> Result<IntervalSet> {
    let domain = IntervalSet::single(Interval::between(Value::Int(lo), Value::Int(hi)));
    engine.create_table(
        TableDef::new(
            table,
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::not_null("balance", DataType::Int),
            ]),
        )
        .with_index(&format!("pk_{table}"), &["id"], true)
        .with_check(CheckConstraint {
            name: format!("ck_{table}"),
            column: "id".into(),
            domain: domain.clone(),
        }),
    )?;
    let rows: Vec<Row> = (lo..=hi)
        .map(|id| Row::new(vec![Value::Int(id), Value::Int(balance)]))
        .collect();
    engine.insert_rows(table, &rows)?;
    Ok(domain)
}

/// Total balance across member engines — the conservation invariant the
/// 2PC tests assert.
pub fn total_balance(members: &[(&StorageEngine, &str)]) -> Result<i64> {
    let mut total = 0;
    for (engine, table) in members {
        total += engine.with_table(table, |t| {
            t.scan_rows()
                .iter()
                .map(|r| match r.get(1) {
                    Value::Int(b) => *b,
                    _ => 0,
                })
                .sum::<i64>()
        })?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_setup_and_invariant() {
        let e1 = StorageEngine::new("s1");
        let e2 = StorageEngine::new("s2");
        let d1 = create_account_partition(&e1, "accounts_a", 0, 49, 100).unwrap();
        let d2 = create_account_partition(&e2, "accounts_b", 50, 99, 100).unwrap();
        assert!(!d1.intersects(&d2));
        assert_eq!(
            total_balance(&[(&e1, "accounts_a"), (&e2, "accounts_b")]).unwrap(),
            10_000
        );
        // CHECK rejects out-of-range rows.
        assert!(e1
            .insert_rows(
                "accounts_a",
                &[Row::new(vec![Value::Int(60), Value::Int(1)])]
            )
            .is_err());
    }
}
