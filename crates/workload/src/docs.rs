//! Synthetic document corpus for full-text experiments — the stand-in for
//! the paper's `DQLiterature` catalog of database papers (§2.2).

use dhqp_fulltext::Document;
use dhqp_types::value::parse_date;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Topic vocabularies; each document draws most words from one topic so
/// queries like `"parallel database"` have selective structure.
const TOPICS: [(&str, &[&str]); 4] = [
    (
        "databases",
        &[
            "parallel",
            "database",
            "systems",
            "query",
            "optimization",
            "join",
            "index",
            "transaction",
            "heterogeneous",
            "distributed",
            "federated",
            "partitioned",
        ],
    ),
    (
        "networks",
        &[
            "network",
            "latency",
            "bandwidth",
            "protocol",
            "routing",
            "packet",
            "congestion",
            "throughput",
            "topology",
        ],
    ),
    (
        "compilers",
        &[
            "compiler",
            "parser",
            "grammar",
            "register",
            "allocation",
            "optimization",
            "intermediate",
            "representation",
            "codegen",
        ],
    ),
    (
        "cooking",
        &[
            "pasta", "sauce", "garlic", "basil", "oven", "recipe", "tomato", "olive", "simmer",
        ],
    ),
];

const FILLER: &[&str] = &[
    "the", "a", "of", "and", "for", "with", "over", "under", "into", "about", "results", "show",
    "approach", "method", "paper", "work", "section",
];

/// Generate `n` deterministic documents. Document types rotate through
/// txt/html/md so IFilter paths are exercised.
pub fn generate_documents(n: usize, seed: u64) -> Vec<Document> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base_date = parse_date("2004-01-01").expect("valid date");
    (0..n)
        .map(|i| {
            let (topic, vocab) = TOPICS[i % TOPICS.len()];
            let words = 60 + rng.gen_range(0..120);
            let mut body = String::new();
            for w in 0..words {
                if w > 0 {
                    body.push(' ');
                }
                if rng.gen_bool(0.55) {
                    body.push_str(vocab[rng.gen_range(0..vocab.len())]);
                } else {
                    body.push_str(FILLER[rng.gen_range(0..FILLER.len())]);
                }
            }
            let (doc_type, raw) = match i % 3 {
                0 => ("txt", body.clone()),
                1 => ("html", format!("<html><body><p>{body}</p></body></html>")),
                _ => ("md", format!("# {topic} notes\n\n{body}")),
            };
            Document {
                id: 0,
                path: format!("d:\\lit\\{topic}\\doc{i:04}.{doc_type}"),
                doc_type: doc_type.to_string(),
                size: raw.len() as u64,
                raw,
                created: base_date + (i % 365) as i32,
                modified: base_date + (i % 365) as i32 + 1,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_fulltext::SearchService;

    #[test]
    fn corpus_is_deterministic_and_topical() {
        let a = generate_documents(40, 9);
        let b = generate_documents(40, 9);
        assert_eq!(a.len(), 40);
        assert_eq!(a[0].raw, b[0].raw);
        // Index and check topical selectivity: "pasta" hits only cooking docs.
        let svc = SearchService::new();
        svc.create_catalog("lit").unwrap();
        for d in a {
            svc.index_document("lit", d).unwrap();
        }
        let pasta = svc.query_keys("lit", "pasta").unwrap();
        assert!(!pasta.is_empty());
        assert!(
            pasta.len() <= 10,
            "pasta should hit only cooking docs, got {}",
            pasta.len()
        );
        let database = svc.query_keys("lit", "database").unwrap();
        assert!(database.len() >= pasta.len());
    }
}
