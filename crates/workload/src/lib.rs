//! Deterministic workload generators for tests, examples and benchmarks.
//!
//! * [`tpch`] — a scaled-down TPC-H-style schema (the paper's Example 1 and
//!   §4.1.5 partitioned `lineitem` run against this).
//! * [`docs`] — a synthetic document corpus for full-text experiments
//!   (stands in for the paper's `DQLiterature` catalog).
//! * [`mailgen`] — mail-file text for the §2.4 salesman scenario.
//! * [`accounts`] — bank-transfer style tables for the federation/2PC
//!   scaling experiment (E11).
//!
//! All generators take an explicit seed and are deterministic, so paper
//! figures regenerate identically across runs.

pub mod accounts;
pub mod docs;
pub mod mailgen;
pub mod tpch;

pub use tpch::TpchScale;
