//! Mail-file generation for the §2.4 salesman scenario: "find all email
//! messages he has received from Seattle customers ... within the last two
//! days to which he has not yet replied."

use dhqp_types::value::format_date;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one generated mailbox.
#[derive(Debug, Clone)]
pub struct MailboxSpec {
    /// The mailbox owner.
    pub owner: String,
    /// Customer e-mail addresses that may write in.
    pub customers: Vec<String>,
    /// Total inbound messages.
    pub inbound: usize,
    /// Fraction of inbound messages the owner has replied to.
    pub reply_fraction: f64,
    /// "Today" as days since the epoch; message dates fall in the 14 days
    /// before it.
    pub today: i32,
}

impl MailboxSpec {
    pub fn customer_addresses(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("customer{i:03}@corp{}.example", i % 7))
            .collect()
    }
}

/// Generate the mail-file text (parseable by
/// `dhqp_providers::mail::parse_mail_file`).
pub fn generate_mailbox(spec: &MailboxSpec, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let subjects = [
        "quote request",
        "order status",
        "invoice question",
        "renewal",
        "support",
    ];
    let mut out = String::new();
    let mut msg_no = 0;
    for i in 0..spec.inbound {
        msg_no += 1;
        let from = &spec.customers[rng.gen_range(0..spec.customers.len())];
        let date = spec.today - rng.gen_range(0..14);
        let subject = subjects[rng.gen_range(0..subjects.len())];
        let in_id = format!("<in{i}@ext>");
        out.push_str(&format!(
            "Msg-Id: {in_id}\nFrom: {from}\nTo: {owner}\nDate: {date}\nSubject: {subject}\n\n\
             Message {i} body about {subject}.\n\n",
            owner = spec.owner,
            date = format_date(date),
        ));
        if rng.gen_bool(spec.reply_fraction) {
            msg_no += 1;
            let reply_date = (date + rng.gen_range(0..2)).min(spec.today);
            out.push_str(&format!(
                "Msg-Id: <out{msg_no}@corp>\nFrom: {owner}\nTo: {from}\nDate: {rdate}\n\
                 Subject: RE: {subject}\nIn-Reply-To: {in_id}\n\nReply to message {i}.\n\n",
                owner = spec.owner,
                rdate = format_date(reply_date),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhqp_providers::mail::parse_mail_file;

    #[test]
    fn generated_mailbox_parses_and_has_replies() {
        let spec = MailboxSpec {
            owner: "smith@corp.example".into(),
            customers: MailboxSpec::customer_addresses(10),
            inbound: 30,
            reply_fraction: 0.5,
            today: 12_600,
        };
        let text = generate_mailbox(&spec, 3);
        let msgs = parse_mail_file(&text).unwrap();
        assert!(msgs.len() > 30, "inbound + replies");
        let replies = msgs.iter().filter(|m| m.in_reply_to.is_some()).count();
        assert!(replies > 5 && replies < 30);
        // Determinism.
        assert_eq!(text, generate_mailbox(&spec, 3));
        // Replies reference existing messages.
        for m in &msgs {
            if let Some(parent) = &m.in_reply_to {
                assert!(msgs.iter().any(|p| &p.msg_id == parent));
            }
        }
    }
}
