//! Scaled-down deterministic TPC-H-style data.
//!
//! The paper's Example 1 runs on a 10 GB TPC-H database; the plan-choice
//! crossover it illustrates depends on *relative* cardinalities (customers
//! ≫ nations, customer⋈supplier being much larger than either input), which
//! are preserved here at laptop scale.

use dhqp_storage::{StorageEngine, TableDef};
use dhqp_types::{value::parse_date, Column, DataType, Result, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Row counts for one generation run. TPC-H ratios at a miniature scale.
#[derive(Debug, Clone, Copy)]
pub struct TpchScale {
    pub nations: usize,
    pub customers: usize,
    pub suppliers: usize,
    pub orders: usize,
    pub lineitems_per_order: usize,
}

impl TpchScale {
    /// Tiny data for unit tests.
    pub fn tiny() -> Self {
        TpchScale {
            nations: 5,
            customers: 60,
            suppliers: 12,
            orders: 120,
            lineitems_per_order: 3,
        }
    }

    /// Bench-sized data: large enough for plan effects, small enough for
    /// Criterion iteration.
    pub fn small() -> Self {
        TpchScale {
            nations: 25,
            customers: 3000,
            suppliers: 200,
            orders: 6000,
            lineitems_per_order: 4,
        }
    }
}

const NATION_NAMES: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

const REGION_NAMES: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

const CITIES: [&str; 8] = [
    "Seattle", "Portland", "Redmond", "Tacoma", "Spokane", "Boise", "Eugene", "Olympia",
];

/// Create the `region` table (five rows, as in TPC-H).
pub fn create_region(engine: &StorageEngine) -> Result<()> {
    engine.create_table(
        TableDef::new(
            "region",
            Schema::new(vec![
                Column::not_null("r_regionkey", DataType::Int),
                Column::not_null("r_name", DataType::Str),
            ]),
        )
        .with_index("pk_region", &["r_regionkey"], true),
    )?;
    let rows: Vec<Row> = REGION_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| Row::new(vec![Value::Int(i as i64), Value::Str(name.to_string())]))
        .collect();
    engine.insert_rows("region", &rows)?;
    Ok(())
}

/// Create the `nation` table.
pub fn create_nation(engine: &StorageEngine, scale: &TpchScale) -> Result<()> {
    engine.create_table(
        TableDef::new(
            "nation",
            Schema::new(vec![
                Column::not_null("n_nationkey", DataType::Int),
                Column::not_null("n_name", DataType::Str),
                Column::not_null("n_regionkey", DataType::Int),
            ]),
        )
        .with_index("pk_nation", &["n_nationkey"], true),
    )?;
    let rows: Vec<Row> = (0..scale.nations)
        .map(|i| {
            Row::new(vec![
                Value::Int(i as i64),
                Value::Str(NATION_NAMES[i % NATION_NAMES.len()].to_string()),
                Value::Int((i % 5) as i64),
            ])
        })
        .collect();
    engine.insert_rows("nation", &rows)?;
    Ok(())
}

/// Create the `customer` table.
pub fn create_customer(engine: &StorageEngine, scale: &TpchScale, rng: &mut StdRng) -> Result<()> {
    engine.create_table(
        TableDef::new(
            "customer",
            Schema::new(vec![
                Column::not_null("c_custkey", DataType::Int),
                Column::not_null("c_name", DataType::Str),
                Column::not_null("c_address", DataType::Str),
                Column::not_null("c_phone", DataType::Str),
                Column::not_null("c_nationkey", DataType::Int),
                Column::not_null("c_city", DataType::Str),
                Column::not_null("c_acctbal", DataType::Float),
            ]),
        )
        .with_index("pk_customer", &["c_custkey"], true)
        .with_index("ix_customer_nation", &["c_nationkey"], false),
    )?;
    let rows: Vec<Row> = (0..scale.customers)
        .map(|i| {
            Row::new(vec![
                Value::Int(i as i64),
                Value::Str(format!("Customer#{i:06}")),
                Value::Str(format!("{} Main St", rng.gen_range(1..999))),
                Value::Str(format!(
                    "25-{:03}-{:04}",
                    rng.gen_range(100..999),
                    rng.gen_range(1000..9999)
                )),
                Value::Int(rng.gen_range(0..scale.nations) as i64),
                Value::Str(CITIES[rng.gen_range(0..CITIES.len())].to_string()),
                Value::Float((rng.gen_range(-99_999..999_999) as f64) / 100.0),
            ])
        })
        .collect();
    engine.insert_rows("customer", &rows)?;
    Ok(())
}

/// Create the `supplier` table.
pub fn create_supplier(engine: &StorageEngine, scale: &TpchScale, rng: &mut StdRng) -> Result<()> {
    engine.create_table(
        TableDef::new(
            "supplier",
            Schema::new(vec![
                Column::not_null("s_suppkey", DataType::Int),
                Column::not_null("s_name", DataType::Str),
                Column::not_null("s_nationkey", DataType::Int),
                Column::not_null("s_acctbal", DataType::Float),
            ]),
        )
        .with_index("pk_supplier", &["s_suppkey"], true)
        .with_index("ix_supplier_nation", &["s_nationkey"], false),
    )?;
    let rows: Vec<Row> = (0..scale.suppliers)
        .map(|i| {
            Row::new(vec![
                Value::Int(i as i64),
                Value::Str(format!("Supplier#{i:04}")),
                Value::Int(rng.gen_range(0..scale.nations) as i64),
                Value::Float((rng.gen_range(-99_999..999_999) as f64) / 100.0),
            ])
        })
        .collect();
    engine.insert_rows("supplier", &rows)?;
    Ok(())
}

/// Create the `orders` table.
pub fn create_orders(engine: &StorageEngine, scale: &TpchScale, rng: &mut StdRng) -> Result<()> {
    engine.create_table(
        TableDef::new(
            "orders",
            Schema::new(vec![
                Column::not_null("o_orderkey", DataType::Int),
                Column::not_null("o_custkey", DataType::Int),
                Column::not_null("o_orderdate", DataType::Date),
                Column::not_null("o_totalprice", DataType::Float),
            ]),
        )
        .with_index("pk_orders", &["o_orderkey"], true)
        .with_index("ix_orders_cust", &["o_custkey"], false),
    )?;
    let epoch_92 = parse_date("1992-01-01").expect("valid date");
    let rows: Vec<Row> = (0..scale.orders)
        .map(|i| {
            Row::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..scale.customers) as i64),
                Value::Date(epoch_92 + rng.gen_range(0..7 * 365)),
                Value::Float((rng.gen_range(1_000..500_000) as f64) / 100.0),
            ])
        })
        .collect();
    engine.insert_rows("orders", &rows)?;
    Ok(())
}

/// The lineitem schema (shared by the monolithic table and DPV members).
pub fn lineitem_schema() -> Schema {
    Schema::new(vec![
        Column::not_null("l_orderkey", DataType::Int),
        Column::not_null("l_linenumber", DataType::Int),
        Column::not_null("l_suppkey", DataType::Int),
        Column::not_null("l_quantity", DataType::Int),
        Column::not_null("l_extendedprice", DataType::Float),
        Column::not_null("l_commitdate", DataType::Date),
    ])
}

/// Generate lineitem rows (commit dates uniform over 1992-01-01 ..
/// 1998-12-31, the seven partitioning years of §4.1.5).
pub fn lineitem_rows(scale: &TpchScale, rng: &mut StdRng) -> Vec<Row> {
    let epoch_92 = parse_date("1992-01-01").expect("valid date");
    let mut rows = Vec::with_capacity(scale.orders * scale.lineitems_per_order);
    for order in 0..scale.orders {
        for line in 0..scale.lineitems_per_order {
            rows.push(Row::new(vec![
                Value::Int(order as i64),
                Value::Int(line as i64 + 1),
                Value::Int(rng.gen_range(0..scale.suppliers.max(1)) as i64),
                Value::Int(rng.gen_range(1..50)),
                Value::Float((rng.gen_range(100..100_000) as f64) / 100.0),
                Value::Date(epoch_92 + rng.gen_range(0..7 * 365)),
            ]));
        }
    }
    rows
}

/// Create the monolithic `lineitem` table.
pub fn create_lineitem(engine: &StorageEngine, scale: &TpchScale, rng: &mut StdRng) -> Result<()> {
    engine.create_table(
        TableDef::new("lineitem", lineitem_schema())
            .with_index("ix_lineitem_order", &["l_orderkey"], false)
            .with_index("ix_lineitem_commit", &["l_commitdate"], false),
    )?;
    engine.insert_rows("lineitem", &lineitem_rows(scale, rng))?;
    Ok(())
}

/// Load the full schema into one engine and analyze every table.
pub fn load_all(engine: &StorageEngine, scale: &TpchScale, seed: u64) -> Result<()> {
    let mut rng = StdRng::seed_from_u64(seed);
    create_region(engine)?;
    create_nation(engine, scale)?;
    create_customer(engine, scale, &mut rng)?;
    create_supplier(engine, scale, &mut rng)?;
    create_orders(engine, scale, &mut rng)?;
    create_lineitem(engine, scale, &mut rng)?;
    for t in [
        "region", "nation", "customer", "supplier", "orders", "lineitem",
    ] {
        engine.analyze(t, 24)?;
    }
    Ok(())
}

/// Create `lineitem_<year>` member tables with CHECK constraints on
/// `l_commitdate` (the paper's §4.1.5 partitioning) and distribute rows
/// into the engines round-robin by year. Returns the member descriptors
/// `(engine index, table name, year domain)`.
pub fn create_lineitem_partitions(
    engines: &[&StorageEngine],
    scale: &TpchScale,
    seed: u64,
) -> Result<Vec<(usize, String, dhqp_types::IntervalSet)>> {
    use dhqp_storage::CheckConstraint;
    use dhqp_types::{Interval, IntervalSet};
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = lineitem_rows(scale, &mut rng);
    let mut members = Vec::new();
    for year in 1992..=1998 {
        let lo = parse_date(&format!("{year}-01-01")).expect("valid date");
        let hi = parse_date(&format!("{}-01-01", year + 1)).expect("valid date");
        let domain = IntervalSet::single(Interval {
            low: dhqp_types::IntervalBound::Included(Value::Date(lo)),
            high: dhqp_types::IntervalBound::Excluded(Value::Date(hi)),
        });
        let engine_idx = (year - 1992) % engines.len();
        let table = format!("lineitem_{}", year % 100);
        engines[engine_idx].create_table(
            TableDef::new(&table, lineitem_schema())
                .with_index(&format!("ix_{table}_commit"), &["l_commitdate"], false)
                .with_check(CheckConstraint {
                    name: format!("ck_{table}"),
                    column: "l_commitdate".into(),
                    domain: domain.clone(),
                }),
        )?;
        let member_rows: Vec<Row> = rows
            .iter()
            .filter(|r| domain.contains(r.get(5)))
            .cloned()
            .collect();
        engines[engine_idx].insert_rows(&table, &member_rows)?;
        engines[engine_idx].analyze(&table, 16)?;
        members.push((engine_idx, table, domain));
    }
    Ok(members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_is_deterministic() {
        let a = StorageEngine::new("a");
        let b = StorageEngine::new("b");
        load_all(&a, &TpchScale::tiny(), 42).unwrap();
        load_all(&b, &TpchScale::tiny(), 42).unwrap();
        let ra = a.with_table("customer", |t| t.scan_rows()).unwrap();
        let rb = b.with_table("customer", |t| t.scan_rows()).unwrap();
        assert_eq!(ra, rb);
        // Different seed differs.
        let c = StorageEngine::new("c");
        load_all(&c, &TpchScale::tiny(), 43).unwrap();
        let rc = c.with_table("customer", |t| t.scan_rows()).unwrap();
        assert_ne!(ra, rc);
    }

    #[test]
    fn cardinalities_match_scale() {
        let e = StorageEngine::new("e");
        let scale = TpchScale::tiny();
        load_all(&e, &scale, 1).unwrap();
        assert_eq!(e.with_table("customer", |t| t.row_count()).unwrap(), 60);
        assert_eq!(e.with_table("region", |t| t.row_count()).unwrap(), 5);
        assert_eq!(
            e.with_table("lineitem", |t| t.row_count()).unwrap(),
            (scale.orders * scale.lineitems_per_order) as u64
        );
        assert!(e
            .statistics("customer")
            .unwrap()
            .histogram("c_nationkey")
            .is_some());
    }

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let e1 = StorageEngine::new("p1");
        let e2 = StorageEngine::new("p2");
        let scale = TpchScale::tiny();
        let members = create_lineitem_partitions(&[&e1, &e2], &scale, 7).unwrap();
        assert_eq!(members.len(), 7);
        let total: u64 = members
            .iter()
            .map(|(idx, table, _)| {
                let engine = if *idx == 0 { &e1 } else { &e2 };
                engine.with_table(table, |t| t.row_count()).unwrap()
            })
            .sum();
        assert_eq!(total, (scale.orders * scale.lineitems_per_order) as u64);
        // Same seed as monolithic load yields the same multiset of rows.
        let mono = StorageEngine::new("m");
        let mut rng = StdRng::seed_from_u64(7);
        let all = lineitem_rows(&scale, &mut rng);
        let _ = mono;
        assert_eq!(all.len(), scale.orders * scale.lineitems_per_order);
    }
}
