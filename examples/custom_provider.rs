//! Building a third-party provider — the extensibility claim of the paper
//! ("it suffices to build an OLE DB provider that exposes the capabilities
//! of the data source and the new provider can be plugged-in").
//!
//! This ~100-line provider exposes an in-memory key/value changelog as a
//! rowset; the DHQP supplies all querying on top (simple-provider class).
//!
//! ```text
//! cargo run --example custom_provider
//! ```

use dhqp::Engine;
use dhqp_oledb::{
    ColumnInfo, DataSource, MemRowset, ProviderCapabilities, Rowset, Session, TableInfo,
};
use dhqp_types::{Column, DataType, DhqpError, Result, Row, Schema, Value};
use std::sync::Arc;

/// The data: an append-only changelog of (seq, key, op, value).
struct Changelog {
    entries: Vec<(i64, String, &'static str, Option<i64>)>,
}

/// The provider: ~60 lines to join the federation.
struct ChangelogProvider {
    log: Arc<Changelog>,
}

impl DataSource for ChangelogProvider {
    fn name(&self) -> &str {
        "changelog"
    }

    fn capabilities(&self) -> ProviderCapabilities {
        // Mandatory interfaces only: connect + named rowsets (§3.3 simple
        // provider). The DHQP does the rest.
        ProviderCapabilities::simple("EXAMPLE-CHANGELOG")
    }

    fn tables(&self) -> Result<Vec<TableInfo>> {
        Ok(vec![TableInfo {
            name: "events".into(),
            columns: vec![
                ColumnInfo::not_null("seq", DataType::Int),
                ColumnInfo::not_null("key", DataType::Str),
                ColumnInfo::not_null("op", DataType::Str),
                ColumnInfo::new("value", DataType::Int),
            ],
            indexes: Vec::new(),
            cardinality: Some(self.log.entries.len() as u64),
        }])
    }

    fn create_session(&self) -> Result<Box<dyn Session>> {
        Ok(Box::new(ChangelogSession {
            log: Arc::clone(&self.log),
        }))
    }
}

struct ChangelogSession {
    log: Arc<Changelog>,
}

impl Session for ChangelogSession {
    fn open_rowset(&mut self, table: &str) -> Result<Box<dyn Rowset>> {
        if !table.eq_ignore_ascii_case("events") {
            return Err(DhqpError::Catalog(format!(
                "changelog has no table '{table}'"
            )));
        }
        let schema = Schema::new(vec![
            Column::not_null("seq", DataType::Int),
            Column::not_null("key", DataType::Str),
            Column::not_null("op", DataType::Str),
            Column::new("value", DataType::Int),
        ]);
        let rows = self
            .log
            .entries
            .iter()
            .enumerate()
            .map(|(i, (seq, key, op, value))| {
                Row::with_bookmark(
                    vec![
                        Value::Int(*seq),
                        Value::Str(key.clone()),
                        Value::Str(op.to_string()),
                        value.map_or(Value::Null, Value::Int),
                    ],
                    i as u64,
                )
            })
            .collect();
        Ok(Box::new(MemRowset::new(schema, rows)))
    }
}

fn main() -> Result<()> {
    let log = Arc::new(Changelog {
        entries: vec![
            (1, "alpha".into(), "set", Some(10)),
            (2, "beta".into(), "set", Some(5)),
            (3, "alpha".into(), "set", Some(20)),
            (4, "beta".into(), "del", None),
            (5, "gamma".into(), "set", Some(7)),
            (6, "alpha".into(), "set", Some(30)),
        ],
    });
    let engine = Engine::new("local");
    engine.add_linked_server("changelog", Arc::new(ChangelogProvider { log }))?;

    // The provider knows nothing about SQL; the DHQP layers filtering,
    // grouping and ordering on top of its rowsets.
    let sql = "SELECT key, COUNT(*) AS writes, MAX(value) AS last_value \
               FROM changelog.db.dbo.events WHERE op = 'set' \
               GROUP BY key ORDER BY key";
    println!("{sql}\n");
    println!("{}", engine.query(sql)?.to_table());

    // Latest event per key via a correlated NOT EXISTS.
    let sql = "SELECT e.key, e.op, e.value FROM changelog.db.dbo.events e \
               WHERE NOT EXISTS (SELECT * FROM changelog.db.dbo.events newer \
                                 WHERE newer.key = e.key AND newer.seq > e.seq) \
               ORDER BY e.key";
    println!("{sql}\n");
    println!("{}", engine.query(sql)?.to_table());
    Ok(())
}
