//! Full-text search over a document catalog and over relational data —
//! paper §2.2 and §2.3.
//!
//! ```text
//! cargo run --example document_search
//! ```

use dhqp::Engine;
use dhqp_fulltext::FullTextProvider;
use dhqp_oledb::DataSource;
use dhqp_storage::TableDef;
use dhqp_types::{Column, DataType, Row, Schema, Value};
use dhqp_workload::docs::generate_documents;
use std::sync::Arc;

fn main() -> dhqp_types::Result<()> {
    let engine = Engine::new("local");

    // §2.2: a full-text catalog over a document repository, queried through
    // OPENROWSET with the provider's own (non-SQL) language.
    let service = Arc::clone(engine.fulltext_service());
    service.create_catalog("DQLiterature")?;
    for doc in generate_documents(60, 2024) {
        service.index_document("DQLiterature", doc)?;
    }
    let svc = Arc::clone(&service);
    engine.register_openrowset_provider(
        "MSIDXS",
        Arc::new(move |catalog: &str| {
            Ok(Arc::new(FullTextProvider::new(Arc::clone(&svc), catalog)) as Arc<dyn DataSource>)
        }),
    );
    let sql = "SELECT FS.path, FS.rank FROM OPENROWSET('MSIDXS','DQLiterature',\
               'Select path, rank from SCOPE() \
                where CONTAINS(''\"parallel database\" OR \"heterogeneous query\"'')') AS FS \
               WHERE FS.rank >= 10";
    println!("== paper §2.2: documents about parallel databases ==\n{sql}\n");
    println!("{}", engine.query(sql)?.to_table());

    // §2.3: full-text over rows of a SQL table, joined on row identity.
    engine.create_table(
        TableDef::new(
            "kb_articles",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::not_null("title", DataType::Str),
                Column::new("body", DataType::Str),
            ]),
        )
        .with_index("pk_kb", &["id"], true),
    )?;
    engine.insert(
        "kb_articles",
        &[
            Row::new(vec![
                Value::Int(1),
                Value::Str("marathon training".into()),
                Value::Str("The runner ran twenty miles; running builds endurance".into()),
            ]),
            Row::new(vec![
                Value::Int(2),
                Value::Str("query engines".into()),
                Value::Str("distributed query processing over heterogeneous sources".into()),
            ]),
            Row::new(vec![
                Value::Int(3),
                Value::Str("pasta night".into()),
                Value::Str("garlic, basil and simmering sauce".into()),
            ]),
        ],
    )?;
    engine.create_fulltext_index("kb_articles", "id", "body", "kb_ft")?;

    // Word-stem equivalence: 'run' matches 'runner', 'ran', 'running'.
    let sql = "SELECT id, title FROM kb_articles WHERE CONTAINS(body, 'run')";
    println!("== paper §2.3: CONTAINS over relational data (stemmed) ==\n{sql}\n");
    println!("{}", engine.query(sql)?.to_table());

    let sql = "SELECT title FROM kb_articles \
               WHERE CONTAINS(body, 'query OR sauce') AND id > 1 ORDER BY title";
    println!("== full-text predicate mixed with relational predicates ==\n{sql}\n");
    println!("{}", engine.query(sql)?.to_table());
    Ok(())
}
