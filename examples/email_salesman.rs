//! The paper's §2.4 salesman scenario: unanswered e-mail from Seattle
//! customers within the last two days, joining a mail file with an
//! Access-style customer database.
//!
//! ```text
//! cargo run --example email_salesman
//! ```

use dhqp::Engine;
use dhqp_oledb::SqlSupport;
use dhqp_providers::{MailboxProvider, MiniSqlProvider};
use dhqp_storage::{StorageEngine, TableDef};
use dhqp_types::{value::parse_date, Column, DataType, Row, Schema, Value};
use dhqp_workload::mailgen::{generate_mailbox, MailboxSpec};
use std::sync::Arc;

fn main() -> dhqp_types::Result<()> {
    let today = parse_date("2004-06-14").expect("valid date");
    let engine = Engine::new("local");

    // d:\mail\smith.mmf — the salesman's mail file.
    let spec = MailboxSpec {
        owner: "smith@corp.example".into(),
        customers: MailboxSpec::customer_addresses(12),
        inbound: 30,
        reply_fraction: 0.6,
        today,
    };
    let mailbox = MailboxProvider::from_text("d:\\mail\\smith.mmf", &generate_mailbox(&spec, 8))?;
    println!("mailbox: {} messages parsed", mailbox.message_count());
    engine.add_linked_server("mail", Arc::new(mailbox))?;

    // d:\access\Enterprise.mdb — the Access customers database.
    let mdb = Arc::new(StorageEngine::new("enterprise.mdb"));
    mdb.create_table(TableDef::new(
        "Customers",
        Schema::new(vec![
            Column::not_null("Emailaddr", DataType::Str),
            Column::not_null("City", DataType::Str),
            Column::new("Address", DataType::Str),
        ]),
    ))?;
    let rows: Vec<Row> = spec
        .customers
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            Row::new(vec![
                Value::Str(addr.clone()),
                Value::Str(if i % 2 == 0 { "Seattle" } else { "Portland" }.into()),
                Value::Str(format!("{} Pine St", i + 1)),
            ])
        })
        .collect();
    mdb.insert_rows("Customers", &rows)?;
    engine.add_linked_server(
        "access",
        Arc::new(MiniSqlProvider::new(
            "Enterprise.mdb",
            mdb,
            SqlSupport::OdbcCore,
        )?),
    )?;

    // The §2.4 query in the engine's dialect: MakeTable(Mail, ...) becomes
    // the mailbox linked server; MakeTable(Access, ...) the Access one.
    let sql = "SELECT m1.date, m1.from_addr, m1.subject, c.Address \
               FROM mail.mbx.dbo.messages m1, access.db.dbo.Customers c \
               WHERE m1.date >= DATE '2004-06-12' \
                 AND m1.from_addr = c.Emailaddr \
                 AND c.City = 'Seattle' \
                 AND m1.to_addr = 'smith@corp.example' \
                 AND NOT EXISTS (SELECT * FROM mail.mbx.dbo.messages m2 \
                                 WHERE m2.inreplyto = m1.msgid) \
               ORDER BY m1.date DESC";
    println!("\n== unanswered Seattle mail from the last two days ==\n{sql}\n");
    println!("-- plan\n{}", engine.explain(sql)?.render());
    println!("-- result\n{}", engine.query(sql)?.to_table());
    Ok(())
}
