//! Observability walkthrough: `EXPLAIN`, `EXPLAIN ANALYZE`, the structured
//! [`dhqp::AnalyzeReport`], engine metrics and the recent-query ring — over
//! the paper's Example 1 distributed join.
//!
//! ```text
//! cargo run --example explain_analyze
//! ```

use dhqp::{Engine, EngineDataSource};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_workload::tpch::{self, TpchScale};
use std::sync::Arc;

fn main() -> dhqp_types::Result<()> {
    let scale = TpchScale::tiny();
    // remote0 hosts customer and supplier; nation stays local (Example 1).
    let remote = Engine::new("remote0-engine");
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        tpch::create_customer(remote.storage(), &scale, &mut rng)?;
        tpch::create_supplier(remote.storage(), &scale, &mut rng)?;
        remote.storage().analyze("customer", 24)?;
        remote.storage().analyze("supplier", 24)?;
    }
    let local = Engine::new("local");
    tpch::create_nation(local.storage(), &scale)?;
    local.analyze("nation", 8)?;
    let link = NetworkLink::new("remote0-wire", NetworkConfig::lan());
    local.add_linked_server(
        "remote0",
        Arc::new(NetworkedDataSource::new(
            Arc::new(EngineDataSource::new(remote)),
            link.clone(),
        )),
    )?;

    let example1 = "SELECT c.c_name, c.c_address, c.c_phone \
                    FROM remote0.tpch.dbo.customer c, remote0.tpch.dbo.supplier s, nation n \
                    WHERE c.c_nationkey = n.n_nationkey AND n.n_nationkey = s.s_nationkey";

    // 1. Plain EXPLAIN: the optimized plan plus search telemetry, no
    //    execution. Available as a statement or via Engine::explain.
    println!("== EXPLAIN (estimates only) ==");
    for row in local.execute(&format!("EXPLAIN {example1}"))?.rows {
        println!("{}", row.get(0));
    }

    // 2. EXPLAIN ANALYZE: run the plan with per-operator instrumentation.
    //    Every node shows actual vs estimated rows, rescans and cursor
    //    time; remote nodes show the shipped SQL and wire traffic.
    println!("\n== EXPLAIN ANALYZE (executed) ==");
    for row in local.execute(&format!("EXPLAIN ANALYZE {example1}"))?.rows {
        println!("{}", row.get(0));
    }

    // 3. The structured report: per-node runtime facts for tooling.
    let report = local.execute_analyze(example1)?;
    println!("\n== structured AnalyzeReport ==");
    println!("result rows: {}", report.result.len());
    for (id, rt) in report.remote_nodes() {
        let trace = rt.remote.as_ref().expect("remote node has a trace");
        println!(
            "node {id}: @{} shipped {} request(s), {} row(s), {} byte(s)",
            trace.server, trace.traffic.requests, trace.traffic.rows, trace.traffic.bytes
        );
        println!("         text: {}", trace.sql);
    }

    // 4. Engine-wide metrics: lock-free counters across all executions.
    let m = local.metrics();
    println!("\n== Engine::metrics() ==");
    println!("statements             : {}", m.statements());
    println!("  selects / explains   : {} / {}", m.selects, m.explains);
    println!("  explain analyzes     : {}", m.explain_analyzes);
    println!(
        "meta cache hit / miss  : {} / {}",
        m.meta_cache_hits, m.meta_cache_misses
    );
    println!("remote round trips     : {}", m.remote_roundtrips);
    println!(
        "spool builds / hits    : {} / {}",
        m.spool_builds, m.spool_hits
    );
    println!(
        "dtc commits / aborts   : {} / {}",
        m.dtc_commits, m.dtc_aborts
    );

    // 5. The recent-query ring: the last statements with outcome and time.
    println!("\n== Engine::recent_queries() ==");
    for q in local.recent_queries() {
        let sql: String = q.sql.chars().take(60).collect();
        println!(
            "[{}] {:?} rows={} in {:.2?}: {sql}...",
            if q.ok { "ok" } else { "ERR" },
            q.kind,
            q.rows,
            q.elapsed
        );
    }
    Ok(())
}
