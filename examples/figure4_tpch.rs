//! The paper's Example 1 / Figure 4, live: cost-based choice between
//! pushing `customer ⋈ supplier` to the remote server (plan a) and joining
//! `supplier ⋈ nation` locally first (plan b).
//!
//! ```text
//! cargo run --release --example figure4_tpch
//! ```

use dhqp::{Engine, EngineDataSource};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_workload::tpch::{self, TpchScale};
use std::sync::Arc;

fn main() -> dhqp_types::Result<()> {
    let scale = TpchScale::small();
    // remote0 hosts customer and supplier (as in Example 1).
    let remote = Engine::new("remote0-engine");
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        tpch::create_customer(remote.storage(), &scale, &mut rng)?;
        tpch::create_supplier(remote.storage(), &scale, &mut rng)?;
        remote.storage().analyze("customer", 24)?;
        remote.storage().analyze("supplier", 24)?;
    }
    let local = Engine::new("local");
    tpch::create_nation(local.storage(), &scale)?;
    local.analyze("nation", 8)?;
    let link = NetworkLink::new("remote0-wire", NetworkConfig::lan());
    local.add_linked_server(
        "remote0",
        Arc::new(NetworkedDataSource::new(
            Arc::new(EngineDataSource::new(remote)),
            link.clone(),
        )),
    )?;

    let example1 = "SELECT c.c_name, c.c_address, c.c_phone \
                    FROM remote0.tpch10g.dbo.customer c, remote0.tpch10g.dbo.supplier s, nation n \
                    WHERE c.c_nationkey = n.n_nationkey AND n.n_nationkey = s.s_nationkey";

    println!("== Example 1 ==\n{example1}\n");
    println!("== optimizer's plan (expect plan b: separate remote access) ==");
    println!("{}", local.explain(example1)?.render());

    // Execute and measure (metadata warmed by the explain/first run).
    local.query(example1)?;
    link.reset();
    let t0 = std::time::Instant::now();
    let chosen = local.query(example1)?;
    let chosen_time = t0.elapsed();
    let chosen_traffic = link.snapshot();

    // Force plan (a) with a pass-through join.
    let plan_a = "SELECT j.c_name, j.c_address, j.c_phone FROM \
                  OPENQUERY(remote0, 'SELECT c.c_name, c.c_address, c.c_phone, c.c_nationkey \
                   FROM customer c, supplier s WHERE c.c_nationkey = s.s_nationkey') j, nation n \
                  WHERE j.c_nationkey = n.n_nationkey";
    local.query(plan_a)?;
    link.reset();
    let t0 = std::time::Instant::now();
    let forced = local.query(plan_a)?;
    let forced_time = t0.elapsed();
    let forced_traffic = link.snapshot();

    assert_eq!(chosen.len(), forced.len());
    println!(
        "== traffic comparison (same {} result rows) ==",
        chosen.len()
    );
    println!(
        "plan (b) optimizer-chosen : {:>9} bytes, {:>6} rows shipped, {:>10.2?}",
        chosen_traffic.bytes, chosen_traffic.rows, chosen_time
    );
    println!(
        "plan (a) forced pushed-join: {:>9} bytes, {:>6} rows shipped, {:>10.2?}",
        forced_traffic.bytes, forced_traffic.rows, forced_time
    );
    println!(
        "\nplan (a) ships {:.1}x the bytes of plan (b) — the optimizer avoided \
         sending the customer⋈supplier intermediate result over the network, \
         exactly as Figure 4 describes.",
        forced_traffic.bytes as f64 / chosen_traffic.bytes.max(1) as f64
    );
    Ok(())
}
