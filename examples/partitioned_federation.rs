//! A federated database system on partitioned views (paper §4.1.5): the
//! seven-way `lineitem` partitioning by commit year, static and runtime
//! pruning, routed DML and 2PC.
//!
//! ```text
//! cargo run --release --example partitioned_federation
//! ```

use dhqp::{Engine, EngineDataSource};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_types::{value::parse_date, Value};
use dhqp_workload::tpch::{self, TpchScale};
use std::collections::HashMap;
use std::sync::Arc;

fn main() -> dhqp_types::Result<()> {
    let scale = TpchScale::small();
    let head = Engine::new("head");
    let m1 = Engine::new("member1-engine");
    let m2 = Engine::new("member2-engine");
    let engines = [
        head.storage().as_ref(),
        m1.storage().as_ref(),
        m2.storage().as_ref(),
    ];
    let members = tpch::create_lineitem_partitions(&engines, &scale, 3)?;

    let mut links = Vec::new();
    for (i, member) in [&m1, &m2].iter().enumerate() {
        let link = NetworkLink::new(format!("member{}", i + 1), NetworkConfig::lan());
        head.add_linked_server(
            &format!("member{}", i + 1),
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new((*member).clone())),
                link.clone(),
            )),
        )?;
        links.push(link);
    }
    head.define_partitioned_view(
        "lineitem_all",
        "l_commitdate",
        members
            .into_iter()
            .map(|(idx, table, domain)| {
                (
                    if idx == 0 {
                        None
                    } else {
                        Some(format!("member{idx}"))
                    },
                    table,
                    domain,
                )
            })
            .collect(),
    )?;

    println!("== the view spans 7 yearly partitions across 3 servers ==");
    let total = head.query("SELECT COUNT(*) AS rows FROM lineitem_all")?;
    println!("{}", total.to_table());

    // Static pruning: the constant predicate eliminates six partitions at
    // compile time.
    let sql = "SELECT COUNT(*) AS n, SUM(l_extendedprice) AS revenue FROM lineitem_all \
               WHERE l_commitdate >= '1995-01-01' AND l_commitdate <= '1995-12-31'";
    println!("== static pruning ==\n{sql}\n");
    println!("{}", head.explain(sql)?.render());
    println!("{}", head.query(sql)?.to_table());

    // Runtime pruning: the parameterized predicate keeps every member at
    // compile time — guarded by startup filters (Figure in §4.1.5).
    let sql = "SELECT COUNT(*) AS n FROM lineitem_all WHERE l_commitdate = @d";
    let mut params = HashMap::new();
    params.insert(
        "d".to_string(),
        Value::Date(parse_date("1996-07-04").expect("valid date")),
    );
    println!("== runtime pruning via startup filters ==\n{sql}  (@d = 1996-07-04)\n");
    println!(
        "{}",
        head.explain_with_params(sql, params.clone())?.render()
    );
    head.query_with_params(sql, params.clone())?; // warm metadata
    for l in &links {
        l.reset();
    }
    println!("{}", head.query_with_params(sql, params)?.to_table());
    for (i, l) in links.iter().enumerate() {
        let s = l.snapshot();
        println!(
            "member{}: {} round trips, {} rows shipped",
            i + 1,
            s.requests,
            s.rows
        );
    }

    // Routed DML with 2PC across members.
    println!("\n== routed INSERT spanning two members (2PC) ==");
    head.execute(
        "INSERT INTO lineitem_all (l_orderkey, l_linenumber, l_suppkey, l_quantity, \
         l_extendedprice, l_commitdate) VALUES \
         (777001, 1, 0, 3, 30.0, '1993-05-05'), \
         (777001, 2, 0, 4, 40.0, '1997-05-05')",
    )?;
    let (commits, aborts) = head.dtc().stats();
    println!("dtc: {commits} committed, {aborts} aborted");
    let check = head.query(
        "SELECT l_linenumber, l_commitdate FROM lineitem_all \
                            WHERE l_orderkey = 777001 ORDER BY l_linenumber",
    )?;
    println!("{}", check.to_table());
    Ok(())
}
