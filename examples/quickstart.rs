//! Quickstart: create an engine, load tables, define a linked server, and
//! watch the optimizer push work to the remote side.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dhqp::{Engine, EngineDataSource};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_storage::TableDef;
use dhqp_types::{Column, DataType, Row, Schema, Value};
use std::sync::Arc;

fn main() -> dhqp_types::Result<()> {
    // 1. A local engine with one table.
    let local = Engine::new("local");
    local.create_table(TableDef::new(
        "dept",
        Schema::new(vec![
            Column::not_null("dept_id", DataType::Int),
            Column::not_null("dept_name", DataType::Str),
        ]),
    ))?;
    local.insert(
        "dept",
        &[
            Row::new(vec![Value::Int(1), Value::Str("engineering".into())]),
            Row::new(vec![Value::Int(2), Value::Str("sales".into())]),
        ],
    )?;

    // 2. A "remote SQL Server": another engine behind a simulated link.
    let remote = Engine::new("dept-server");
    remote.create_table(
        TableDef::new(
            "employees",
            Schema::new(vec![
                Column::not_null("emp_id", DataType::Int),
                Column::not_null("name", DataType::Str),
                Column::not_null("dept_id", DataType::Int),
                Column::not_null("salary", DataType::Int),
            ]),
        )
        .with_index("pk_employees", &["emp_id"], true),
    )?;
    let people = [
        (1, "alice", 1, 120),
        (2, "bob", 1, 100),
        (3, "carol", 2, 90),
        (4, "dave", 2, 95),
        (5, "erin", 1, 110),
    ];
    remote.insert(
        "employees",
        &people
            .iter()
            .map(|(id, n, d, s)| {
                Row::new(vec![
                    Value::Int(*id),
                    Value::Str(n.to_string()),
                    Value::Int(*d),
                    Value::Int(*s),
                ])
            })
            .collect::<Vec<_>>(),
    )?;
    remote.analyze("employees", 8)?;

    // 3. Link it under the name `DeptSQLSrvr` (paper §2.1).
    let link = NetworkLink::new("wire", NetworkConfig::lan());
    local.add_linked_server(
        "DeptSQLSrvr",
        Arc::new(NetworkedDataSource::new(
            Arc::new(EngineDataSource::new(remote)),
            link.clone(),
        )),
    )?;

    // 4. Four-part names just work; the optimizer decides what to push.
    let sql = "SELECT d.dept_name, COUNT(*) AS headcount, MAX(e.salary) AS top_salary \
               FROM DeptSQLSrvr.Northwind.dbo.employees e, dept d \
               WHERE e.dept_id = d.dept_id AND e.salary >= 95 \
               GROUP BY d.dept_name ORDER BY d.dept_name";
    println!("-- query\n{sql}\n");
    println!("-- plan\n{}", local.explain(sql)?.render());

    let before = link.snapshot();
    let result = local.query(sql)?;
    let traffic = link.snapshot().since(&before);
    println!("-- result\n{}", result.to_table());
    println!(
        "-- network: {} round trips, {} rows, {} bytes shipped",
        traffic.requests, traffic.rows, traffic.bytes
    );
    Ok(())
}
