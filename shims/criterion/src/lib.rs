//! Offline drop-in shim for the slice of `criterion` 0.5 the benches use:
//! `Criterion::bench_function` / `benchmark_group`, group `sample_size` /
//! `bench_function` / `bench_with_input` / `finish`, `Bencher::iter`,
//! `BenchmarkId::new`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm up, then time a fixed sample of
//! iterations and report mean wall time per iteration. No statistics, plots,
//! or baselines; enough to compare runs by eye, which is all the paper-figure
//! benches need in an offline container.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, not timed.
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export so `criterion::black_box` keeps working if a bench uses it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {label:<56} {per_iter:>12.2?}/iter ({} iters)",
        b.iters
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_runs() {
        let mut c = super::Criterion::default();
        c.sample_size(5);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= 5);
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(super::BenchmarkId::new("id", 7), &7u64, |b, i| {
            b.iter(|| *i * 2)
        });
        g.finish();
    }
}
