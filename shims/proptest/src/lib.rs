//! Offline mini property-testing framework, API-compatible with the slice of
//! `proptest` 1.x this workspace uses: the `proptest!` macro, `Strategy` +
//! `prop_map`, `Just`, `any::<bool>()`, integer-range strategies, simple
//! regex-literal string strategies (`[class]{lo,hi}` / `.{lo,hi}`),
//! `prop_oneof!`, `prop::collection::vec`, `prop::option::of`, tuple
//! strategies, `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its inputs
//! and seed but is not minimized), and case generation is deterministic per
//! test name so CI failures reproduce locally.

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, TestRng, Union};

/// Runner configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Arbitrary values for `any::<T>()`.
pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyBool
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::Range<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..<$t>::MAX
            }
        }
    )*};
}
arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Sub-strategy namespaces, mirroring `proptest::prelude::prop`.
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(strategy, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of(strategy)` — `Some` with probability 1/2.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// FNV-1a over the test name: per-test deterministic seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = $crate::TestRng::new(seed);
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let dbg_args = format!("{:?}", ($(&$arg,)*));
                    let outcome = (move || -> ::std::result::Result<(), String> {
                        $body
                        Ok(())
                    })();
                    if let Err(msg) = outcome {
                        panic!(
                            "proptest case {}/{} failed (seed {seed:#x}): {}\n  inputs: {}",
                            case + 1,
                            config.cases,
                            msg,
                            dbg_args,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{}` == `{}`\n  left: {:?}\n  right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r,
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{}` != `{}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}
