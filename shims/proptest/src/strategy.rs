//! Value-generation strategies for the offline proptest shim.

use std::ops::Range;

/// Deterministic splitmix64 generator driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.is_empty() {
            return range.start;
        }
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }
}

/// Stand-in for `proptest::strategy::Strategy`.
pub trait Strategy {
    type Value;

    /// Produce one value. (Upstream separates trees/shrinking; the shim
    /// generates directly.)
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0..self.branches.len());
        self.branches[idx].generate(rng)
    }
}

/// `any::<bool>()`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 0
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String strategy from a small regex-literal subset: `X{lo,hi}` where `X`
/// is `.` (any printable char, never `\n`) or a char class like `[a-z%_]`.
/// Anything else is treated as a literal string.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_pattern(self) {
            Some((class, lo, hi)) => {
                let len = rng.usize_in(lo..hi + 1);
                (0..len).map(|_| class.sample(rng)).collect()
            }
            None => (*self).to_string(),
        }
    }
}

enum CharClass {
    /// `.` — printable char sampled from a mixed pool (ASCII-heavy with a
    /// few multi-byte code points to stress UTF-8 handling).
    Any,
    /// `[...]` — explicit set, ranges expanded.
    Set(Vec<char>),
}

impl CharClass {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharClass::Any => {
                const EXTRA: &[char] = &['\t', 'é', 'Ω', '語', '☃'];
                let roll = rng.usize_in(0..100);
                if roll < 92 {
                    // Printable ASCII 0x20..=0x7E.
                    char::from_u32(0x20 + rng.next_u64() as u32 % 95).unwrap()
                } else {
                    EXTRA[rng.usize_in(0..EXTRA.len())]
                }
            }
            CharClass::Set(chars) => chars[rng.usize_in(0..chars.len())],
        }
    }
}

/// Parse `.{lo,hi}` or `[class]{lo,hi}`; `None` means "not a pattern".
fn parse_pattern(pat: &str) -> Option<(CharClass, usize, usize)> {
    let (class, rest) = if let Some(rest) = pat.strip_prefix('[') {
        let close = rest.find(']')?;
        let inner: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < inner.len() {
            if i + 2 < inner.len() && inner[i + 1] == '-' {
                let (a, b) = (inner[i], inner[i + 2]);
                for c in a..=b {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(inner[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        (CharClass::Set(chars), &rest[close + 1..])
    } else if let Some(rest) = pat.strip_prefix('.') {
        (CharClass::Any, rest)
    } else {
        return None;
    };
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    Some((class, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_parsing_and_sampling() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = "[a-z]{0,6}".generate(&mut rng);
            assert!(
                s.len() <= 6 && s.chars().all(|c| c.is_ascii_lowercase()),
                "{s:?}"
            );
            let t = "[a-z%_]{0,12}".generate(&mut rng);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '%' || c == '_'));
            let any = ".{0,20}".generate(&mut rng);
            assert!(any.chars().count() <= 20);
            assert!(!any.contains('\n'));
        }
        assert_eq!("not a pattern".generate(&mut rng), "not a pattern");
    }

    #[test]
    fn ranges_and_unions() {
        let mut rng = TestRng::new(9);
        for _ in 0..500 {
            let v = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&v));
            let u = crate::prop_oneof![Just(1i64), Just(2), (10i64..20)].generate(&mut rng);
            assert!(u == 1 || u == 2 || (10..20).contains(&u));
        }
    }
}
