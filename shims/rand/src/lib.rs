//! Offline drop-in shim for the slice of `rand` 0.8 this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! half-open integer ranges, and `Rng::gen_bool`.
//!
//! The generator is splitmix64 — deterministic, seedable, and plenty for
//! workload generation and randomized tests. It is NOT the same stream as
//! upstream rand's StdRng, so seeded datasets differ from a registry build;
//! all in-repo tests derive expectations from the generated data itself.

use std::ops::Range;

/// Core RNG abstraction (stand-in for `rand::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Stand-in for `rand::SeedableRng` (only `seed_from_u64` is used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open integer range. Panics if empty,
    /// like upstream.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 high bits -> uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Integer types samplable from a `Range` by `gen_range`.
pub trait SampleRange: Copy {
    fn sample(raw: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(raw: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let off = (raw as u128) % span;
                (range.start as i128 + off as i128) as Self
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: i64 = a.gen_range(-5..17);
            assert_eq!(x, b.gen_range(-5..17));
            assert!((-5..17).contains(&x));
            let u: usize = a.gen_range(0..3);
            assert!(u < 3);
            assert_eq!(u, b.gen_range(0..3));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(7);
        assert!(!(0..100).map(|_| r.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| r.gen_bool(1.0)).all(|b| b));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "{heads}");
    }
}
