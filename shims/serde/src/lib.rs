//! Offline drop-in shim for the slice of `serde` this workspace touches.
//!
//! The codebase derives `Serialize`/`Deserialize` on a handful of plain data
//! types but never serializes through a format crate, so marker traits plus
//! no-op derive macros (see `shims/serde_derive`) satisfy every use site
//! without registry access. The `derive` and `rc` features exist because the
//! workspace dependency requests them.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
