//! No-op `Serialize`/`Deserialize` derives backing the offline serde shim.
//!
//! Nothing in the workspace bounds on the serde traits or serializes through
//! a format crate, so the derives expand to nothing. `attributes(serde)` is
//! declared so any future `#[serde(...)]` field attribute still parses.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
