//! Umbrella crate for the `dhqp` reproduction workspace: hosts the
//! cross-crate integration tests (`tests/`) and runnable examples
//! (`examples/`). The library surface re-exports the engine crate.

pub use dhqp::*;
