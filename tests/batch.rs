//! Batched row shipping: the chunked pull path must change *when* rows
//! cross the wire (K rows per round trip instead of one) without changing
//! *what* crosses it — identical multisets, identical per-link byte and
//! row accounting, and batch-boundary-exact retry rewinds under seeded
//! faults. `DHQP_BATCH_SIZE=1` must degenerate to the classic per-row
//! behavior round trip for round trip.

use dhqp::{BatchConfig, Engine, EngineDataSource, FaultConfig, ParallelConfig, RetryPolicy};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_oledb::TrafficSnapshot;
use dhqp_types::{Row, Value};
use dhqp_workload::tpch::{self, TpchScale};
use std::sync::Arc;
use std::time::Duration;

/// Head engine federating four members holding the seven `lineitem_9x`
/// partitions, each behind a link armed with `config(member_index)`.
fn federation_with_faults(
    config: impl Fn(usize) -> Option<FaultConfig>,
) -> (Engine, Vec<NetworkLink>) {
    let head = Engine::new("head");
    let members: Vec<Engine> = (1..=4)
        .map(|i| Engine::new(format!("member{i}-engine")))
        .collect();
    let engines: Vec<&dhqp_storage::StorageEngine> =
        members.iter().map(|e| e.storage().as_ref()).collect();
    let parts = tpch::create_lineitem_partitions(&engines, &TpchScale::tiny(), 17).unwrap();

    let mut links = Vec::new();
    for (i, m) in members.iter().enumerate() {
        let link = NetworkLink::new(format!("member{}", i + 1), NetworkConfig::lan());
        let inner: Arc<dyn dhqp_oledb::DataSource> = Arc::new(EngineDataSource::new(m.clone()));
        let wrapped = match config(i) {
            Some(cfg) => NetworkedDataSource::with_faults(inner, link.clone(), cfg),
            None => NetworkedDataSource::reliable(inner, link.clone()),
        };
        head.add_linked_server(&format!("member{}", i + 1), Arc::new(wrapped))
            .unwrap();
        links.push(link);
    }
    let view_members = parts
        .into_iter()
        .map(|(idx, table, domain)| (Some(format!("member{}", idx + 1)), table, domain))
        .collect();
    head.define_partitioned_view("lineitem_all", "l_commitdate", view_members)
        .unwrap();
    (head, links)
}

fn federation() -> (Engine, Vec<NetworkLink>) {
    federation_with_faults(|_| None)
}

fn fast_retries() -> RetryPolicy {
    RetryPolicy {
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        ..RetryPolicy::standard()
    }
}

/// Rows as sorted value vectors: bag equality independent of delivery order.
fn multiset(rows: &[Row], width: usize) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| (0..width).map(|i| r.get(i).clone()).collect())
        .collect();
    out.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    out
}

fn measure(links: &[NetworkLink]) -> Vec<TrafficSnapshot> {
    links.iter().map(NetworkLink::snapshot).collect()
}

fn reset(links: &[NetworkLink]) {
    for l in links {
        l.reset();
    }
}

const SCAN: &str = "SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem_all";

#[test]
fn batched_multiset_matches_row_mode_across_serial_parallel_and_faults() {
    // Reference answer: classic per-row serial pipeline, clean links.
    let (reference, _links) = federation();
    reference.set_batch_config(BatchConfig::row_at_a_time());
    reference.set_parallel_config(ParallelConfig::serial());
    let want = multiset(&reference.query(SCAN).unwrap().rows, 3);
    let scale = TpchScale::tiny();
    assert_eq!(want.len(), scale.orders * scale.lineitems_per_order);

    for parallel in [false, true] {
        for fault_seed in [None, Some(42)] {
            let (head, _links) =
                federation_with_faults(|_| fault_seed.map(FaultConfig::one_transient_per_link));
            head.set_batch_config(BatchConfig::batched(5));
            head.set_parallel_config(if parallel {
                ParallelConfig::parallel()
            } else {
                ParallelConfig::serial()
            });
            if fault_seed.is_some() {
                head.set_retry_policy(fast_retries());
            }
            let got = head.query(SCAN).unwrap();
            assert_eq!(
                multiset(&got.rows, 3),
                want,
                "batched run diverged (parallel={parallel}, faults={fault_seed:?})"
            );
            if fault_seed.is_some() {
                let m = head.metrics();
                assert!(
                    m.remote_retries > 0,
                    "fault plan never fired (parallel={parallel}): {m:?}"
                );
            }
        }
    }
}

#[test]
fn batching_ships_identical_bytes_in_fewer_round_trips() {
    let (head, links) = federation();
    // Warm the metadata cache so both measured runs bind identically.
    head.set_batch_config(BatchConfig::row_at_a_time());
    head.query(SCAN).unwrap();

    reset(&links);
    head.query(SCAN).unwrap();
    let row_traffic = measure(&links);

    head.set_batch_config(BatchConfig::batched(64));
    reset(&links);
    head.query(SCAN).unwrap();
    let batch_traffic = measure(&links);

    for (link, (r, b)) in links.iter().zip(row_traffic.iter().zip(&batch_traffic)) {
        let name = link.name();
        assert_eq!(r.rows, b.rows, "row count changed on '{name}'");
        assert_eq!(r.bytes, b.bytes, "byte count changed on '{name}'");
        assert_eq!(r.requests, b.requests, "request count changed on '{name}'");
        // In row mode every row is its own flush; batching coalesces.
        assert_eq!(r.batches, r.rows, "row mode must flush per row on '{name}'");
        assert!(
            b.batches < b.rows || b.rows <= 1,
            "batch mode never coalesced on '{name}': {b:?}"
        );
        let avg = b.rows_per_round_trip().unwrap();
        assert!(avg > 1.0, "gauge must exceed 1 when batching: {avg}");
    }
}

#[test]
fn batch_size_one_degenerates_to_row_mode_accounting() {
    let (head, links) = federation();
    head.set_batch_config(BatchConfig::row_at_a_time());
    head.query(SCAN).unwrap(); // warm metadata

    reset(&links);
    head.query(SCAN).unwrap();
    let row_traffic = measure(&links);

    head.set_batch_config(BatchConfig::batched(1));
    reset(&links);
    head.query(SCAN).unwrap();
    let one_traffic = measure(&links);

    // K=1 is exactly the classic behavior: same rows, bytes, requests AND
    // the same number of round trips (batches == rows).
    assert_eq!(row_traffic, one_traffic);
    for t in &one_traffic {
        assert_eq!(t.batches, t.rows);
        assert_eq!(t.rows_per_round_trip(), Some(1.0));
    }
}

#[test]
fn mid_batch_fault_rewinds_on_batch_boundaries_without_changing_answers() {
    // Seeded stream drops land mid-stream — with a 5-row batch size the
    // fault window re-slices the final pre-fault batch, the retry rewind
    // then skips whole delivered batches and re-slices the tail.
    let (clean, _cl) = federation();
    clean.set_batch_config(BatchConfig::batched(5));
    let want = multiset(&clean.query(SCAN).unwrap().rows, 3);

    for seed in [7, 11, 42] {
        let (head, links) =
            federation_with_faults(|_| Some(FaultConfig::one_transient_per_link(seed)));
        head.set_batch_config(BatchConfig::batched(5));
        head.set_retry_policy(fast_retries());
        let got = head.query(SCAN).unwrap();
        assert_eq!(multiset(&got.rows, 3), want, "seed {seed} changed answers");
        let faults: u64 = links.iter().map(NetworkLink::faults_injected).sum();
        assert!(faults > 0, "seed {seed} injected nothing");
        assert!(head.metrics().remote_retries >= faults);
    }
}

#[test]
fn attempt_deadlines_and_batch_rewinds_compose_without_double_counting() {
    // The two retry triggers at once, on different links: member 1 stalls
    // one open past the attempt deadline (a Timeout retry), while member 3
    // drops two result streams mid-flight (batch-boundary rewinds). The
    // rewind must skip exactly the delivered batches — any off-by-one
    // double-counts or loses rows and breaks the multiset.
    let (clean, _cl) = federation();
    clean.set_batch_config(BatchConfig::batched(3));
    let want = multiset(&clean.query(SCAN).unwrap().rows, 3);

    for seed in [7u64, 11, 42] {
        let (head, _links) = federation_with_faults(|i| match i {
            0 => Some(FaultConfig {
                seed,
                stalls: 1.0,
                stall_ms: 25,
                max_faults: 1,
                ..FaultConfig::none()
            }),
            2 => Some(FaultConfig {
                seed,
                stream_drops: 1.0,
                max_faults: 2,
                ..FaultConfig::none()
            }),
            _ => None,
        });
        head.set_batch_config(BatchConfig::batched(3));
        head.set_retry_policy(RetryPolicy {
            max_attempts: 4,
            attempt_deadline: Some(Duration::from_millis(8)),
            ..fast_retries()
        });
        let got = head.query(SCAN).unwrap();
        assert_eq!(multiset(&got.rows, 3), want, "seed {seed} changed answers");
        let m = head.metrics();
        assert!(
            m.remote_deadline_hits >= 1,
            "seed {seed}: stall never timed out: {m:?}"
        );
        assert!(m.remote_retries >= 1, "seed {seed}: nothing retried: {m:?}");
    }
}

#[test]
fn gauge_surfaces_in_dmv_and_explain_analyze() {
    let (head, _links) = federation();
    head.set_batch_config(BatchConfig::batched(16));
    head.query(SCAN).unwrap();

    let r = head
        .query("SELECT name, rows, rows_per_round_trip FROM sys.dm_link_stats")
        .unwrap();
    assert_eq!(r.rows.len(), 4, "one row per member link: {r:?}");
    for row in &r.rows {
        match row.get(2) {
            Value::Float(avg) => assert!(
                *avg > 1.0,
                "batched link should average >1 row per trip: {row:?}"
            ),
            other => panic!("rows_per_round_trip not a float: {other:?}"),
        }
    }

    let report = head.execute_analyze(SCAN).unwrap();
    let rendered = report.render();
    assert!(
        rendered.contains("[link batch: avg="),
        "EXPLAIN ANALYZE must show the per-link batch gauge:\n{rendered}"
    );
}
