//! Member health, circuit breakers and graceful degradation: a federation
//! with a dead member must either fail *fast* (one breaker trip instead of
//! a retry storm per query) or, under `DegradedMode::Prune`, answer from
//! the surviving members with an explicit warning — never silently drop
//! rows without saying so.
//!
//! All faults come from seeded [`FaultConfig`] plans, so every run sees
//! the same fault schedule and the same breaker transitions.

use dhqp::{
    BreakerConfig, BreakerState, DegradedMode, Engine, EngineDataSource, EventConfig, EventKind,
    FaultConfig, ParallelConfig, RetryPolicy,
};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_types::{Row, Value};
use dhqp_workload::tpch::{self, TpchScale};
use std::sync::Arc;
use std::time::Duration;

/// Head engine federating four members holding the seven `lineitem_9x`
/// partitions, each behind a link armed with `config(member_index)`. Also
/// defines `lineitem_survivors`, the same view minus `skip_member`'s
/// partitions — the reference answer for a degraded run.
fn federation_with_faults(
    skip_member: usize,
    config: impl Fn(usize) -> Option<FaultConfig>,
) -> (Engine, Vec<NetworkLink>) {
    let head = Engine::new("head");
    let members: Vec<Engine> = (1..=4)
        .map(|i| Engine::new(format!("member{i}-engine")))
        .collect();
    let engines: Vec<&dhqp_storage::StorageEngine> =
        members.iter().map(|e| e.storage().as_ref()).collect();
    let parts = tpch::create_lineitem_partitions(&engines, &TpchScale::tiny(), 17).unwrap();

    let mut links = Vec::new();
    for (i, m) in members.iter().enumerate() {
        let link = NetworkLink::new(format!("member{}", i + 1), NetworkConfig::lan());
        let inner: Arc<dyn dhqp_oledb::DataSource> = Arc::new(EngineDataSource::new(m.clone()));
        let wrapped = match config(i) {
            Some(cfg) => NetworkedDataSource::with_faults(inner, link.clone(), cfg),
            None => NetworkedDataSource::reliable(inner, link.clone()),
        };
        head.add_linked_server(&format!("member{}", i + 1), Arc::new(wrapped))
            .unwrap();
        links.push(link);
    }
    let all: Vec<(Option<String>, String, _)> = parts
        .into_iter()
        .map(|(idx, table, domain)| (Some(format!("member{}", idx + 1)), table, domain))
        .collect();
    let survivors: Vec<_> = all
        .iter()
        .filter(|(server, _, _)| server.as_deref() != Some(&format!("member{}", skip_member + 1)))
        .cloned()
        .collect();
    head.define_partitioned_view("lineitem_all", "l_commitdate", all)
        .unwrap();
    head.define_partitioned_view("lineitem_survivors", "l_commitdate", survivors)
        .unwrap();
    (head, links)
}

/// Rows as sorted value vectors: bag equality independent of delivery order.
fn multiset(rows: &[Row], width: usize) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| (0..width).map(|i| r.get(i).clone()).collect())
        .collect();
    out.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    out
}

const SCAN: &str = "SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem_all";
const SURVIVOR_SCAN: &str = "SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem_survivors";

fn fast_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        attempt_deadline: None,
        query_deadline: None,
    }
}

/// `DegradedMode::Prune`: the dead member's partitions are skipped, the
/// surviving multiset is exact, and the degradation is loudly visible in
/// EXPLAIN ANALYZE and `sys.dm_exec_requests`.
#[test]
fn prune_mode_answers_from_surviving_members() {
    // Reference: the same data with member 2's partitions excluded at
    // view-definition time (what a correct prune must reproduce).
    let (clean, _links) = federation_with_faults(1, |_| None);
    let expected = multiset(&clean.query(SURVIVOR_SCAN).unwrap().rows, 3);
    let all_rows = clean.query(SCAN).unwrap().rows.len();
    assert!(expected.len() < all_rows, "member 2 must hold rows");

    for parallel in [false, true] {
        let (head, _links) = federation_with_faults(1, |i| (i == 1).then(|| FaultConfig::dead(21)));
        head.set_retry_policy(fast_retries());
        head.set_degraded_mode(DegradedMode::Prune);
        head.set_parallel_config(if parallel {
            ParallelConfig::parallel()
        } else {
            ParallelConfig::serial()
        });

        // First run burns the retry budget on member2, trips its breaker,
        // and prunes it; the answer is exactly the survivors' rows.
        let got = head.query(SCAN).unwrap();
        assert_eq!(
            multiset(&got.rows, 3),
            expected,
            "pruned run must equal the survivors view (parallel={parallel})"
        );
        let m = head.metrics();
        assert!(m.members_pruned >= 1, "parallel={parallel}: {m:?}");

        // Second run hits an Open breaker: pruned again, this time via
        // fail-fast (no fresh retry storm), and EXPLAIN ANALYZE says so.
        let report = head.execute_analyze(SCAN).unwrap();
        assert_eq!(multiset(&report.result.rows, 3), expected);
        assert_eq!(report.pruned, vec!["member2".to_string()]);
        let rendered = report.render();
        assert!(
            rendered.contains("[degraded: pruned members=member2]"),
            "parallel={parallel}:\n{rendered}"
        );
        let m = head.metrics();
        assert!(m.breaker_fast_fails >= 1, "parallel={parallel}: {m:?}");

        // The statement ring records how many members each query lost.
        let r = head
            .query("SELECT sql, pruned_members FROM sys.dm_exec_requests")
            .unwrap();
        assert!(
            r.rows
                .iter()
                .any(|row| matches!(row.get(1), Value::Int(n) if *n >= 1)),
            "parallel={parallel}: {r:?}"
        );
    }
}

/// Default `DegradedMode::Fail`: the first query burns one retry budget
/// and trips the breaker; later queries reject in O(1) without touching
/// the wire, surfacing a breaker error and the CIRCUIT_OPEN wait class.
#[test]
fn fail_mode_fails_fast_after_one_breaker_trip() {
    let (head, _links) = federation_with_faults(1, |i| (i == 1).then(|| FaultConfig::dead(5)));
    // Pin the policy: the suite may run under DHQP_DEGRADED=prune.
    head.set_degraded_mode(DegradedMode::Fail);
    head.set_retry_policy(fast_retries());

    // Query 1: a full retry budget, then the give-up reason chain.
    let err = head.query(SCAN).unwrap_err();
    assert_eq!(err.kind(), "unavailable", "{err}");
    assert!(
        err.message().contains("giving up after 3 attempts"),
        "{err}"
    );
    assert!(
        err.message().contains("last error kind: unavailable"),
        "{err}"
    );
    let m1 = head.metrics();
    assert_eq!(m1.remote_transient_errors, 3, "{m1:?}");

    // Query 2: the breaker is Open — no new wire attempts, no new retries.
    let err = head.query(SCAN).unwrap_err();
    assert_eq!(err.kind(), "unavailable", "{err}");
    assert!(err.message().contains("circuit breaker open"), "{err}");
    let m2 = head.metrics();
    assert_eq!(
        m2.remote_transient_errors, m1.remote_transient_errors,
        "fail-fast must not touch the wire: {m2:?}"
    );
    assert!(m2.breaker_fast_fails >= 1, "{m2:?}");

    // The rejection is accounted as a CIRCUIT_OPEN wait...
    let r = head
        .query(
            "SELECT wait_type, waiting_tasks_count FROM sys.dm_os_wait_stats \
             WHERE wait_type = 'CIRCUIT_OPEN'",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert!(matches!(r.value(0, 1), Value::Int(n) if *n >= 1), "{r:?}");

    // ...and the health registry shows exactly one trip.
    let health = head.link_health();
    assert_eq!(health.len(), 4, "{health:?}");
    let sick = health.iter().find(|l| l.server == "member2").unwrap();
    assert_eq!(sick.state, BreakerState::Open, "{sick:?}");
    assert_eq!(sick.opens, 1, "{sick:?}");
    assert!(sick.consecutive_failures >= 1, "{sick:?}");
    assert!(sick.last_error.is_some(), "{sick:?}");
    for l in health.iter().filter(|l| l.server != "member2") {
        assert_eq!(l.state, BreakerState::Closed, "{l:?}");
    }
}

/// The deterministic cooldown: an Open breaker absorbs `cooldown`
/// rejected admissions, then lets one probe through; a successful probe
/// closes the breaker and the member serves traffic again.
#[test]
fn cooldown_probe_readmits_recovered_member() {
    let (clean, _links) = federation_with_faults(1, |_| None);
    let expected = multiset(&clean.query(SCAN).unwrap().rows, 3);

    // Member 2 fails exactly 3 commands (= one full retry budget), then
    // recovers: the outage is real but transient.
    let (head, _links) = federation_with_faults(1, |i| {
        (i == 1).then(|| FaultConfig {
            seed: 13,
            command_errors: 1.0,
            max_faults: 3,
            ..FaultConfig::none()
        })
    });
    head.set_degraded_mode(DegradedMode::Fail);
    head.set_retry_policy(fast_retries());
    head.set_event_config(EventConfig::all());
    let cooldown = head.breaker_config().cooldown;

    // Trip: the give-up opens the breaker.
    head.query(SCAN).unwrap_err();
    assert_eq!(
        head.link_health()
            .iter()
            .find(|l| l.server == "member2")
            .unwrap()
            .state,
        BreakerState::Open
    );

    // Cooldown: the next `cooldown` admissions are rejected outright.
    for i in 0..cooldown {
        let err = head.query(SCAN).unwrap_err();
        assert!(
            err.message().contains("circuit breaker open"),
            "query {i}: {err}"
        );
    }

    // Probe: the next admission goes through, succeeds (the fault budget
    // is spent), closes the breaker, and the full answer is back.
    let got = head.query(SCAN).unwrap();
    assert_eq!(multiset(&got.rows, 3), expected);
    let sick = head
        .link_health()
        .into_iter()
        .find(|l| l.server == "member2")
        .unwrap();
    assert_eq!(sick.state, BreakerState::Closed, "{sick:?}");
    assert_eq!(sick.opens, 1, "{sick:?}");
    assert_eq!(sick.probes, 1, "{sick:?}");

    // The whole episode is on the event bus.
    let kinds: Vec<EventKind> = head.recent_events().into_iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EventKind::BreakerOpen), "{kinds:?}");
    assert!(kinds.contains(&EventKind::BreakerClose), "{kinds:?}");
}

/// `Engine::reset_metrics` zeroes the resettable health counters (opens,
/// probes, fast-fails) but must NOT close an Open breaker: clearing stats
/// does not make a dead member healthy.
#[test]
fn reset_metrics_clears_counters_but_not_breaker_state() {
    let (head, _links) = federation_with_faults(1, |i| (i == 1).then(|| FaultConfig::dead(9)));
    head.set_degraded_mode(DegradedMode::Fail);
    head.set_retry_policy(fast_retries());
    head.query(SCAN).unwrap_err(); // trip
    head.query(SCAN).unwrap_err(); // fast-fail
    let before = head
        .link_health()
        .into_iter()
        .find(|l| l.server == "member2")
        .unwrap();
    assert_eq!(before.state, BreakerState::Open);
    assert_eq!(before.opens, 1);
    assert!(head.metrics().breaker_fast_fails >= 1);

    head.reset_metrics();

    let after = head
        .link_health()
        .into_iter()
        .find(|l| l.server == "member2")
        .unwrap();
    assert_eq!(after.opens, 0, "opens must reset: {after:?}");
    assert_eq!(after.probes, 0, "probes must reset: {after:?}");
    assert_eq!(
        after.state,
        BreakerState::Open,
        "breaker state must survive a metrics reset: {after:?}"
    );
    assert_eq!(head.metrics().breaker_fast_fails, 0);

    // And the surviving Open state still rejects without the wire.
    let err = head.query(SCAN).unwrap_err();
    assert!(err.message().contains("circuit breaker open"), "{err}");
}

/// `DHQP_BREAKER=0` semantics: with breakers disabled every query burns
/// its own full retry budget against the dead member — the pre-breaker
/// behavior, kept reachable as an escape hatch.
#[test]
fn disabled_breaker_retries_every_query() {
    let (head, _links) = federation_with_faults(1, |i| (i == 1).then(|| FaultConfig::dead(33)));
    head.set_degraded_mode(DegradedMode::Fail);
    head.set_retry_policy(fast_retries());
    head.set_breaker_config(BreakerConfig::disabled());

    for _ in 0..2 {
        let err = head.query(SCAN).unwrap_err();
        assert!(
            err.message().contains("giving up after 3 attempts"),
            "{err}"
        );
    }
    let m = head.metrics();
    assert_eq!(
        m.remote_transient_errors, 6,
        "two full retry budgets: {m:?}"
    );
    assert_eq!(m.breaker_fast_fails, 0, "{m:?}");
}

/// `sys.dm_link_health` serves one row per linked server through the
/// ordinary provider pipeline (filter pushed locally like any DMV).
#[test]
fn dm_link_health_lists_every_link() {
    let (head, _links) = federation_with_faults(1, |_| None);
    let r = head
        .query("SELECT server, state, opens, probes, last_error FROM sys.dm_link_health")
        .unwrap();
    assert_eq!(r.rows.len(), 4, "{r:?}");
    for row in &r.rows {
        assert_eq!(row.get(1), &Value::Str("closed".into()), "{row:?}");
        assert_eq!(row.get(2), &Value::Int(0), "{row:?}");
        assert_eq!(row.get(4), &Value::Null, "{row:?}");
    }

    // After a trip, the quarantined member is queryable by state.
    let (head, _links) = federation_with_faults(1, |i| (i == 1).then(|| FaultConfig::dead(2)));
    head.set_degraded_mode(DegradedMode::Fail);
    head.set_retry_policy(fast_retries());
    head.query(SCAN).unwrap_err();
    let r = head
        .query("SELECT server FROM sys.dm_link_health WHERE state = 'open'")
        .unwrap();
    assert_eq!(r.rows.len(), 1, "{r:?}");
    assert_eq!(r.value(0, 0), &Value::Str("member2".into()));
}

/// All members down in prune mode: degrading to an empty answer would be
/// lying — the query must fail, naming the quarantined members.
#[test]
fn prune_mode_with_every_member_dead_still_errors() {
    let (head, _links) = federation_with_faults(0, |_| Some(FaultConfig::dead(3)));
    head.set_retry_policy(fast_retries());
    head.set_degraded_mode(DegradedMode::Prune);
    let err = head.query(SCAN).unwrap_err();
    assert_eq!(err.kind(), "unavailable", "{err}");
    assert!(
        err.message().contains("pruned every member"),
        "all-members-pruned must not return an empty result: {err}"
    );
}
