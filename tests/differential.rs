//! Differential harness for the parameterized plan cache: the same SQL
//! corpus must return identical multisets whether plans are compiled
//! fresh or served from cache, whether every partitioned-view member is
//! local or federated over the network, whether execution is serial or
//! parallel, and whether the links are clean or injecting seeded faults.
//!
//! The corpus deliberately mixes cacheable shapes (auto-parameterizable
//! comparisons, joins, aggregates, unions) with shapes the fast path
//! declines (scalar subqueries, IN lists, string predicates), so every
//! run exercises both the cached and the classic pipeline.

use dhqp::{BatchConfig, Engine, EngineDataSource, FaultConfig, ParallelConfig, RetryPolicy};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_storage::TableDef;
use dhqp_types::{value::parse_date, Column, DataType, Interval, IntervalSet, Row, Schema, Value};
use std::sync::Arc;

/// Every SELECT replayed by each differential leg.
const CORPUS: &[&str] = &[
    // Auto-parameterizable integer comparisons.
    "SELECT id, tag FROM a_all WHERE id = 7",
    "SELECT id, tag FROM a_all WHERE id = 23",
    "SELECT id FROM a_all WHERE id > 30 AND id <= 37",
    "SELECT id, score FROM b_all WHERE score >= 25",
    "SELECT id FROM b_all WHERE id BETWEEN 5 AND 12",
    // Float literals.
    "SELECT id FROM b_all WHERE score > 10.5",
    // Arithmetic and modulo over parameterized literals.
    "SELECT id, id * 2 + 1 AS odd FROM a_all WHERE id % 4 = 0",
    "SELECT id FROM b_all WHERE score - 3 < 20 AND score / 2 > 4",
    // String predicates stay literal (never parameterized).
    "SELECT id FROM a_all WHERE tag = 'red'",
    "SELECT id, tag FROM a_all WHERE tag LIKE 'b%'",
    // Date-string coercion against a DATE column.
    "SELECT id FROM ev_all WHERE day >= '2004-06-01'",
    "SELECT id FROM ev_all WHERE day BETWEEN '2004-01-01' AND '2004-06-30'",
    // NULL semantics.
    "SELECT id FROM a_all WHERE tag IS NULL",
    "SELECT id FROM b_all WHERE score IS NOT NULL AND score < 15",
    // IN lists (declined by the fingerprinter's NoParam zone).
    "SELECT id FROM a_all WHERE id IN (1, 2, 3, 33)",
    "SELECT id FROM a_all WHERE tag IN ('green', 'blue') AND id < 20",
    // Joins, inner and outer.
    "SELECT a_all.id, b_all.score FROM a_all JOIN b_all ON a_all.id = b_all.id \
     WHERE b_all.score > 12",
    "SELECT a_all.id, b_all.score FROM a_all LEFT JOIN b_all ON a_all.id = b_all.id \
     WHERE a_all.id <= 10",
    // Aggregates, GROUP BY, HAVING.
    "SELECT COUNT(*) AS n FROM a_all WHERE id >= 15",
    "SELECT tag, COUNT(*) AS n, MAX(id) AS hi FROM a_all GROUP BY tag",
    "SELECT tag, SUM(id) AS s FROM a_all WHERE id > 4 GROUP BY tag HAVING SUM(id) > 50",
    "SELECT COUNT(DISTINCT tag) AS tags FROM a_all",
    // DISTINCT / TOP / ORDER BY.
    "SELECT DISTINCT tag FROM a_all WHERE id < 30",
    "SELECT TOP 5 id, score FROM b_all ORDER BY score DESC, id",
    // Scalar functions.
    "SELECT id, UPPER(tag) AS t FROM a_all WHERE id = 3",
    "SELECT id, ABS(score - 40) AS d FROM b_all WHERE id < 6",
    // UNION / UNION ALL.
    "SELECT id FROM a_all WHERE id < 4 UNION SELECT id FROM b_all WHERE id < 4",
    "SELECT id FROM a_all WHERE id = 5 UNION ALL SELECT id FROM b_all WHERE id = 5",
    // Subqueries: EXISTS caches, scalar subqueries fall through.
    "SELECT id FROM a_all WHERE EXISTS (SELECT 1 FROM b_all WHERE b_all.id = a_all.id \
     AND b_all.score > 30)",
    "SELECT id FROM b_all WHERE score > (SELECT MIN(score) FROM b_all) AND id < 10",
    // CAST.
    "SELECT CAST(id AS FLOAT) AS f FROM a_all WHERE id = 11",
];

/// Deterministic seed rows shared by every engine variant.
fn a_rows() -> Vec<Row> {
    (1..=40)
        .map(|id| {
            let tag = match id % 4 {
                0 => Value::Null,
                1 => Value::Str("red".into()),
                2 => Value::Str("green".into()),
                _ => Value::Str("blue".into()),
            };
            Row::new(vec![Value::Int(id), tag])
        })
        .collect()
}

fn b_rows() -> Vec<Row> {
    (1..=30)
        .map(|id| {
            let score = if id % 7 == 0 {
                Value::Null
            } else {
                Value::Int((id * 13) % 47)
            };
            Row::new(vec![Value::Int(id), score])
        })
        .collect()
}

fn ev_rows() -> Vec<Row> {
    [
        (1, "2004-01-15"),
        (2, "2004-03-02"),
        (3, "2004-06-15"),
        (4, "2004-09-09"),
        (5, "2004-12-15"),
    ]
    .iter()
    .map(|(id, day)| Row::new(vec![Value::Int(*id), Value::Date(parse_date(day).unwrap())]))
    .collect()
}

fn table_def(name: &str, value_col: Column) -> TableDef {
    TableDef::new(
        name,
        Schema::new(vec![Column::not_null("id", DataType::Int), value_col]),
    )
}

/// Split `rows` into a `<cut` member and a `>=cut` member on `id`, loading
/// each half into the matching storage engine.
fn load_split(
    engines: [&dhqp_storage::StorageEngine; 2],
    base: &str,
    value_col: Column,
    rows: Vec<Row>,
    cut: i64,
) -> Vec<(String, IntervalSet)> {
    let (lo, hi): (Vec<Row>, Vec<Row>) = rows
        .into_iter()
        .partition(|r| matches!(r.get(0), Value::Int(v) if *v < cut));
    let halves = [
        (
            lo,
            IntervalSet::single(Interval::less_than(Value::Int(cut))),
        ),
        (hi, IntervalSet::single(Interval::at_least(Value::Int(cut)))),
    ];
    let mut members = Vec::new();
    for (i, ((rows, domain), engine)) in halves.into_iter().zip(engines).enumerate() {
        let table = format!("{base}_p{i}");
        engine
            .create_table(table_def(&table, value_col.clone()))
            .unwrap();
        engine.insert_rows(&table, &rows).unwrap();
        engine.analyze(&table, 8).unwrap();
        members.push((table, domain));
    }
    members
}

/// All three views with every member table in the head engine itself.
fn local_engine() -> Engine {
    let head = Engine::new("head-local");
    for (base, value_col, rows, cut) in datasets() {
        let members = load_split(
            [head.storage().as_ref(), head.storage().as_ref()],
            base,
            value_col,
            rows,
            cut,
        );
        head.define_partitioned_view(
            &format!("{base}_all"),
            "id",
            members.into_iter().map(|(t, d)| (None, t, d)).collect(),
        )
        .unwrap();
    }
    head
}

fn datasets() -> Vec<(&'static str, Column, Vec<Row>, i64)> {
    vec![
        ("a", Column::new("tag", DataType::Str), a_rows(), 21),
        ("b", Column::new("score", DataType::Int), b_rows(), 16),
        ("ev", Column::new("day", DataType::Date), ev_rows(), 3),
    ]
}

/// All three views federated: the low half of every table on `member1`,
/// the high half on `member2`, both behind LAN links. `faults` arms each
/// link with a seeded chaos plan (the engine's standard retry policy must
/// absorb it without changing answers).
fn distributed_engine(faults: Option<u64>) -> Engine {
    let head = Engine::new("head-dist");
    let m1 = Engine::new("member1-engine");
    let m2 = Engine::new("member2-engine");
    for (i, m) in [&m1, &m2].iter().enumerate() {
        let link = NetworkLink::new(format!("member{}", i + 1), NetworkConfig::lan());
        let inner: Arc<dyn dhqp_oledb::DataSource> = Arc::new(EngineDataSource::new((*m).clone()));
        let wrapped = match faults {
            Some(seed) => NetworkedDataSource::with_faults(
                inner,
                link,
                FaultConfig::one_transient_per_link(seed),
            ),
            None => NetworkedDataSource::new(inner, link),
        };
        head.add_linked_server(&format!("member{}", i + 1), Arc::new(wrapped))
            .unwrap();
    }
    if faults.is_some() {
        head.set_retry_policy(RetryPolicy::standard());
    }
    for (base, value_col, rows, cut) in datasets() {
        let members = load_split(
            [m1.storage().as_ref(), m2.storage().as_ref()],
            base,
            value_col,
            rows,
            cut,
        );
        head.define_partitioned_view(
            &format!("{base}_all"),
            "id",
            members
                .into_iter()
                .enumerate()
                .map(|(i, (t, d))| (Some(format!("member{}", i + 1)), t, d))
                .collect(),
        )
        .unwrap();
    }
    head
}

/// One corpus statement's outcome: a sorted stringified multiset of rows,
/// or the error text. Errors participate in the diff too — both sides must
/// fail the same statements.
fn outcome(engine: &Engine, sql: &str) -> std::result::Result<Vec<String>, String> {
    match engine.execute(sql) {
        Ok(r) => {
            let mut rows: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
            rows.sort();
            Ok(rows)
        }
        Err(e) => Err(e.to_string()),
    }
}

fn run_corpus(engine: &Engine) -> Vec<(String, std::result::Result<Vec<String>, String>)> {
    CORPUS
        .iter()
        .map(|sql| (sql.to_string(), outcome(engine, sql)))
        .collect()
}

fn assert_same(
    label_a: &str,
    a: &[(String, std::result::Result<Vec<String>, String>)],
    label_b: &str,
    b: &[(String, std::result::Result<Vec<String>, String>)],
) {
    for ((sql, ra), (_, rb)) in a.iter().zip(b) {
        assert_eq!(ra, rb, "{label_a} vs {label_b} diverged on: {sql}");
    }
}

#[test]
fn all_local_matches_distributed() {
    let local = local_engine();
    let dist = distributed_engine(None);
    let a = run_corpus(&local);
    let b = run_corpus(&dist);
    assert_same("all-local", &a, "distributed", &b);
    // Sanity: the corpus must actually return data, not 30 empty sets.
    let non_empty = a
        .iter()
        .filter(|(_, r)| matches!(r, Ok(v) if !v.is_empty()))
        .count();
    assert!(
        non_empty >= 20,
        "corpus too degenerate: {non_empty} non-empty"
    );
}

#[test]
fn cold_cache_matches_warm_cache() {
    let dist = distributed_engine(None);
    // This test is about the cache: force it on even under a
    // DHQP_PLAN_CACHE=0 suite leg.
    dist.set_plan_cache_enabled(true);
    let cold = run_corpus(&dist);
    let warm = run_corpus(&dist);
    assert_same("cold-cache", &cold, "warm-cache", &warm);
    let m = dist.metrics();
    assert!(
        m.plan_cache_hits > 0,
        "warm pass must serve cached plans: {m:?}"
    );
    assert!(m.plan_cache_misses > 0, "cold pass must compile: {m:?}");
}

#[test]
fn cache_disabled_matches_cache_enabled() {
    let on = distributed_engine(None);
    on.set_plan_cache_enabled(true);
    let off = distributed_engine(None);
    off.set_plan_cache_enabled(false);
    // Warm the enabled engine so its second pass is fully cache-served.
    run_corpus(&on);
    let a = run_corpus(&on);
    let b = run_corpus(&off);
    assert_same("cache-on(warm)", &a, "cache-off", &b);
    assert_eq!(off.metrics().plan_cache_hits, 0);
    assert_eq!(off.metrics().plan_cache_misses, 0);
}

#[test]
fn parallel_execution_matches_serial() {
    let serial = distributed_engine(None);
    let par = distributed_engine(None);
    par.set_parallel_config(ParallelConfig::parallel());
    // Replay twice on the parallel engine so cached plans execute under
    // parallel dispatch too.
    run_corpus(&par);
    let a = run_corpus(&serial);
    let b = run_corpus(&par);
    assert_same("serial", &a, "parallel", &b);
}

#[test]
fn faulted_links_with_retry_match_clean_links() {
    let clean = distributed_engine(None);
    let flaky = distributed_engine(Some(1));
    run_corpus(&flaky); // cold pass: compile under injected faults
    let a = run_corpus(&clean);
    let b = run_corpus(&flaky); // warm pass: cached plans under faults
    assert_same("clean-links", &a, "faulted-links", &b);
    let m = flaky.metrics();
    assert!(
        m.remote_retries > 0,
        "fault plan never fired — test is vacuous: {m:?}"
    );
}

#[test]
fn batched_shipping_matches_row_at_a_time() {
    let row = distributed_engine(None);
    row.set_batch_config(BatchConfig::row_at_a_time());
    let batch = distributed_engine(None);
    batch.set_batch_config(BatchConfig::batched(7));
    // Replay twice on the batched engine so cached plans execute under
    // batched dispatch too.
    run_corpus(&batch);
    let a = run_corpus(&row);
    let b = run_corpus(&batch);
    assert_same("row-at-a-time", &a, "batched", &b);
}

#[test]
fn batched_parallel_faulted_matches_serial_row_clean() {
    // The full chaos stack: batching, exchanges, prefetch, and seeded link
    // faults on one side; the plain serial row pipeline on the other.
    let plain = distributed_engine(None);
    plain.set_batch_config(BatchConfig::row_at_a_time());
    let chaos = distributed_engine(Some(3));
    chaos.set_batch_config(BatchConfig::batched(5));
    chaos.set_parallel_config(ParallelConfig::parallel());
    run_corpus(&chaos); // cold pass: compile under faults
    let a = run_corpus(&plain);
    let b = run_corpus(&chaos);
    assert_same("serial-row-clean", &a, "batched-parallel-faulted", &b);
    let m = chaos.metrics();
    assert!(
        m.remote_retries > 0,
        "fault plan never fired - test is vacuous: {m:?}"
    );
}
