//! Differential harness for the parameterized plan cache: the same SQL
//! corpus must return identical multisets whether plans are compiled
//! fresh or served from cache, whether every partitioned-view member is
//! local or federated over the network, whether execution is serial or
//! parallel, and whether the links are clean or injecting seeded faults.
//!
//! The corpus deliberately mixes cacheable shapes (auto-parameterizable
//! comparisons, joins, aggregates, unions) with shapes the fast path
//! declines (scalar subqueries, IN lists, string predicates), so every
//! run exercises both the cached and the classic pipeline.

use dhqp::{BatchConfig, Engine, EngineDataSource, FaultConfig, ParallelConfig, RetryPolicy};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_storage::TableDef;
use dhqp_types::{value::parse_date, Column, DataType, Interval, IntervalSet, Row, Schema, Value};
use std::sync::Arc;

/// Every SELECT replayed by each differential leg.
const CORPUS: &[&str] = &[
    // Auto-parameterizable integer comparisons.
    "SELECT id, tag FROM a_all WHERE id = 7",
    "SELECT id, tag FROM a_all WHERE id = 23",
    "SELECT id FROM a_all WHERE id > 30 AND id <= 37",
    "SELECT id, score FROM b_all WHERE score >= 25",
    "SELECT id FROM b_all WHERE id BETWEEN 5 AND 12",
    // Float literals.
    "SELECT id FROM b_all WHERE score > 10.5",
    // Arithmetic and modulo over parameterized literals.
    "SELECT id, id * 2 + 1 AS odd FROM a_all WHERE id % 4 = 0",
    "SELECT id FROM b_all WHERE score - 3 < 20 AND score / 2 > 4",
    // String predicates stay literal (never parameterized).
    "SELECT id FROM a_all WHERE tag = 'red'",
    "SELECT id, tag FROM a_all WHERE tag LIKE 'b%'",
    // Date-string coercion against a DATE column.
    "SELECT id FROM ev_all WHERE day >= '2004-06-01'",
    "SELECT id FROM ev_all WHERE day BETWEEN '2004-01-01' AND '2004-06-30'",
    // NULL semantics.
    "SELECT id FROM a_all WHERE tag IS NULL",
    "SELECT id FROM b_all WHERE score IS NOT NULL AND score < 15",
    // IN lists (declined by the fingerprinter's NoParam zone).
    "SELECT id FROM a_all WHERE id IN (1, 2, 3, 33)",
    "SELECT id FROM a_all WHERE tag IN ('green', 'blue') AND id < 20",
    // Joins, inner and outer.
    "SELECT a_all.id, b_all.score FROM a_all JOIN b_all ON a_all.id = b_all.id \
     WHERE b_all.score > 12",
    "SELECT a_all.id, b_all.score FROM a_all LEFT JOIN b_all ON a_all.id = b_all.id \
     WHERE a_all.id <= 10",
    // Aggregates, GROUP BY, HAVING.
    "SELECT COUNT(*) AS n FROM a_all WHERE id >= 15",
    "SELECT tag, COUNT(*) AS n, MAX(id) AS hi FROM a_all GROUP BY tag",
    "SELECT tag, SUM(id) AS s FROM a_all WHERE id > 4 GROUP BY tag HAVING SUM(id) > 50",
    "SELECT COUNT(DISTINCT tag) AS tags FROM a_all",
    // DISTINCT / TOP / ORDER BY.
    "SELECT DISTINCT tag FROM a_all WHERE id < 30",
    "SELECT TOP 5 id, score FROM b_all ORDER BY score DESC, id",
    // Scalar functions.
    "SELECT id, UPPER(tag) AS t FROM a_all WHERE id = 3",
    "SELECT id, ABS(score - 40) AS d FROM b_all WHERE id < 6",
    // UNION / UNION ALL.
    "SELECT id FROM a_all WHERE id < 4 UNION SELECT id FROM b_all WHERE id < 4",
    "SELECT id FROM a_all WHERE id = 5 UNION ALL SELECT id FROM b_all WHERE id = 5",
    // Subqueries: EXISTS caches, scalar subqueries fall through.
    "SELECT id FROM a_all WHERE EXISTS (SELECT 1 FROM b_all WHERE b_all.id = a_all.id \
     AND b_all.score > 30)",
    "SELECT id FROM b_all WHERE score > (SELECT MIN(score) FROM b_all) AND id < 10",
    // CAST.
    "SELECT CAST(id AS FLOAT) AS f FROM a_all WHERE id = 11",
];

/// Deterministic seed rows shared by every engine variant.
fn a_rows() -> Vec<Row> {
    (1..=40)
        .map(|id| {
            let tag = match id % 4 {
                0 => Value::Null,
                1 => Value::Str("red".into()),
                2 => Value::Str("green".into()),
                _ => Value::Str("blue".into()),
            };
            Row::new(vec![Value::Int(id), tag])
        })
        .collect()
}

fn b_rows() -> Vec<Row> {
    (1..=30)
        .map(|id| {
            let score = if id % 7 == 0 {
                Value::Null
            } else {
                Value::Int((id * 13) % 47)
            };
            Row::new(vec![Value::Int(id), score])
        })
        .collect()
}

fn ev_rows() -> Vec<Row> {
    [
        (1, "2004-01-15"),
        (2, "2004-03-02"),
        (3, "2004-06-15"),
        (4, "2004-09-09"),
        (5, "2004-12-15"),
    ]
    .iter()
    .map(|(id, day)| Row::new(vec![Value::Int(*id), Value::Date(parse_date(day).unwrap())]))
    .collect()
}

fn table_def(name: &str, value_col: Column) -> TableDef {
    TableDef::new(
        name,
        Schema::new(vec![Column::not_null("id", DataType::Int), value_col]),
    )
}

/// Split `rows` into a `<cut` member and a `>=cut` member on `id`, loading
/// each half into the matching storage engine.
fn load_split(
    engines: [&dhqp_storage::StorageEngine; 2],
    base: &str,
    value_col: Column,
    rows: Vec<Row>,
    cut: i64,
) -> Vec<(String, IntervalSet)> {
    let (lo, hi): (Vec<Row>, Vec<Row>) = rows
        .into_iter()
        .partition(|r| matches!(r.get(0), Value::Int(v) if *v < cut));
    let halves = [
        (
            lo,
            IntervalSet::single(Interval::less_than(Value::Int(cut))),
        ),
        (hi, IntervalSet::single(Interval::at_least(Value::Int(cut)))),
    ];
    let mut members = Vec::new();
    for (i, ((rows, domain), engine)) in halves.into_iter().zip(engines).enumerate() {
        let table = format!("{base}_p{i}");
        engine
            .create_table(table_def(&table, value_col.clone()))
            .unwrap();
        engine.insert_rows(&table, &rows).unwrap();
        engine.analyze(&table, 8).unwrap();
        members.push((table, domain));
    }
    members
}

/// All three views with every member table in the head engine itself.
fn local_engine() -> Engine {
    let head = Engine::new("head-local");
    for (base, value_col, rows, cut) in datasets() {
        let members = load_split(
            [head.storage().as_ref(), head.storage().as_ref()],
            base,
            value_col,
            rows,
            cut,
        );
        head.define_partitioned_view(
            &format!("{base}_all"),
            "id",
            members.into_iter().map(|(t, d)| (None, t, d)).collect(),
        )
        .unwrap();
    }
    head
}

fn datasets() -> Vec<(&'static str, Column, Vec<Row>, i64)> {
    vec![
        ("a", Column::new("tag", DataType::Str), a_rows(), 21),
        ("b", Column::new("score", DataType::Int), b_rows(), 16),
        ("ev", Column::new("day", DataType::Date), ev_rows(), 3),
    ]
}

/// All three views federated: the low half of every table on `member1`,
/// the high half on `member2`, both behind LAN links. `faults` arms each
/// link with a seeded chaos plan (the engine's standard retry policy must
/// absorb it without changing answers).
fn distributed_engine(faults: Option<u64>) -> Engine {
    distributed_engine_full(faults).0
}

/// Like [`distributed_engine`], but also hands back the member engines and
/// cloned link handles so tests can seed member-resident tables and read
/// per-link traffic counters.
fn distributed_engine_full(faults: Option<u64>) -> (Engine, Vec<Engine>, Vec<NetworkLink>) {
    let head = Engine::new("head-dist");
    let m1 = Engine::new("member1-engine");
    let m2 = Engine::new("member2-engine");
    let mut links = Vec::new();
    for (i, m) in [&m1, &m2].iter().enumerate() {
        let link = NetworkLink::new(format!("member{}", i + 1), NetworkConfig::lan());
        links.push(link.clone());
        let inner: Arc<dyn dhqp_oledb::DataSource> = Arc::new(EngineDataSource::new((*m).clone()));
        let wrapped = match faults {
            Some(seed) => NetworkedDataSource::with_faults(
                inner,
                link,
                FaultConfig::one_transient_per_link(seed),
            ),
            None => NetworkedDataSource::new(inner, link),
        };
        head.add_linked_server(&format!("member{}", i + 1), Arc::new(wrapped))
            .unwrap();
    }
    if faults.is_some() {
        head.set_retry_policy(RetryPolicy::standard());
    }
    for (base, value_col, rows, cut) in datasets() {
        let members = load_split(
            [m1.storage().as_ref(), m2.storage().as_ref()],
            base,
            value_col,
            rows,
            cut,
        );
        head.define_partitioned_view(
            &format!("{base}_all"),
            "id",
            members
                .into_iter()
                .enumerate()
                .map(|(i, (t, d))| (Some(format!("member{}", i + 1)), t, d))
                .collect(),
        )
        .unwrap();
    }
    (head, vec![m1, m2], links)
}

/// One corpus statement's outcome: a sorted stringified multiset of rows,
/// or the error text. Errors participate in the diff too — both sides must
/// fail the same statements.
fn outcome(engine: &Engine, sql: &str) -> std::result::Result<Vec<String>, String> {
    match engine.execute(sql) {
        Ok(r) => {
            let mut rows: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
            rows.sort();
            Ok(rows)
        }
        Err(e) => Err(e.to_string()),
    }
}

fn run_corpus(engine: &Engine) -> Vec<(String, std::result::Result<Vec<String>, String>)> {
    CORPUS
        .iter()
        .map(|sql| (sql.to_string(), outcome(engine, sql)))
        .collect()
}

fn assert_same(
    label_a: &str,
    a: &[(String, std::result::Result<Vec<String>, String>)],
    label_b: &str,
    b: &[(String, std::result::Result<Vec<String>, String>)],
) {
    for ((sql, ra), (_, rb)) in a.iter().zip(b) {
        assert_eq!(ra, rb, "{label_a} vs {label_b} diverged on: {sql}");
    }
}

#[test]
fn all_local_matches_distributed() {
    let local = local_engine();
    let dist = distributed_engine(None);
    let a = run_corpus(&local);
    let b = run_corpus(&dist);
    assert_same("all-local", &a, "distributed", &b);
    // Sanity: the corpus must actually return data, not 30 empty sets.
    let non_empty = a
        .iter()
        .filter(|(_, r)| matches!(r, Ok(v) if !v.is_empty()))
        .count();
    assert!(
        non_empty >= 20,
        "corpus too degenerate: {non_empty} non-empty"
    );
}

#[test]
fn cold_cache_matches_warm_cache() {
    let dist = distributed_engine(None);
    // This test is about the cache: force it on even under a
    // DHQP_PLAN_CACHE=0 suite leg.
    dist.set_plan_cache_enabled(true);
    let cold = run_corpus(&dist);
    let warm = run_corpus(&dist);
    assert_same("cold-cache", &cold, "warm-cache", &warm);
    let m = dist.metrics();
    assert!(
        m.plan_cache_hits > 0,
        "warm pass must serve cached plans: {m:?}"
    );
    assert!(m.plan_cache_misses > 0, "cold pass must compile: {m:?}");
}

#[test]
fn cache_disabled_matches_cache_enabled() {
    let on = distributed_engine(None);
    on.set_plan_cache_enabled(true);
    let off = distributed_engine(None);
    off.set_plan_cache_enabled(false);
    // Warm the enabled engine so its second pass is fully cache-served.
    run_corpus(&on);
    let a = run_corpus(&on);
    let b = run_corpus(&off);
    assert_same("cache-on(warm)", &a, "cache-off", &b);
    assert_eq!(off.metrics().plan_cache_hits, 0);
    assert_eq!(off.metrics().plan_cache_misses, 0);
}

#[test]
fn parallel_execution_matches_serial() {
    let serial = distributed_engine(None);
    let par = distributed_engine(None);
    par.set_parallel_config(ParallelConfig::parallel());
    // Replay twice on the parallel engine so cached plans execute under
    // parallel dispatch too.
    run_corpus(&par);
    let a = run_corpus(&serial);
    let b = run_corpus(&par);
    assert_same("serial", &a, "parallel", &b);
}

#[test]
fn faulted_links_with_retry_match_clean_links() {
    let clean = distributed_engine(None);
    let flaky = distributed_engine(Some(1));
    run_corpus(&flaky); // cold pass: compile under injected faults
    let a = run_corpus(&clean);
    let b = run_corpus(&flaky); // warm pass: cached plans under faults
    assert_same("clean-links", &a, "faulted-links", &b);
    let m = flaky.metrics();
    assert!(
        m.remote_retries > 0,
        "fault plan never fired — test is vacuous: {m:?}"
    );
}

#[test]
fn batched_shipping_matches_row_at_a_time() {
    let row = distributed_engine(None);
    row.set_batch_config(BatchConfig::row_at_a_time());
    let batch = distributed_engine(None);
    batch.set_batch_config(BatchConfig::batched(7));
    // Replay twice on the batched engine so cached plans execute under
    // batched dispatch too.
    run_corpus(&batch);
    let a = run_corpus(&row);
    let b = run_corpus(&batch);
    assert_same("row-at-a-time", &a, "batched", &b);
}

// ---------------------------------------------------------------------------
// semi-join reduction and runtime startup pruning axes
// ---------------------------------------------------------------------------

/// Joins whose probe side lives wholly on `member1` — the shape the
/// semi-join reduction rule rewrites into a key-ship + reduced fetch.
const SEMIJOIN_CORPUS: &[&str] = &[
    "SELECT d.id, f.val FROM dim d JOIN member1.db.dbo.fact f ON d.id = f.id",
    "SELECT d.id, d.tag, f.val FROM dim d JOIN member1.db.dbo.fact f ON d.id = f.id \
     WHERE d.id <= 3",
    "SELECT d.id FROM dim d WHERE EXISTS \
     (SELECT * FROM member1.db.dbo.fact f WHERE f.id = d.id)",
    "SELECT COUNT(*) AS n FROM dim d JOIN member1.db.dbo.fact f ON d.id = f.id",
];

/// Seed a small local `dim` in the head and a wide, wholly-remote `fact`
/// on `member1`: 6 build keys against 40 distinct probe keys over 240
/// rows, so the reduced fetch returns ~15% of the unreduced bytes.
fn add_semijoin_tables(head: &Engine, m1: &Engine) {
    head.storage()
        .create_table(table_def("dim", Column::new("tag", DataType::Str)))
        .unwrap();
    let dim_rows: Vec<Row> = (1..=6)
        .map(|id| Row::new(vec![Value::Int(id), Value::Str(format!("d{id}"))]))
        .collect();
    head.storage().insert_rows("dim", &dim_rows).unwrap();
    head.storage().analyze("dim", 8).unwrap();

    m1.storage()
        .create_table(table_def("fact", Column::new("val", DataType::Str)))
        .unwrap();
    let fact_rows: Vec<Row> = (0..240)
        .map(|i| {
            Row::new(vec![
                Value::Int((i % 40) + 1),
                Value::Str(format!("payload-{i:04}-{}", "x".repeat(96))),
            ])
        })
        .collect();
    m1.storage().insert_rows("fact", &fact_rows).unwrap();
    m1.storage().analyze("fact", 8).unwrap();
}

/// A distributed engine with the semi-join fixture loaded and the
/// reduction rule forced on or off (independent of `DHQP_SEMIJOIN`).
fn semijoin_engine(faults: Option<u64>, enabled: bool) -> (Engine, Vec<NetworkLink>) {
    let (head, members, links) = distributed_engine_full(faults);
    add_semijoin_tables(&head, &members[0]);
    let mut config = head.optimizer_config();
    config.enable_semijoin = enabled;
    head.set_optimizer_config(config);
    (head, links)
}

/// Tentpole axis: reduced and unreduced plans must return identical
/// multisets, and the reduction must move strictly fewer bytes over the
/// probe-side link.
#[test]
fn semijoin_reduction_matches_unreduced_and_ships_fewer_bytes() {
    let (on, links_on) = semijoin_engine(None, true);
    let (off, links_off) = semijoin_engine(None, false);
    let a: Vec<_> = SEMIJOIN_CORPUS
        .iter()
        .map(|sql| (sql.to_string(), outcome(&on, sql)))
        .collect();
    let b: Vec<_> = SEMIJOIN_CORPUS
        .iter()
        .map(|sql| (sql.to_string(), outcome(&off, sql)))
        .collect();
    assert_same("semijoin-on", &a, "semijoin-off", &b);
    assert!(
        a.iter()
            .all(|(_, r)| matches!(r, Ok(rows) if !rows.is_empty())),
        "semi-join corpus must return data: {a:?}"
    );
    let m = on.metrics();
    assert!(
        m.semijoin_reductions > 0,
        "the reduction never fired — axis is vacuous: {m:?}"
    );
    assert!(m.semijoin_filter_bytes > 0, "{m:?}");
    assert_eq!(off.metrics().semijoin_reductions, 0);

    // Byte differential on the warmed engines: one reduced join vs its
    // unreduced twin, measured at the member1 link.
    for l in links_on.iter().chain(&links_off) {
        l.reset();
    }
    on.query(SEMIJOIN_CORPUS[0]).unwrap();
    off.query(SEMIJOIN_CORPUS[0]).unwrap();
    let reduced = links_on[0].snapshot();
    let unreduced = links_off[0].snapshot();
    assert!(
        reduced.bytes < unreduced.bytes,
        "reduction must ship strictly fewer bytes: reduced={} unreduced={}",
        reduced.bytes,
        unreduced.bytes
    );
    assert!(
        reduced.rows < unreduced.rows,
        "reduction must ship strictly fewer rows: reduced={} unreduced={}",
        reduced.rows,
        unreduced.rows
    );
}

/// Runtime startup pruning axis: eagerly skipping non-qualifying members
/// at drive time must be invisible in results — the lazy startup filters
/// it replaces already contributed nothing.
#[test]
fn runtime_pruning_matches_lazy_startup_filters() {
    let eager = distributed_engine(None);
    eager.set_runtime_prune(true);
    eager.set_plan_cache_enabled(true);
    let lazy = distributed_engine(None);
    lazy.set_runtime_prune(false);
    lazy.set_plan_cache_enabled(true);
    // Warm both so the corpus replays cached parameterized plans — the
    // shape that carries startup filters instead of compile-time pruning.
    run_corpus(&eager);
    run_corpus(&lazy);
    let a = run_corpus(&eager);
    let b = run_corpus(&lazy);
    assert_same("eager-startup-prune", &a, "lazy-startup-filters", &b);
    let m = eager.metrics();
    assert!(
        m.startup_members_skipped > 0,
        "runtime pruning never fired — axis is vacuous: {m:?}"
    );
    assert_eq!(
        lazy.metrics().startup_members_skipped,
        0,
        "the knob must gate the skip"
    );
}

/// The expanded chaos stack: semi-join reduction, runtime pruning,
/// parallel dispatch, batched shipping and seeded link faults together
/// against the plain serial unreduced pipeline.
#[test]
fn semijoin_prune_chaos_stack_matches_plain() {
    let (plain, _) = semijoin_engine(None, false);
    plain.set_runtime_prune(false);
    plain.set_batch_config(BatchConfig::row_at_a_time());
    let (chaos, _) = semijoin_engine(Some(5), true);
    chaos.set_runtime_prune(true);
    chaos.set_batch_config(BatchConfig::batched(3));
    chaos.set_parallel_config(ParallelConfig::parallel());
    let corpus: Vec<&str> = CORPUS.iter().chain(SEMIJOIN_CORPUS).copied().collect();
    let run = |e: &Engine| -> Vec<_> {
        corpus
            .iter()
            .map(|sql| (sql.to_string(), outcome(e, sql)))
            .collect()
    };
    run(&chaos); // cold pass: compile (and fault) under the full stack
    let a = run(&plain);
    let b = run(&chaos);
    assert_same("plain-serial-unreduced", &a, "semijoin-prune-chaos", &b);
    let m = chaos.metrics();
    assert!(
        m.remote_retries > 0,
        "fault plan never fired — test is vacuous: {m:?}"
    );
    assert!(
        m.semijoin_reductions > 0,
        "the reduction never fired under chaos: {m:?}"
    );
}

#[test]
fn batched_parallel_faulted_matches_serial_row_clean() {
    // The full chaos stack: batching, exchanges, prefetch, and seeded link
    // faults on one side; the plain serial row pipeline on the other.
    let plain = distributed_engine(None);
    plain.set_batch_config(BatchConfig::row_at_a_time());
    let chaos = distributed_engine(Some(3));
    chaos.set_batch_config(BatchConfig::batched(5));
    chaos.set_parallel_config(ParallelConfig::parallel());
    run_corpus(&chaos); // cold pass: compile under faults
    let a = run_corpus(&plain);
    let b = run_corpus(&chaos);
    assert_same("serial-row-clean", &a, "batched-parallel-faulted", &b);
    let m = chaos.metrics();
    assert!(
        m.remote_retries > 0,
        "fault plan never fired - test is vacuous: {m:?}"
    );
}
