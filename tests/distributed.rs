//! Distributed query integration tests: linked servers, four-part names,
//! remote pushdown, the Figure 4 plan choice, parameterized remote access
//! and spools.

use dhqp::{Engine, EngineDataSource};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_optimizer::OptimizerConfig;
use dhqp_types::Value;
use dhqp_workload::tpch::{self, TpchScale};
use std::sync::Arc;

/// Local engine + one remote engine ("remote0") holding customer/supplier,
/// with nation local — the paper's Example 1 layout.
fn example1_setup(scale: TpchScale) -> (Engine, NetworkLink) {
    let remote = Engine::new("remote0-engine");
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        tpch::create_customer(remote.storage(), &scale, &mut rng).unwrap();
        tpch::create_supplier(remote.storage(), &scale, &mut rng).unwrap();
        remote.storage().analyze("customer", 24).unwrap();
        remote.storage().analyze("supplier", 24).unwrap();
    }
    let local = Engine::new("local");
    tpch::create_nation(local.storage(), &scale).unwrap();
    local.analyze("nation", 8).unwrap();
    let link = NetworkLink::new("link-remote0", NetworkConfig::lan());
    let networked = NetworkedDataSource::new(Arc::new(EngineDataSource::new(remote)), link.clone());
    local
        .add_linked_server("remote0", Arc::new(networked))
        .unwrap();
    (local, link)
}

const EXAMPLE1: &str = "SELECT c.c_name, c.c_address, c.c_phone \
     FROM remote0.tpch.dbo.customer c, remote0.tpch.dbo.supplier s, nation n \
     WHERE c.c_nationkey = n.n_nationkey AND n.n_nationkey = s.s_nationkey";

/// Run a query once so remote metadata/histogram fetches are cached and do
/// not pollute per-query traffic measurements.
fn warm(engine: &Engine, sql: &str) {
    engine.query(sql).unwrap();
}

#[test]
fn four_part_names_reach_linked_servers() {
    let (local, link) = example1_setup(TpchScale::tiny());
    let before = link.snapshot();
    let r = local
        .query("SELECT COUNT(*) AS n FROM remote0.tpch.dbo.customer")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(60)));
    let delta = link.snapshot().since(&before);
    assert!(delta.requests > 0, "query must cross the link");
}

#[test]
fn remote_filter_is_pushed_as_sql() {
    let (local, link) = example1_setup(TpchScale::tiny());
    let plan = local
        .explain("SELECT c_name FROM remote0.tpch.dbo.customer WHERE c_custkey < 5")
        .unwrap();
    assert!(
        plan.plan_text.contains("RemoteQuery"),
        "filter+projection should ship as one statement:\n{}",
        plan.plan_text
    );
    assert!(plan.plan_text.contains("WHERE"), "{}", plan.plan_text);
    // Execution ships only the matching rows.
    warm(
        &local,
        "SELECT c_name FROM remote0.tpch.dbo.customer WHERE c_custkey < 5",
    );
    link.reset();
    let r = local
        .query("SELECT c_name FROM remote0.tpch.dbo.customer WHERE c_custkey < 5")
        .unwrap();
    assert_eq!(r.len(), 5);
    let traffic = link.snapshot();
    assert!(
        traffic.rows <= 6,
        "pushdown should ship ~5 rows, shipped {}",
        traffic.rows
    );
}

#[test]
fn figure4_optimizer_chooses_plan_b() {
    // Figure 4: joining supplier⋈nation first avoids shipping the large
    // customer⋈supplier intermediate result.
    let (local, _link) = example1_setup(TpchScale::small());
    let plan = local.explain(EXAMPLE1).unwrap();
    // Plan (b)'s signature: no remote statement containing a JOIN of
    // customer and supplier; both tables arrive separately.
    let pushed_join = plan.plan_text.contains("INNER JOIN [supplier]")
        || plan.plan_text.contains("INNER JOIN [customer]");
    assert!(
        !pushed_join,
        "optimizer must not push customer⋈supplier (plan a):\n{}",
        plan.plan_text
    );
    // Both remote tables are still accessed remotely.
    assert!(plan.plan_text.contains("customer"), "{}", plan.plan_text);
    assert!(plan.plan_text.contains("supplier"), "{}", plan.plan_text);
}

#[test]
fn figure4_forced_plan_a_ships_more() {
    // Hand-write the pushed-join shape — plan (a) — and compare traffic
    // against the optimizer's choice on the same data.
    let (local, link) = example1_setup(TpchScale::small());

    // Plan (b): default configuration.
    warm(&local, EXAMPLE1);
    link.reset();
    let r_b = local.query(EXAMPLE1).unwrap();
    let traffic_b = link.snapshot();

    // Plan (a): force the pushed join with a pass-through query — the
    // remote server executes customer⋈supplier and ships the result, which
    // the optimizer cannot rewrite.
    let pushed = "SELECT j.c_name, j.c_address, j.c_phone FROM \
                  OPENQUERY(remote0, 'SELECT c.c_name, c.c_address, c.c_phone, c.c_nationkey \
                   FROM customer c, supplier s \
                   WHERE c.c_nationkey = s.s_nationkey') j, nation n \
                  WHERE j.c_nationkey = n.n_nationkey";
    warm(&local, pushed);
    link.reset();
    let r_a = local.query(pushed).unwrap();
    let traffic_a = link.snapshot();

    assert_eq!(r_a.len(), r_b.len(), "both plans answer identically");
    assert!(
        traffic_a.bytes > traffic_b.bytes,
        "plan (a) ships the join result and must move more bytes: a={} b={}",
        traffic_a.bytes,
        traffic_b.bytes
    );
}

#[test]
fn whole_remote_query_collapses_to_one_statement() {
    let (local, _) = example1_setup(TpchScale::tiny());
    // Everything lives on remote0: one RemoteQuery, no local join.
    let plan = local
        .explain(
            "SELECT c.c_name FROM remote0.tpch.dbo.customer c, remote0.tpch.dbo.supplier s \
             WHERE c.c_nationkey = s.s_nationkey AND s.s_suppkey = 3",
        )
        .unwrap();
    assert!(
        plan.plan_text.trim_start().starts_with("RemoteQuery"),
        "{}",
        plan.plan_text
    );
    let r = local
        .query(
            "SELECT c.c_name FROM remote0.tpch.dbo.customer c, remote0.tpch.dbo.supplier s \
             WHERE c.c_nationkey = s.s_nationkey AND s.s_suppkey = 3",
        )
        .unwrap();
    assert!(!r.is_empty());
}

#[test]
fn remote_group_by_pushdown() {
    let (local, link) = example1_setup(TpchScale::tiny());
    let sql = "SELECT c_nationkey, COUNT(*) AS n FROM remote0.tpch.dbo.customer \
               GROUP BY c_nationkey";
    let plan = local.explain(sql).unwrap();
    assert!(
        plan.plan_text.contains("GROUP BY"),
        "SQL-92 provider should receive the aggregate:\n{}",
        plan.plan_text
    );
    link.reset();
    let r = local.query(sql).unwrap();
    assert!(r.len() <= 5, "tiny scale has 5 nations");
    let traffic = link.snapshot();
    assert!(
        traffic.rows <= 6,
        "only aggregated rows cross the wire, got {}",
        traffic.rows
    );
}

#[test]
fn remote_order_by_and_top_pushdown() {
    let (local, _) = example1_setup(TpchScale::tiny());
    let sql = "SELECT TOP 3 c_name FROM remote0.tpch.dbo.customer ORDER BY c_name DESC";
    let r = local.query(sql).unwrap();
    assert_eq!(r.len(), 3);
    let mut names: Vec<String> = r
        .rows
        .iter()
        .map(|row| match row.get(0) {
            Value::Str(s) => s.clone(),
            other => panic!("{other}"),
        })
        .collect();
    let sorted = {
        let mut s = names.clone();
        s.sort_by(|a, b| b.cmp(a));
        s
    };
    assert_eq!(names, sorted);
    names.dedup();
    assert_eq!(names.len(), 3);
}

#[test]
fn ablation_disable_remote_query_ships_rows() {
    let (local, link) = example1_setup(TpchScale::tiny());
    // Filter on a non-indexed column so no remote index range can stand in
    // for SQL pushdown once the rule is disabled.
    let sql = "SELECT c_name FROM remote0.tpch.dbo.customer WHERE c_city = 'Seattle'";

    warm(&local, sql);
    link.reset();
    local.query(sql).unwrap();
    let pushed = link.snapshot();

    let config = OptimizerConfig {
        enable_remote_query: false,
        enable_remote_param: false,
        ..Default::default()
    };
    local.set_optimizer_config(config);
    link.reset();
    let r = local.query(sql).unwrap();
    assert!(!r.is_empty(), "answers stay correct without pushdown");
    assert_eq!(
        r.len() as u64,
        pushed.rows,
        "pushdown shipped exactly the matches"
    );
    let shipped = link.snapshot();
    assert_eq!(
        shipped.rows, 60,
        "row shipping moves the whole customer table"
    );
    assert!(
        shipped.rows > pushed.rows * 3,
        "pushed={} shipped={}",
        pushed.rows,
        shipped.rows
    );
}

#[test]
fn parameterized_remote_join_ships_only_matches() {
    // Selective local outer (1 nation) driving a remote probe: the
    // parameterization rule (§4.1.2) should beat shipping all suppliers.
    let (local, link) = example1_setup(TpchScale::small());
    let sql = "SELECT n.n_name, s.s_name FROM nation n, remote0.tpch.dbo.supplier s \
               WHERE n.n_nationkey = s.s_nationkey AND n.n_nationkey = 3";
    let plan = local.explain(sql).unwrap();
    warm(&local, sql);
    link.reset();
    let r = local.query(sql).unwrap();
    let traffic = link.snapshot();
    assert!(!r.is_empty());
    // ~200/25 = 8 suppliers per nation; allow generous slack but far less
    // than the 200-supplier full table.
    assert!(
        traffic.rows < 60,
        "parameterized access should ship only matching suppliers (got {} rows)\n{}",
        traffic.rows,
        plan.plan_text
    );
}

#[test]
fn spool_prevents_remote_rescans() {
    let (local, link) = example1_setup(TpchScale::tiny());
    // A LEFT OUTER non-equi join pins the remote table on the inner side
    // (outer joins do not commute), so without a spool the remote table is
    // re-fetched once per outer row.
    let sql = "SELECT COUNT(*) AS n FROM nation n LEFT OUTER JOIN remote0.tpch.dbo.supplier s \
               ON s.s_suppkey > n.n_nationkey";
    warm(&local, sql);
    link.reset();
    let r1 = local.query(sql).unwrap();
    let with_spool = link.snapshot();

    let config = OptimizerConfig {
        enable_spool: false,
        ..Default::default()
    };
    local.set_optimizer_config(config);
    warm(&local, sql);
    link.reset();
    let r2 = local.query(sql).unwrap();
    let without_spool = link.snapshot();

    assert_eq!(r1.rows, r2.rows);
    assert!(
        with_spool.rows < without_spool.rows,
        "spool avoids re-shipping: with={} without={}",
        with_spool.rows,
        without_spool.rows
    );
}

#[test]
fn semi_join_against_remote_is_not_decoded() {
    let (local, _) = example1_setup(TpchScale::tiny());
    // EXISTS → semi join: "no direct SQL corollary" (§4.1.4). The engine
    // must still answer, executing the semi join locally.
    let sql = "SELECT n_name FROM nation n WHERE EXISTS \
               (SELECT * FROM remote0.tpch.dbo.supplier s WHERE s.s_nationkey = n.n_nationkey)";
    // The semi join itself must execute locally (its inputs may still be
    // remote accesses). SemiJoinReduce also qualifies: it ships only the
    // key IN-list and performs the semi join-back locally — the remote
    // statement still contains no JOIN.
    let plan = local.explain(sql).unwrap();
    assert!(
        plan.plan_text.contains("Join[Semi]")
            || plan.plan_text.contains("HashJoin[Semi]")
            || plan.plan_text.contains("SemiJoinReduce"),
        "semi join stays local:\n{}",
        plan.plan_text
    );
    let r = local.query(sql).unwrap();
    assert!(!r.is_empty());
    assert!(r.len() <= 5);
}

#[test]
fn remote_dml_through_linked_server() {
    let (local, _) = example1_setup(TpchScale::tiny());
    let n = local
        .execute(
            "INSERT INTO remote0.tpch.dbo.supplier (s_suppkey, s_name, s_nationkey, s_acctbal) \
             VALUES (999, 'NewSupp', 1, 50.0)",
        )
        .unwrap();
    assert_eq!(n.rows_affected, Some(1));
    local.clear_metadata_cache();
    let r = local
        .query("SELECT s_name FROM remote0.tpch.dbo.supplier WHERE s_suppkey = 999")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Str("NewSupp".into()));
    let n = local
        .execute("UPDATE remote0.tpch.dbo.supplier SET s_acctbal = 75.0 WHERE s_suppkey = 999")
        .unwrap();
    assert_eq!(n.rows_affected, Some(1));
    let n = local
        .execute("DELETE FROM remote0.tpch.dbo.supplier WHERE s_suppkey = 999")
        .unwrap();
    assert_eq!(n.rows_affected, Some(1));
}

#[test]
fn results_match_local_execution() {
    // Same data queried locally and through the distributed path must
    // agree (the ultimate correctness check).
    let scale = TpchScale::tiny();
    let (distributed, _) = example1_setup(scale);
    let all_local = Engine::new("monolith");
    tpch::load_all(all_local.storage(), &scale, 11).unwrap();

    // NOTE: example1_setup seeds customer/supplier with 11 in a fresh rng;
    // load_all uses the same seed but interleaves nation first, so compare
    // aggregates that do not depend on the row-level rng stream.
    let d = distributed
        .query(
            "SELECT COUNT(*) AS n FROM remote0.tpch.dbo.customer c, nation n \
                WHERE c.c_nationkey = n.n_nationkey",
        )
        .unwrap();
    let c = distributed
        .query("SELECT COUNT(*) AS n FROM remote0.tpch.dbo.customer")
        .unwrap();
    // Every customer has a valid nation, so the join preserves the count.
    assert_eq!(d.scalar(), c.scalar());
}
