//! DMV integration tests: the built-in `sys` provider served through the
//! ordinary linked-server machinery, plus the hierarchical tracer.

use dhqp::{
    Engine, EngineBuilder, EngineDataSource, EventConfig, QueryResult, TraceConfig, WaitClass,
};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_storage::TableDef;
use dhqp_types::{Column, DataType, Row, Schema, Value};
use std::sync::Arc;

/// Column position by name (DMV assertions shouldn't depend on order).
fn col(r: &QueryResult, name: &str) -> usize {
    r.schema
        .columns()
        .iter()
        .position(|c| c.name == name)
        .unwrap_or_else(|| panic!("column {name} missing from {:?}", r.schema))
}

fn local_with_table() -> Engine {
    let engine = Engine::new("local");
    engine
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();
    engine
        .insert(
            "t",
            &[
                Row::new(vec![Value::Int(1)]),
                Row::new(vec![Value::Int(2)]),
                Row::new(vec![Value::Int(3)]),
            ],
        )
        .unwrap();
    engine
}

/// Local engine plus one remote server behind a metered (accounting-only)
/// LAN link.
fn distributed() -> Engine {
    let remote = Engine::new("remote-engine");
    remote
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();
    remote
        .insert(
            "t",
            &[Row::new(vec![Value::Int(1)]), Row::new(vec![Value::Int(2)])],
        )
        .unwrap();
    let local = Engine::new("local");
    let link = NetworkLink::new("link-srv", NetworkConfig::lan());
    local
        .add_linked_server(
            "srv",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(remote)),
                link,
            )),
        )
        .unwrap();
    local
}

#[test]
fn every_dmv_selects_through_the_ordinary_pipeline() {
    let engine = local_with_table();
    engine.query("SELECT a FROM t").unwrap();

    let r = engine.query("SELECT * FROM sys.dm_exec_requests").unwrap();
    assert!(!r.rows.is_empty(), "the SELECT above is in the ring");
    for name in ["sql", "kind", "rows", "elapsed_ms", "ok", "error"] {
        col(&r, name);
    }

    let r = engine
        .query("SELECT * FROM sys.dm_exec_query_stats")
        .unwrap();
    for name in [
        "template",
        "execution_count",
        "total_rows",
        "total_elapsed_ms",
        "avg_elapsed_ms",
    ] {
        col(&r, name);
    }

    let r = engine.query("SELECT * FROM sys.dm_link_stats").unwrap();
    assert!(
        r.rows.is_empty(),
        "no linked servers registered (sys itself is excluded): {r:?}"
    );

    let r = engine.query("SELECT * FROM sys.dm_os_counters").unwrap();
    let name_col = col(&r, "name");
    let value_col = col(&r, "value");
    let selects = r
        .rows
        .iter()
        .find(|row| row.get(name_col) == &Value::Str("selects".into()))
        .expect("selects counter row");
    assert!(
        matches!(selects.get(value_col), Value::Int(n) if *n >= 1),
        "{selects:?}"
    );
    assert!(
        r.rows
            .iter()
            .any(|row| row.get(name_col) == &Value::Str("query_latency_p99_us".into())),
        "query-latency percentile counters missing"
    );
}

#[test]
fn dm_exec_requests_reflects_the_just_executed_query() {
    let engine = local_with_table();
    engine.query("SELECT a FROM t WHERE a = 2").unwrap();
    assert!(engine.query("SELECT nope FROM t").is_err());

    let r = engine
        .query("SELECT sql, kind, rows, ok, error FROM sys.dm_exec_requests")
        .unwrap();
    let (sql_c, kind_c, rows_c, ok_c, err_c) = (
        col(&r, "sql"),
        col(&r, "kind"),
        col(&r, "rows"),
        col(&r, "ok"),
        col(&r, "error"),
    );
    let good = r
        .rows
        .iter()
        .find(|row| row.get(sql_c) == &Value::Str("SELECT a FROM t WHERE a = 2".into()))
        .expect("executed query visible in dm_exec_requests");
    assert_eq!(good.get(kind_c), &Value::Str("SELECT".into()));
    assert_eq!(good.get(rows_c), &Value::Int(1));
    assert_eq!(good.get(ok_c), &Value::Bool(true));
    assert_eq!(good.get(err_c), &Value::Null);

    let bad = r
        .rows
        .iter()
        .find(|row| row.get(sql_c) == &Value::Str("SELECT nope FROM t".into()))
        .expect("failed query visible too");
    assert_eq!(bad.get(ok_c), &Value::Bool(false));
    assert!(
        matches!(bad.get(err_c), Value::Str(msg) if msg.contains("nope")),
        "error column carries the failure: {bad:?}"
    );
}

#[test]
fn dm_exec_query_stats_joins_against_a_user_table() {
    let engine = local_with_table();
    engine
        .create_table(TableDef::new(
            "thresholds",
            Schema::new(vec![
                Column::not_null("n", DataType::Int),
                Column::not_null("label", DataType::Str),
            ]),
        ))
        .unwrap();
    engine
        .insert(
            "thresholds",
            &[
                Row::new(vec![Value::Int(2), Value::Str("twice".into())]),
                Row::new(vec![Value::Int(3), Value::Str("thrice".into())]),
            ],
        )
        .unwrap();
    // Same fingerprint three times → one cache entry with three executions.
    for _ in 0..3 {
        engine.query("SELECT a FROM t WHERE a = 1").unwrap();
    }

    // DMV rows participate in joins like any other rowset.
    let r = engine
        .query(
            "SELECT s.template, l.label FROM sys.dm_exec_query_stats s, thresholds l \
             WHERE s.execution_count = l.n",
        )
        .unwrap();
    let (template_c, label_c) = (col(&r, "template"), col(&r, "label"));
    let hit = r
        .rows
        .iter()
        .find(|row| matches!(row.get(template_c), Value::Str(t) if t.contains("WHERE a =")))
        .expect("the repeated query's fingerprint joined");
    assert_eq!(hit.get(label_c), &Value::Str("thrice".into()));
}

#[test]
fn dm_link_stats_reports_nonzero_percentiles_after_a_distributed_query() {
    let local = distributed();
    local.query("SELECT a FROM srv.db.dbo.t").unwrap();

    let r = local
        .query("SELECT name, requests, bytes, p50_ms, p99_ms FROM sys.dm_link_stats ORDER BY p99_ms DESC")
        .unwrap();
    assert_eq!(r.rows.len(), 1, "one row per registered link: {r:?}");
    let (name_c, req_c, bytes_c, p50_c, p99_c) = (
        col(&r, "name"),
        col(&r, "requests"),
        col(&r, "bytes"),
        col(&r, "p50_ms"),
        col(&r, "p99_ms"),
    );
    let row = &r.rows[0];
    assert_eq!(row.get(name_c), &Value::Str("srv".into()));
    assert!(matches!(row.get(req_c), Value::Int(n) if *n > 0));
    assert!(matches!(row.get(bytes_c), Value::Int(n) if *n > 0));
    // lan() models 0.5 ms round trips even though it never sleeps; the
    // log-bucketed histogram clamps the percentile to the observed max.
    for c in [p50_c, p99_c] {
        assert!(
            matches!(row.get(c), Value::Float(ms) if *ms >= 0.5),
            "percentile not populated: {row:?}"
        );
    }
}

#[test]
fn dm_os_wait_stats_lists_every_class_and_clears() {
    let local = distributed();
    local.query("SELECT a FROM srv.db.dbo.t").unwrap();

    let r = local.query("SELECT * FROM sys.dm_os_wait_stats").unwrap();
    let (type_c, count_c, time_c, max_c) = (
        col(&r, "wait_type"),
        col(&r, "waiting_tasks_count"),
        col(&r, "wait_time_ms"),
        col(&r, "max_wait_time_ms"),
    );
    assert_eq!(
        r.rows.len(),
        WaitClass::ALL.len(),
        "one row per wait class, zeros included: {r:?}"
    );
    let net = r
        .rows
        .iter()
        .find(|row| row.get(type_c) == &Value::Str("NETWORK_IO".into()))
        .expect("NETWORK_IO row");
    assert!(
        matches!(net.get(count_c), Value::Int(n) if *n > 0),
        "{net:?}"
    );
    assert!(
        matches!(net.get(time_c), Value::Float(ms) if *ms > 0.0),
        "{net:?}"
    );
    assert!(
        matches!(net.get(max_c), Value::Float(ms) if *ms > 0.0),
        "{net:?}"
    );
    // A class the workload never touched still serves its zero row.
    let dtc = r
        .rows
        .iter()
        .find(|row| row.get(type_c) == &Value::Str("DTC_PREPARE".into()))
        .expect("DTC_PREPARE row");
    assert_eq!(dtc.get(count_c), &Value::Int(0));

    // DBCC SQLPERF CLEAR analog: the remote class goes back to zero (the
    // clearing query itself only compiles — sys is local).
    local.clear_wait_stats();
    let r = local
        .query("SELECT wait_type, waiting_tasks_count FROM sys.dm_os_wait_stats")
        .unwrap();
    let net = r
        .rows
        .iter()
        .find(|row| row.get(0) == &Value::Str("NETWORK_IO".into()))
        .unwrap();
    assert_eq!(net.get(1), &Value::Int(0), "clear zeroed the class");
}

#[test]
fn dm_xe_recent_events_serves_the_ring() {
    let engine = local_with_table();
    engine.set_event_config(EventConfig::all());
    engine.query("SELECT a FROM t").unwrap();

    let r = engine
        .query("SELECT seq, timestamp_ms, kind, detail FROM sys.dm_xe_recent_events")
        .unwrap();
    let (seq_c, kind_c, detail_c) = (col(&r, "seq"), col(&r, "kind"), col(&r, "detail"));
    assert!(!r.rows.is_empty());
    // Sequence numbers are strictly increasing (the ring serves oldest
    // first) and the lifecycle events carry their payloads.
    let seqs: Vec<i64> = r
        .rows
        .iter()
        .map(|row| match row.get(seq_c) {
            Value::Int(n) => *n,
            other => panic!("non-integer seq: {other:?}"),
        })
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
    let start = r
        .rows
        .iter()
        .find(|row| row.get(kind_c) == &Value::Str("query_start".into()))
        .expect("query_start event");
    assert!(
        matches!(start.get(detail_c), Value::Str(d) if d.contains("SELECT a FROM t")),
        "{start:?}"
    );
    let end = r
        .rows
        .iter()
        .find(|row| row.get(kind_c) == &Value::Str("query_end".into()))
        .expect("query_end event");
    assert!(
        matches!(end.get(detail_c), Value::Str(d) if d.contains("rows=3")),
        "{end:?}"
    );

    // A disabled bus serves an empty view (explicit config wins over any
    // DHQP_EVENTS=1 in the environment — the CI matrix arms events).
    let quiet = local_with_table();
    quiet.set_event_config(EventConfig::disabled());
    quiet.query("SELECT a FROM t").unwrap();
    let r = quiet
        .query("SELECT kind FROM sys.dm_xe_recent_events")
        .unwrap();
    assert!(r.rows.is_empty(), "{r:?}");
}

#[test]
fn dm_exec_requests_attributes_the_dominant_wait() {
    let local = distributed();
    local.query("SELECT a FROM srv.db.dbo.t").unwrap();

    let r = local
        .query("SELECT sql, dominant_wait FROM sys.dm_exec_requests")
        .unwrap();
    let (sql_c, wait_c) = (col(&r, "sql"), col(&r, "dominant_wait"));
    let remote_query = r
        .rows
        .iter()
        .find(|row| row.get(sql_c) == &Value::Str("SELECT a FROM srv.db.dbo.t".into()))
        .expect("remote query in the ring");
    // The modeled 0.5 ms round trips dominate the statement's waits —
    // unless the CI matrix arms fault injection (DHQP_FAULT_SEED), where
    // the retry backoff sleeps are longer still. Either way the statement
    // is attributed to its wire activity, not to compilation.
    assert!(
        matches!(
            remote_query.get(wait_c),
            Value::Str(w) if w == "NETWORK_IO" || w == "RETRY_BACKOFF"
        ),
        "{remote_query:?}"
    );
}

#[test]
fn tracing_disabled_leaves_no_spans() {
    let engine = local_with_table();
    // Explicit config wins over any DHQP_TRACE=1 in the environment (the
    // CI matrix runs this suite with tracing armed).
    engine.set_trace_config(TraceConfig::disabled());
    engine.query("SELECT a FROM t").unwrap();
    engine.execute_analyze("SELECT a FROM t").unwrap();
    assert!(engine.last_trace().is_none(), "no spans when disarmed");
}

#[test]
fn traced_distributed_analyze_covers_all_phases() {
    let local = distributed();
    local.set_trace_config(TraceConfig::enabled());

    // Fresh engine → plan-cache miss → the full compile shows up.
    let report = local
        .execute_analyze("SELECT a FROM srv.db.dbo.t WHERE a = 1")
        .unwrap();
    let trace = report.trace.as_ref().expect("report carries the trace");
    assert_eq!(local.last_trace().unwrap().sql, trace.sql);
    for stage in ["parse", "bind", "optimize", "execute"] {
        assert!(
            trace.find(stage).is_some(),
            "missing {stage}:\n{}",
            trace.render()
        );
    }
    // Optimize carries per-rule application counts from the memo search.
    let optimize = trace.find("optimize").unwrap();
    assert!(
        optimize.attrs.iter().any(|(k, _)| k.starts_with("rule.")),
        "no rule counts: {:?}",
        optimize.attrs
    );
    // Execute has one child per operator, annotated with self time.
    let execute = trace.find("execute").unwrap();
    assert!(!execute.children.is_empty(), "no operator spans");
    fn any_attr(span: &dhqp::TraceSpan, key: &str) -> bool {
        span.attr(key).is_some() || span.children.iter().any(|c| any_attr(c, key))
    }
    assert!(
        any_attr(execute, "self_us"),
        "no self times:\n{}",
        trace.render()
    );
    assert!(
        any_attr(execute, "rows"),
        "no row counts:\n{}",
        trace.render()
    );

    // The rendered report embeds the span tree; the JSON export is valid
    // enough to carry the same names.
    let rendered = report.render();
    assert!(rendered.contains("-- trace:"), "{rendered}");
    let json = trace.to_json();
    assert!(json.contains("\"name\":\"optimize\""), "{json}");

    // A second run is a plan-cache hit: compile spans collapse into a
    // plan-cache marker, execution is still traced per-operator.
    local
        .execute_analyze("SELECT a FROM srv.db.dbo.t WHERE a = 1")
        .unwrap();
    let hit = local.last_trace().unwrap();
    let marker = hit.find("plan-cache").expect("hit path traced");
    assert_eq!(marker.attr("hit"), Some("true"));
    assert!(hit.find("optimize").is_none(), "hit skips the compile");
    assert!(hit.find("execute").is_some());
}

#[test]
fn recent_query_capacity_is_configurable() {
    let engine = EngineBuilder::new("local").recent_query_capacity(2).build();
    engine
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();
    for i in 0..4 {
        engine
            .query(&format!("SELECT a FROM t WHERE a = {i}"))
            .unwrap();
    }
    let recent = engine.recent_queries();
    assert_eq!(recent.len(), 2, "ring bounded by the configured capacity");
    assert_eq!(recent[1].sql, "SELECT a FROM t WHERE a = 3");
}

#[test]
fn sys_views_survive_ordering_and_projection() {
    // The README's canonical example: order links by tail latency.
    let local = distributed();
    local.query("SELECT a FROM srv.db.dbo.t").unwrap();
    let r = local
        .query("SELECT * FROM sys.dm_link_stats ORDER BY p99_ms DESC")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].get(col(&r, "name")), &Value::Str("srv".into()));
}
