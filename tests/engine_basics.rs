//! End-to-end integration tests: the engine over local tables.

use dhqp::Engine;
use dhqp_storage::TableDef;
use dhqp_types::{Column, DataType, Row, Schema, Value};

fn engine_with_emp() -> Engine {
    let engine = Engine::new("local");
    engine
        .create_table(
            TableDef::new(
                "emp",
                Schema::new(vec![
                    Column::not_null("id", DataType::Int),
                    Column::new("name", DataType::Str),
                    Column::new("dept", DataType::Str),
                    Column::new("salary", DataType::Int),
                ]),
            )
            .with_index("pk_emp", &["id"], true),
        )
        .unwrap();
    let people = [
        (1, "alice", "eng", 120),
        (2, "bob", "eng", 100),
        (3, "carol", "hr", 90),
        (4, "dave", "hr", 80),
        (5, "erin", "sales", 110),
    ];
    let rows: Vec<Row> = people
        .iter()
        .map(|(id, name, dept, sal)| {
            Row::new(vec![
                Value::Int(*id),
                Value::Str(name.to_string()),
                Value::Str(dept.to_string()),
                Value::Int(*sal),
            ])
        })
        .collect();
    engine.insert("emp", &rows).unwrap();
    engine.analyze("emp", 8).unwrap();
    engine
}

#[test]
fn select_star() {
    let e = engine_with_emp();
    let r = e.query("SELECT * FROM emp").unwrap();
    assert_eq!(r.len(), 5);
    assert_eq!(r.schema.len(), 4);
    assert_eq!(r.column("salary"), Some(3));
}

#[test]
fn filter_and_projection() {
    let e = engine_with_emp();
    let r = e
        .query("SELECT name, salary FROM emp WHERE dept = 'eng' AND salary > 100")
        .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.value(0, 0), &Value::Str("alice".into()));
}

#[test]
fn order_by_and_top() {
    let e = engine_with_emp();
    let r = e
        .query("SELECT TOP 2 name FROM emp ORDER BY salary DESC")
        .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.value(0, 0), &Value::Str("alice".into()));
    assert_eq!(r.value(1, 0), &Value::Str("erin".into()));
}

#[test]
fn group_by_having() {
    let e = engine_with_emp();
    let r = e
        .query(
            "SELECT dept, COUNT(*) AS n, SUM(salary) AS total FROM emp \
             GROUP BY dept HAVING COUNT(*) >= 2 ORDER BY dept",
        )
        .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.value(0, 0), &Value::Str("eng".into()));
    assert_eq!(r.value(0, 1), &Value::Int(2));
    assert_eq!(r.value(0, 2), &Value::Int(220));
}

#[test]
fn distinct() {
    let e = engine_with_emp();
    let r = e
        .query("SELECT DISTINCT dept FROM emp ORDER BY dept")
        .unwrap();
    assert_eq!(r.len(), 3);
}

#[test]
fn self_join() {
    let e = engine_with_emp();
    let r = e
        .query(
            "SELECT a.name, b.name FROM emp a, emp b \
             WHERE a.dept = b.dept AND a.id < b.id ORDER BY a.id",
        )
        .unwrap();
    assert_eq!(r.len(), 2); // (alice,bob), (carol,dave)
}

#[test]
fn exists_subquery() {
    let e = engine_with_emp();
    // Departments that have someone earning over 100.
    let r = e
        .query(
            "SELECT DISTINCT dept FROM emp e WHERE EXISTS \
             (SELECT * FROM emp x WHERE x.dept = e.dept AND x.salary > 100) ORDER BY dept",
        )
        .unwrap();
    assert_eq!(r.len(), 2); // eng, sales
}

#[test]
fn not_exists_subquery() {
    let e = engine_with_emp();
    let r = e
        .query(
            "SELECT name FROM emp e WHERE NOT EXISTS \
             (SELECT * FROM emp x WHERE x.dept = e.dept AND x.salary > e.salary)",
        )
        .unwrap();
    // Top earner in each department.
    assert_eq!(r.len(), 3);
}

#[test]
fn in_subquery_and_scalar_subquery() {
    let e = engine_with_emp();
    let r = e
        .query("SELECT name FROM emp WHERE dept IN (SELECT dept FROM emp WHERE salary >= 110)")
        .unwrap();
    assert_eq!(r.len(), 3); // eng x2 + sales
    let r = e
        .query("SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)")
        .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.value(0, 0), &Value::Str("alice".into()));
}

#[test]
fn parameters_and_startup_semantics() {
    let e = engine_with_emp();
    let mut params = std::collections::HashMap::new();
    params.insert("d".to_string(), Value::Str("hr".into()));
    let r = e
        .query_with_params("SELECT COUNT(*) AS n FROM emp WHERE dept = @d", params)
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(2)));
}

#[test]
fn dml_insert_update_delete() {
    let e = engine_with_emp();
    let r = e
        .execute("INSERT INTO emp (id, name, dept, salary) VALUES (6, 'frank', 'eng', 95)")
        .unwrap();
    assert_eq!(r.rows_affected, Some(1));
    let r = e
        .execute("UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'")
        .unwrap();
    assert_eq!(r.rows_affected, Some(3));
    let check = e.query("SELECT salary FROM emp WHERE id = 6").unwrap();
    assert_eq!(check.value(0, 0), &Value::Int(105));
    let r = e.execute("DELETE FROM emp WHERE salary < 100").unwrap();
    assert_eq!(r.rows_affected, Some(2)); // dave 80, carol 90
    assert_eq!(
        e.query("SELECT COUNT(*) AS n FROM emp").unwrap().scalar(),
        Some(&Value::Int(4))
    );
}

#[test]
fn unique_index_enforced_via_sql() {
    let e = engine_with_emp();
    let err = e
        .execute("INSERT INTO emp (id, name) VALUES (1, 'dup')")
        .unwrap_err();
    assert_eq!(err.kind(), "constraint");
}

#[test]
fn explain_renders_plan() {
    let e = engine_with_emp();
    let plan = e.explain("SELECT name FROM emp WHERE id = 3").unwrap();
    let text = plan.render();
    assert!(text.contains("emp"), "{text}");
    assert!(plan.est_cost > 0.0);
}

#[test]
fn select_without_from() {
    let e = Engine::new("bare");
    let r = e.query("SELECT 1 + 2 AS three, 'x' AS s").unwrap();
    assert_eq!(r.value(0, 0), &Value::Int(3));
    assert_eq!(r.value(0, 1), &Value::Str("x".into()));
}

#[test]
fn errors_surface_cleanly() {
    let e = engine_with_emp();
    assert_eq!(e.query("SELECT nope FROM emp").unwrap_err().kind(), "bind");
    assert_eq!(
        e.query("SELECT * FROM ghost").unwrap_err().kind(),
        "catalog"
    );
    assert_eq!(e.query("SELEKT").unwrap_err().kind(), "parse");
    // Missing parameter value.
    let err = e
        .query("SELECT * FROM emp WHERE id = @missing")
        .unwrap_err();
    assert_eq!(err.kind(), "execute");
}
