//! Fault injection and retry: a flaky WAN must not change query answers.
//!
//! The seeded [`FaultConfig`] plans injected below the provider seam by
//! `NetworkedDataSource` are deterministic, so every run of this file sees
//! the same fault schedule. The executor's [`RetryPolicy`] absorbs the
//! transient faults; the assertions check the paper-level property that a
//! retried distributed scan is indistinguishable from a fault-free one.

use dhqp::{DegradedMode, Engine, EngineDataSource, FaultConfig, ParallelConfig, RetryPolicy};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_types::{Row, Value};
use dhqp_workload::tpch::{self, TpchScale};
use std::sync::Arc;
use std::time::Duration;

/// Head engine federating four members holding the seven `lineitem_9x`
/// partitions, each behind a link armed with `config(member_index)`.
fn federation_with_faults(
    config: impl Fn(usize) -> Option<FaultConfig>,
) -> (Engine, Vec<NetworkLink>) {
    let head = Engine::new("head");
    let members: Vec<Engine> = (1..=4)
        .map(|i| Engine::new(format!("member{i}-engine")))
        .collect();
    let engines: Vec<&dhqp_storage::StorageEngine> =
        members.iter().map(|e| e.storage().as_ref()).collect();
    let parts = tpch::create_lineitem_partitions(&engines, &TpchScale::tiny(), 17).unwrap();

    let mut links = Vec::new();
    for (i, m) in members.iter().enumerate() {
        let link = NetworkLink::new(format!("member{}", i + 1), NetworkConfig::lan());
        let inner: Arc<dyn dhqp_oledb::DataSource> = Arc::new(EngineDataSource::new(m.clone()));
        let wrapped = match config(i) {
            Some(cfg) => NetworkedDataSource::with_faults(inner, link.clone(), cfg),
            None => NetworkedDataSource::reliable(inner, link.clone()),
        };
        head.add_linked_server(&format!("member{}", i + 1), Arc::new(wrapped))
            .unwrap();
        links.push(link);
    }
    let view_members = parts
        .into_iter()
        .map(|(idx, table, domain)| (Some(format!("member{}", idx + 1)), table, domain))
        .collect();
    head.define_partitioned_view("lineitem_all", "l_commitdate", view_members)
        .unwrap();
    (head, links)
}

/// Rows as sorted value vectors: bag equality independent of delivery order.
fn multiset(rows: &[Row], width: usize) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| (0..width).map(|i| r.get(i).clone()).collect())
        .collect();
    out.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    out
}

const SCAN: &str = "SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem_all";

fn fast_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        attempt_deadline: None,
        query_deadline: None,
    }
}

#[test]
fn flaky_wan_scan_matches_fault_free_run() {
    // Baseline: the same federation with no faults armed.
    let (clean, _clean_links) = federation_with_faults(|_| None);
    let expected = clean.query(SCAN).unwrap();
    let scale = TpchScale::tiny();
    assert_eq!(expected.len(), scale.orders * scale.lineitems_per_order);

    // Acceptance plan: exactly one transient command error per link.
    let (head, links) = federation_with_faults(|_| Some(FaultConfig::one_transient_per_link(42)));
    head.set_retry_policy(fast_retries());
    let flaky = head.query(SCAN).unwrap();
    assert_eq!(
        multiset(&expected.rows, 3),
        multiset(&flaky.rows, 3),
        "retried scan must be indistinguishable from the fault-free run"
    );

    // Every link injected its budgeted fault, and each injection shows up
    // as a transient error plus a retry in the engine metrics.
    let faults: u64 = links.iter().map(NetworkLink::faults_injected).sum();
    assert_eq!(faults, links.len() as u64, "one fault per link");
    let m = head.metrics();
    assert_eq!(m.remote_transient_errors, faults);
    assert_eq!(m.remote_retries, faults);
    assert_eq!(m.remote_deadline_hits, 0);

    // The wire tally still reports per-link traffic alongside the faults.
    for link in &links {
        let t = link.snapshot();
        assert!(t.requests > 0, "link {} saw no requests", link.name());
        assert!(t.rows > 0, "link {} shipped no rows", link.name());
    }
}

#[test]
fn parallel_and_serial_runs_agree_under_faults() {
    let (clean, _links) = federation_with_faults(|_| None);
    let expected = clean.query(SCAN).unwrap();

    // Fresh fault budget for each execution mode (budgets are per plan, so
    // build one federation per mode instead of reusing a drained one).
    for parallel in [false, true] {
        let (head, _links) =
            federation_with_faults(|_| Some(FaultConfig::one_transient_per_link(7)));
        head.set_retry_policy(fast_retries());
        head.set_parallel_config(if parallel {
            ParallelConfig::parallel()
        } else {
            ParallelConfig::serial()
        });
        let got = head.query(SCAN).unwrap();
        assert_eq!(
            multiset(&expected.rows, 3),
            multiset(&got.rows, 3),
            "parallel={parallel}"
        );
        assert!(head.metrics().remote_retries > 0, "parallel={parallel}");
    }
}

#[test]
fn mid_stream_drop_rewinds_without_duplicating_rows() {
    let (clean, _links) = federation_with_faults(|_| None);
    let expected = clean.query(SCAN).unwrap();

    // Member 2 drops one result stream mid-flight; the retry layer re-opens
    // and skips the rows already delivered.
    let (head, links) = federation_with_faults(|i| {
        (i == 1).then(|| FaultConfig {
            seed: 9,
            stream_drops: 1.0,
            max_faults: 1,
            ..FaultConfig::none()
        })
    });
    head.set_retry_policy(fast_retries());
    let got = head.query(SCAN).unwrap();
    assert_eq!(multiset(&expected.rows, 3), multiset(&got.rows, 3));
    assert_eq!(links[1].faults_injected(), 1);
    assert_eq!(head.metrics().remote_retries, 1);
}

#[test]
fn permanent_failure_surfaces_original_error_with_attempt_count() {
    // Member 3's link fails every command, forever (no fault budget).
    let (head, _links) = federation_with_faults(|i| {
        (i == 2).then(|| FaultConfig {
            seed: 5,
            command_errors: 1.0,
            ..FaultConfig::none()
        })
    });
    // Pin the policy: under DHQP_DEGRADED=prune this give-up would be
    // planned around instead of surfaced.
    head.set_degraded_mode(DegradedMode::Fail);
    head.set_retry_policy(fast_retries());
    let err = head.query(SCAN).unwrap_err();
    assert_eq!(err.kind(), "unavailable", "{err}");
    assert!(
        err.message().contains("giving up after 3 attempts"),
        "{err}"
    );
    let m = head.metrics();
    assert!(m.remote_transient_errors >= 3, "{m:?}");

    // Healthy members still answer afterwards.
    let r = head
        .query("SELECT l_orderkey FROM lineitem_all WHERE l_commitdate < '1993-01-01'")
        .unwrap();
    assert!(!r.is_empty());
}

#[test]
fn stalls_convert_to_timeouts_and_count_deadline_hits() {
    let (head, _links) = federation_with_faults(|i| {
        (i == 0).then(|| FaultConfig {
            seed: 3,
            stalls: 1.0,
            stall_ms: 30,
            ..FaultConfig::none()
        })
    });
    head.set_degraded_mode(DegradedMode::Fail);
    head.set_retry_policy(RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        attempt_deadline: Some(Duration::from_millis(5)),
        query_deadline: None,
    });
    let err = head.query(SCAN).unwrap_err();
    assert_eq!(err.kind(), "timeout", "{err}");
    let m = head.metrics();
    assert!(m.remote_deadline_hits >= 1, "{m:?}");
}

#[test]
fn explain_analyze_renders_per_node_retries() {
    let (head, _links) = federation_with_faults(|_| Some(FaultConfig::one_transient_per_link(11)));
    head.set_retry_policy(fast_retries());
    let report = head.execute_analyze(SCAN).unwrap();
    let rendered = report.render();
    assert!(rendered.contains("[retries=1]"), "{rendered}");
    let retried: u64 = report.runtime.values().map(|rt| rt.retries).sum();
    assert_eq!(retried, 4, "one retry per member link:\n{rendered}");
}
