//! Heterogeneous-source integration tests: CSV files, spreadsheets, the
//! Access-like SQL provider, mail files, full-text catalogs — the paper's
//! §2.2–§2.4 scenarios end to end.

use dhqp::{Engine, EngineDataSource};
use dhqp_fulltext::FullTextProvider;
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_oledb::{DataSource, SqlSupport};
use dhqp_providers::{CsvProvider, MailboxProvider, MiniSqlProvider, Sheet, SpreadsheetProvider};
use dhqp_storage::{StorageEngine, TableDef};
use dhqp_types::{value::parse_date, Column, DataType, Row, Schema, Value};
use dhqp_workload::docs::generate_documents;
use dhqp_workload::mailgen::{generate_mailbox, MailboxSpec};
use std::sync::Arc;

#[test]
fn csv_linked_server_queries() {
    let engine = Engine::new("local");
    let csv = CsvProvider::new(
        "files",
        &[("scores.csv", "player,score\nann,10\nbeth,25\ncleo,17\n")],
    )
    .unwrap();
    engine.add_linked_server("files", Arc::new(csv)).unwrap();
    let r = engine
        .query("SELECT player FROM files.fs.dbo.[scores.csv] WHERE score > 15 ORDER BY score DESC")
        .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.value(0, 0), &Value::Str("beth".into()));
    // Simple provider: everything is computed locally, but it still works.
    let plan = engine
        .explain("SELECT COUNT(*) AS n FROM files.fs.dbo.[scores.csv]")
        .unwrap();
    assert!(
        !plan.plan_text.contains("RemoteQuery"),
        "{}",
        plan.plan_text
    );
}

#[test]
fn spreadsheet_join_with_local_table() {
    let engine = Engine::new("local");
    engine
        .create_table(TableDef::new(
            "quota",
            Schema::new(vec![
                Column::not_null("quarter", DataType::Str),
                Column::not_null("target", DataType::Float),
            ]),
        ))
        .unwrap();
    engine
        .insert(
            "quota",
            &[
                Row::new(vec![Value::Str("Q1".into()), Value::Float(100_000.0)]),
                Row::new(vec![Value::Str("Q2".into()), Value::Float(120_000.0)]),
            ],
        )
        .unwrap();
    let mut sheet = Sheet::new(
        "Actuals",
        vec![
            ("Quarter".into(), DataType::Str),
            ("Amount".into(), DataType::Float),
        ],
    );
    sheet
        .push_row(vec![Value::Str("Q1".into()), Value::Float(110_000.0)])
        .unwrap();
    sheet
        .push_row(vec![Value::Str("Q2".into()), Value::Float(90_000.0)])
        .unwrap();
    engine
        .add_linked_server(
            "xls",
            Arc::new(SpreadsheetProvider::new("book.xls", vec![sheet])),
        )
        .unwrap();
    let r = engine
        .query(
            "SELECT q.quarter FROM quota q, xls.book.dbo.Actuals a \
             WHERE q.quarter = a.Quarter AND a.Amount >= q.target",
        )
        .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.value(0, 0), &Value::Str("Q1".into()));
}

#[test]
fn minisql_provider_receives_pushdown_within_its_level() {
    // An ODBC-Core provider gets single-statement pushdown for joins but
    // the engine must handle GROUP BY itself.
    let storage = Arc::new(StorageEngine::new("access"));
    storage
        .create_table(TableDef::new(
            "Customers",
            Schema::new(vec![
                Column::not_null("Emailaddr", DataType::Str),
                Column::not_null("City", DataType::Str),
            ]),
        ))
        .unwrap();
    let rows: Vec<Row> = (0..20)
        .map(|i| {
            Row::new(vec![
                Value::Str(format!("c{i}@x.example")),
                Value::Str(if i % 4 == 0 {
                    "Seattle".into()
                } else {
                    format!("City{}", i % 3)
                }),
            ])
        })
        .collect();
    storage.insert_rows("Customers", &rows).unwrap();
    let provider = MiniSqlProvider::new("AccessDb", storage, SqlSupport::OdbcCore).unwrap();
    let engine = Engine::new("local");
    engine.add_linked_server("acc", Arc::new(provider)).unwrap();

    // Filter pushdown works at ODBC Core.
    let sql = "SELECT Emailaddr FROM acc.db.dbo.Customers WHERE City = 'Seattle'";
    let plan = engine.explain(sql).unwrap();
    assert!(plan.plan_text.contains("RemoteQuery"), "{}", plan.plan_text);
    assert_eq!(engine.query(sql).unwrap().len(), 5);

    // GROUP BY exceeds the level: stays local, still answers.
    let sql = "SELECT City, COUNT(*) AS n FROM acc.db.dbo.Customers GROUP BY City";
    let plan = engine.explain(sql).unwrap();
    assert!(
        plan.plan_text.contains("HashAggregate") || plan.plan_text.contains("StreamAggregate"),
        "aggregate must run locally for an ODBC-Core source:\n{}",
        plan.plan_text
    );
    assert_eq!(engine.query(sql).unwrap().len(), 4);
}

#[test]
fn sql_minimum_provider_gets_only_simple_pushdown() {
    let storage = Arc::new(StorageEngine::new("mini"));
    storage
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![
                Column::not_null("k", DataType::Int),
                Column::not_null("v", DataType::Int),
            ]),
        ))
        .unwrap();
    let rows: Vec<Row> = (0..50)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 7)]))
        .collect();
    storage.insert_rows("t", &rows).unwrap();
    let provider = MiniSqlProvider::new("minidb", storage, SqlSupport::Minimum).unwrap();
    let engine = Engine::new("local");
    engine
        .add_linked_server("mini", Arc::new(provider))
        .unwrap();

    // Conjunctive comparison: pushable at SQL Minimum.
    let sql = "SELECT k FROM mini.db.dbo.t WHERE k > 40 AND v = 1";
    let plan = engine.explain(sql).unwrap();
    assert!(plan.plan_text.contains("RemoteQuery"), "{}", plan.plan_text);
    assert!(!engine.query(sql).unwrap().is_empty());

    // OR exceeds SQL Minimum: the filter must run locally.
    let sql = "SELECT k FROM mini.db.dbo.t WHERE k = 1 OR k = 2";
    let plan = engine.explain(sql).unwrap();
    assert!(
        plan.plan_text.contains("Filter"),
        "OR predicate stays local at SQL Minimum:\n{}",
        plan.plan_text
    );
    assert_eq!(engine.query(sql).unwrap().len(), 2);
}

/// The §2.2 scenario: OPENROWSET against the MSIDXS full-text provider.
#[test]
fn openrowset_fulltext_documents() {
    let engine = Engine::new("local");
    let service = Arc::clone(engine.fulltext_service());
    service.create_catalog("DQLiterature").unwrap();
    for doc in generate_documents(40, 5) {
        service.index_document("DQLiterature", doc).unwrap();
    }
    let svc = Arc::clone(&service);
    engine.register_openrowset_provider(
        "MSIDXS",
        Arc::new(move |catalog: &str| {
            Ok(Arc::new(FullTextProvider::new(Arc::clone(&svc), catalog)) as Arc<dyn DataSource>)
        }),
    );
    // The paper's §2.2 query, modulo dialect details.
    let r = engine
        .query(
            "SELECT FS.path FROM OPENROWSET('MSIDXS','DQLiterature',\
             'Select Path, Directory, FileName, size, Create, Write from SCOPE() \
              where CONTAINS(''\"parallel database\" OR \"heterogeneous query\"'')') AS FS",
        )
        .unwrap();
    assert!(!r.is_empty());
    for row in &r.rows {
        let Value::Str(path) = row.get(0) else {
            panic!("path must be a string")
        };
        assert!(
            path.contains("databases"),
            "only database-topic docs match: {path}"
        );
    }
    // Rank-ordered TOP via the provider's rank column.
    let r = engine
        .query(
            "SELECT FS.path, FS.rank FROM OPENROWSET('MSIDXS','DQLiterature',\
             'Select path, rank from SCOPE() where CONTAINS(''database'')') AS FS \
             WHERE FS.rank > 100",
        )
        .unwrap();
    assert!(!r.is_empty());
}

/// The §2.3 scenario: CONTAINS over a relational table joined on row
/// identity.
#[test]
fn contains_over_relational_table() {
    let engine = Engine::new("local");
    engine
        .create_table(
            TableDef::new(
                "articles",
                Schema::new(vec![
                    Column::not_null("id", DataType::Int),
                    Column::not_null("title", DataType::Str),
                    Column::new("body", DataType::Str),
                ]),
            )
            .with_index("pk_articles", &["id"], true),
        )
        .unwrap();
    engine
        .insert(
            "articles",
            &[
                Row::new(vec![
                    Value::Int(1),
                    Value::Str("running guide".into()),
                    Value::Str("The runner ran a marathon in the rain".into()),
                ]),
                Row::new(vec![
                    Value::Int(2),
                    Value::Str("db notes".into()),
                    Value::Str("Parallel database systems overview".into()),
                ]),
                Row::new(vec![
                    Value::Int(3),
                    Value::Str("cooking".into()),
                    Value::Str("Pasta with garlic".into()),
                ]),
            ],
        )
        .unwrap();
    engine
        .create_fulltext_index("articles", "id", "body", "articles_ft")
        .unwrap();

    // Inflection folding: 'run' matches 'runner'/'ran' (§2.3).
    let r = engine
        .query("SELECT title FROM articles WHERE CONTAINS(body, 'run') ORDER BY title")
        .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.value(0, 0), &Value::Str("running guide".into()));

    // Full-text predicate combined with relational predicates.
    let r = engine
        .query("SELECT id FROM articles WHERE CONTAINS(body, 'database OR pasta') AND id > 2")
        .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.value(0, 0), &Value::Int(3));

    // Index maintenance after DML through the engine.
    engine.execute("DELETE FROM articles WHERE id = 2").unwrap();
    let r = engine
        .query("SELECT id FROM articles WHERE CONTAINS(body, 'database')")
        .unwrap();
    assert!(r.is_empty(), "deleted rows must leave the full-text index");
}

/// The §2.4 salesman scenario: unanswered mail from Seattle customers in
/// the last two days, joining a mail file with an Access-style customer
/// table.
#[test]
fn salesman_email_scenario() {
    let today = parse_date("2004-06-14").unwrap();
    let engine = Engine::new("local");

    // Mail file provider (d:\mail\smith.mmf).
    let spec = MailboxSpec {
        owner: "smith@corp.example".into(),
        customers: MailboxSpec::customer_addresses(12),
        inbound: 40,
        reply_fraction: 0.5,
        today,
    };
    let mailbox =
        MailboxProvider::from_text("d:\\mail\\smith.mmf", &generate_mailbox(&spec, 21)).unwrap();
    engine.add_linked_server("mail", Arc::new(mailbox)).unwrap();

    // Access-style Customers table: half the customers are in Seattle.
    let storage = Arc::new(StorageEngine::new("enterprise.mdb"));
    storage
        .create_table(TableDef::new(
            "Customers",
            Schema::new(vec![
                Column::not_null("Emailaddr", DataType::Str),
                Column::not_null("City", DataType::Str),
                Column::new("Address", DataType::Str),
            ]),
        ))
        .unwrap();
    let rows: Vec<Row> = spec
        .customers
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            Row::new(vec![
                Value::Str(addr.clone()),
                Value::Str(if i % 2 == 0 { "Seattle" } else { "Portland" }.into()),
                Value::Str(format!("{i} Pine St")),
            ])
        })
        .collect();
    storage.insert_rows("Customers", &rows).unwrap();
    engine
        .add_linked_server(
            "access",
            Arc::new(
                MiniSqlProvider::new("enterprise.mdb", storage, SqlSupport::OdbcCore).unwrap(),
            ),
        )
        .unwrap();

    // The paper's §2.4 query, in the engine's dialect.
    let sql = "SELECT m1.msgid, m1.from_addr, c.Address \
               FROM mail.mbx.dbo.messages m1, access.db.dbo.Customers c \
               WHERE m1.date >= DATE '2004-06-12' \
                 AND m1.from_addr = c.Emailaddr AND c.City = 'Seattle' \
                 AND m1.to_addr = 'smith@corp.example' \
                 AND NOT EXISTS (SELECT * FROM mail.mbx.dbo.messages m2 \
                                 WHERE m2.inreplyto = m1.msgid)";
    let r = engine.query(sql).unwrap();
    assert!(!r.is_empty(), "some recent Seattle mail must be unanswered");
    // Cross-check each result row against first principles.
    let all_mail = engine
        .query("SELECT msgid, from_addr, date, inreplyto FROM mail.mbx.dbo.messages")
        .unwrap();
    for row in &r.rows {
        let Value::Str(msgid) = row.get(0) else {
            panic!()
        };
        let parent = all_mail
            .rows
            .iter()
            .find(|m| matches!(m.get(0), Value::Str(s) if s == msgid))
            .expect("result must be a real message");
        assert!(matches!(parent.get(2), Value::Date(d) if *d >= today - 2));
        let answered = all_mail
            .rows
            .iter()
            .any(|m| matches!(m.get(3), Value::Str(s) if s == msgid));
        assert!(!answered, "{msgid} was answered");
    }
}

#[test]
fn three_source_federated_join() {
    // Local + remote engine + CSV in one statement.
    let engine = Engine::new("local");
    engine
        .create_table(TableDef::new(
            "regions",
            Schema::new(vec![
                Column::not_null("region_id", DataType::Int),
                Column::not_null("region", DataType::Str),
            ]),
        ))
        .unwrap();
    engine
        .insert(
            "regions",
            &[
                Row::new(vec![Value::Int(1), Value::Str("west".into())]),
                Row::new(vec![Value::Int(2), Value::Str("east".into())]),
            ],
        )
        .unwrap();

    let remote = Engine::new("sales-engine");
    remote
        .create_table(TableDef::new(
            "sales",
            Schema::new(vec![
                Column::not_null("store_id", DataType::Int),
                Column::not_null("amount", DataType::Int),
            ]),
        ))
        .unwrap();
    remote
        .storage()
        .insert_rows(
            "sales",
            &[
                Row::new(vec![Value::Int(10), Value::Int(500)]),
                Row::new(vec![Value::Int(11), Value::Int(700)]),
                Row::new(vec![Value::Int(10), Value::Int(250)]),
            ],
        )
        .unwrap();
    let link = NetworkLink::new("sales-link", NetworkConfig::lan());
    engine
        .add_linked_server(
            "salesrv",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(remote)),
                link,
            )),
        )
        .unwrap();

    let csv = CsvProvider::new(
        "files",
        &[("stores.csv", "store_id,region_id\n10,1\n11,2\n")],
    )
    .unwrap();
    engine.add_linked_server("files", Arc::new(csv)).unwrap();

    let r = engine
        .query(
            "SELECT r.region, SUM(s.amount) AS total \
             FROM regions r, files.fs.dbo.[stores.csv] st, salesrv.db.dbo.sales s \
             WHERE r.region_id = st.region_id AND st.store_id = s.store_id \
             GROUP BY r.region ORDER BY r.region",
        )
        .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.value(0, 0), &Value::Str("east".into()));
    assert_eq!(r.value(0, 1), &Value::Int(700));
    assert_eq!(r.value(1, 1), &Value::Int(750));
}
