//! Observability integration tests: `EXPLAIN ANALYZE` over distributed
//! plans, the engine metrics registry and the recent-query ring.

use dhqp::{Engine, EngineBuilder, EngineDataSource, StatementKind};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_storage::TableDef;
use dhqp_types::{Column, DataType, Row, Schema, Value};
use dhqp_workload::tpch::{self, TpchScale};
use std::sync::Arc;
use std::time::Duration;

/// Local engine + two remote servers: remote0 holds customer, remote1
/// holds supplier, nation stays local — the Figure 4 layout split across
/// two links so a join must touch both servers.
fn two_server_setup(scale: TpchScale) -> (Engine, NetworkLink, NetworkLink) {
    use rand::SeedableRng;
    let remote0 = Engine::new("remote0-engine");
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    tpch::create_customer(remote0.storage(), &scale, &mut rng).unwrap();
    remote0.storage().analyze("customer", 24).unwrap();

    let remote1 = Engine::new("remote1-engine");
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    tpch::create_supplier(remote1.storage(), &scale, &mut rng).unwrap();
    remote1.storage().analyze("supplier", 24).unwrap();

    let local = Engine::new("local");
    tpch::create_nation(local.storage(), &scale).unwrap();
    local.analyze("nation", 8).unwrap();

    let link0 = NetworkLink::new("link-remote0", NetworkConfig::lan());
    let link1 = NetworkLink::new("link-remote1", NetworkConfig::lan());
    local
        .add_linked_server(
            "remote0",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(remote0)),
                link0.clone(),
            )),
        )
        .unwrap();
    local
        .add_linked_server(
            "remote1",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(remote1)),
                link1.clone(),
            )),
        )
        .unwrap();
    (local, link0, link1)
}

const TWO_SERVER_JOIN: &str = "SELECT c.c_name, c.c_address, c.c_phone \
     FROM remote0.tpch.dbo.customer c, remote1.tpch.dbo.supplier s, nation n \
     WHERE c.c_nationkey = n.n_nationkey AND n.n_nationkey = s.s_nationkey";

#[test]
fn explain_analyze_distributed_join_reports_wire_activity() {
    let (local, _l0, _l1) = two_server_setup(TpchScale::tiny());
    let expected_rows = local.query(TWO_SERVER_JOIN).unwrap().len();
    assert!(expected_rows > 0, "scenario must produce rows");

    let report = local.execute_analyze(TWO_SERVER_JOIN).unwrap();
    assert_eq!(
        report.result.len(),
        expected_rows,
        "ANALYZE returns the query's own rows"
    );

    // The root operator's actual row count matches what came back.
    let root = report.node(0).expect("root node executed");
    assert_eq!(root.rows, expected_rows as u64);

    // Both servers appear as remote nodes with shipped text and nonzero
    // traffic deltas.
    let remotes = report.remote_nodes();
    let servers: Vec<&str> = remotes
        .iter()
        .map(|(_, rt)| rt.remote.as_ref().unwrap().server.as_str())
        .collect();
    assert!(servers.contains(&"remote0"), "remote0 missing: {servers:?}");
    assert!(servers.contains(&"remote1"), "remote1 missing: {servers:?}");
    for (id, rt) in &remotes {
        let trace = rt.remote.as_ref().unwrap();
        assert!(!trace.sql.is_empty(), "node {id} has no shipped text");
        assert!(trace.traffic.requests > 0, "node {id} recorded no requests");
        assert!(trace.traffic.bytes > 0, "node {id} recorded no bytes");
        assert!(rt.rows > 0, "node {id} produced no rows");
    }

    // The rendered report carries the wire and SQL annotations.
    let rendered = report.render();
    assert!(rendered.contains("actual_rows="), "{rendered}");
    assert!(rendered.contains("[wire @remote0:"), "{rendered}");
    assert!(rendered.contains("[wire @remote1:"), "{rendered}");
    assert!(rendered.contains("[shipped: "), "{rendered}");
    assert!(
        rendered.contains("rules fired"),
        "optimizer telemetry missing:\n{rendered}"
    );
}

#[test]
fn figure4_cardinality_estimates_within_bounds() {
    // Satellite: cardinality sanity over the Figure 4 remote-join plan.
    // With fresh statistics on every table, the root estimate must land
    // within an order of magnitude of the actual row count.
    let (local, _l0, _l1) = two_server_setup(TpchScale::small());
    let report = local.execute_analyze(TWO_SERVER_JOIN).unwrap();
    let actual = report.node(0).unwrap().rows as f64;
    let est = report.plan.est_rows;
    assert!(actual > 0.0);
    assert!(
        est <= actual * 10.0 && est >= actual / 10.0,
        "root estimate off by more than 10x: est={est:.0} actual={actual:.0}\n{}",
        report.render()
    );
}

#[test]
fn explain_and_explain_analyze_through_execute() {
    let (local, _l0, _l1) = two_server_setup(TpchScale::tiny());

    let r = local.execute("EXPLAIN SELECT n_name FROM nation").unwrap();
    assert_eq!(r.schema.columns()[0].name, "plan");
    let text: Vec<String> = r.rows.iter().map(|row| row.get(0).to_string()).collect();
    assert!(text.iter().any(|l| l.contains("est_rows")), "{text:?}");
    assert!(
        !text.iter().any(|l| l.contains("actual_rows")),
        "plain EXPLAIN must not execute: {text:?}"
    );

    let r = local
        .execute("EXPLAIN ANALYZE SELECT n_name FROM nation")
        .unwrap();
    let text: Vec<String> = r.rows.iter().map(|row| row.get(0).to_string()).collect();
    assert!(text.iter().any(|l| l.contains("actual_rows=")), "{text:?}");

    let m = local.metrics();
    assert_eq!(m.explains, 1);
    assert_eq!(m.explain_analyzes, 1);
}

#[test]
fn metrics_count_statements_and_recent_queries() {
    let engine = Engine::new("local");
    engine
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();

    engine.execute("INSERT INTO t (a) VALUES (1)").unwrap();
    engine.execute("INSERT INTO t (a) VALUES (2)").unwrap();
    engine.execute("UPDATE t SET a = 3 WHERE a = 2").unwrap();
    engine.execute("SELECT a FROM t").unwrap();
    engine.execute("DELETE FROM t WHERE a = 3").unwrap();
    assert!(engine.execute("FROB GARBAGE").is_err());
    assert!(engine.execute("SELECT missing_col FROM t").is_err());

    let m = engine.metrics();
    assert_eq!(m.inserts, 2);
    assert_eq!(m.updates, 1);
    assert_eq!(m.selects, 2, "failed binds still count as SELECT attempts");
    assert_eq!(m.deletes, 1);
    assert_eq!(m.statement_errors, 2, "one parse error + one bind error");
    assert_eq!(m.statements(), 6, "parse failures are not classified");

    let recent = engine.recent_queries();
    assert_eq!(recent.len(), 6, "unparseable text never reaches the ring");
    assert_eq!(recent[0].kind, StatementKind::Insert);
    assert_eq!(recent[0].rows, 1);
    assert!(recent[0].ok);
    let last = recent.last().unwrap();
    assert_eq!(last.kind, StatementKind::Select);
    assert_eq!(last.sql, "SELECT missing_col FROM t");
    assert!(!last.ok);
}

#[test]
fn metadata_cache_hits_on_repeat_queries() {
    let (local, _l0, _l1) = two_server_setup(TpchScale::tiny());
    let sql = "SELECT COUNT(*) AS n FROM remote0.tpch.dbo.customer";

    local.query(sql).unwrap();
    let first = local.metrics();
    assert!(
        first.meta_cache_misses > 0,
        "first query must fetch remote metadata"
    );

    local.query(sql).unwrap();
    local.query(sql).unwrap();
    let after = local.metrics();
    assert_eq!(
        after.meta_cache_misses, first.meta_cache_misses,
        "repeat queries must not re-fetch metadata"
    );
    assert!(
        after.meta_cache_hits > first.meta_cache_hits,
        "repeat queries hit the cache"
    );
}

#[test]
fn linked_server_reregistration_invalidates_stale_metadata() {
    let local = Engine::new("local");

    let old = Engine::new("old-remote");
    old.create_table(TableDef::new(
        "t",
        Schema::new(vec![Column::not_null("a", DataType::Int)]),
    ))
    .unwrap();
    old.insert("t", &[Row::new(vec![Value::Int(1)])]).unwrap();
    local
        .add_linked_server("srv", Arc::new(EngineDataSource::new(old)))
        .unwrap();
    local.query("SELECT a FROM srv.db.dbo.t").unwrap();
    // The old schema has no column b.
    assert!(local.query("SELECT b FROM srv.db.dbo.t").is_err());

    // Re-point 'srv' at an engine whose t has an extra column. Without
    // invalidation the cached single-column schema would still bind.
    let new = Engine::new("new-remote");
    new.create_table(TableDef::new(
        "t",
        Schema::new(vec![
            Column::not_null("a", DataType::Int),
            Column::not_null("b", DataType::Str),
        ]),
    ))
    .unwrap();
    new.insert(
        "t",
        &[Row::new(vec![Value::Int(2), Value::Str("x".into())])],
    )
    .unwrap();
    local
        .add_linked_server("srv", Arc::new(EngineDataSource::new(new)))
        .unwrap();

    let r = local.query("SELECT b FROM srv.db.dbo.t").unwrap();
    assert_eq!(r.value(0, 0), &Value::Str("x".into()));
}

#[test]
fn dtc_outcomes_surface_in_metrics() {
    let engine = Engine::new("local");
    let remote = Engine::new("remote");
    remote
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();
    let source: Arc<dyn dhqp_oledb::DataSource> = Arc::new(EngineDataSource::new(remote));

    let mut txn = engine.dtc().begin();
    txn.enlist("srv", source.create_session().unwrap()).unwrap();
    txn.commit().unwrap();

    let mut txn = engine.dtc().begin();
    txn.enlist("srv", source.create_session().unwrap()).unwrap();
    txn.abort().unwrap();

    let m = engine.metrics();
    assert_eq!(m.dtc_commits, 1);
    assert_eq!(m.dtc_aborts, 1);
}

#[test]
fn fulltext_searches_are_counted() {
    let engine = Engine::new("local");
    engine
        .create_table(
            TableDef::new(
                "docs",
                Schema::new(vec![
                    Column::not_null("id", DataType::Int),
                    Column::new("body", DataType::Str),
                ]),
            )
            .with_index("pk_docs", &["id"], true),
        )
        .unwrap();
    engine
        .insert(
            "docs",
            &[Row::new(vec![
                Value::Int(1),
                Value::Str("distributed query processing".into()),
            ])],
        )
        .unwrap();
    engine
        .create_fulltext_index("docs", "id", "body", "docs_ft")
        .unwrap();
    assert_eq!(engine.metrics().fulltext_searches, 0);

    let r = engine
        .query("SELECT id FROM docs WHERE CONTAINS(body, 'query')")
        .unwrap();
    assert_eq!(r.len(), 1);
    assert!(engine.metrics().fulltext_searches >= 1);
}

#[test]
fn link_histograms_report_the_modeled_latency_distribution() {
    // A deterministic link: 3 ms per round trip, no bandwidth term, no
    // sleeping — every percentile must come out of the accounting model.
    let cfg = NetworkConfig {
        latency_us: 3_000,
        bytes_per_ms: 0,
        simulate_delay: false,
    };
    let remote = Engine::new("remote");
    remote
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();
    remote
        .insert("t", &[Row::new(vec![Value::Int(1)])])
        .unwrap();
    let local = Engine::new("local");
    let link = NetworkLink::new("fixed-link", cfg);
    local
        .add_linked_server(
            "srv",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(remote)),
                link.clone(),
            )),
        )
        .unwrap();
    for _ in 0..5 {
        local.query("SELECT a FROM srv.db.dbo.t").unwrap();
    }

    let hist = link.latency_histogram();
    assert!(hist.count >= 5, "every round trip recorded: {hist:?}");
    let summary = link.latency_summary();
    assert_eq!(summary.max_us, 3_000, "modeled time is exact");
    // 3 000 µs lands in the [2048, 4096) log bucket whose upper edge the
    // percentile clamps to the observed max — so with one fixed latency
    // every percentile is exactly the configured value.
    assert_eq!(summary.p50_us, 3_000);
    assert_eq!(summary.p95_us, 3_000);
    assert_eq!(summary.p99_us, 3_000);
    assert!(
        link.payload_histogram().count > 0,
        "payload sizes recorded alongside latencies"
    );

    // The same distribution surfaces in EXPLAIN ANALYZE's wire lines.
    let rendered = local
        .execute_analyze("SELECT a FROM srv.db.dbo.t")
        .unwrap()
        .render();
    assert!(rendered.contains("[link latency: p50=3.00ms"), "{rendered}");
}

#[test]
fn slow_query_log_captures_threshold_crossers() {
    // A zero threshold turns the slow-query ring into "everything".
    let engine = EngineBuilder::new("local")
        .slow_query_threshold(Some(Duration::ZERO))
        .build();
    engine
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();
    engine.query("SELECT a FROM t").unwrap();
    let slow = engine.slow_queries();
    assert_eq!(slow.len(), 1);
    assert_eq!(slow[0].sql, "SELECT a FROM t");

    // Without an armed threshold nothing is retained.
    let quiet = Engine::new("quiet");
    quiet
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();
    quiet.query("SELECT a FROM t").unwrap();
    assert!(quiet.slow_queries().is_empty());
}

#[test]
fn explain_analyze_reports_self_time_with_adaptive_units() {
    let (local, _l0, _l1) = two_server_setup(TpchScale::tiny());
    let rendered = local.execute_analyze(TWO_SERVER_JOIN).unwrap().render();
    assert!(rendered.contains(" time="), "{rendered}");
    assert!(rendered.contains(" self="), "{rendered}");
    // Sub-millisecond operators render in µs, not 0.00ms.
    assert!(
        !rendered.contains("self=0.00ms"),
        "adaptive units collapsed: {rendered}"
    );
}

#[test]
fn spool_hits_and_remote_roundtrips_are_counted() {
    let (local, _l0, _l1) = two_server_setup(TpchScale::tiny());
    // Outer join pins the remote table on the inner side; the spool
    // answers every rescan after the first from its cache.
    let sql = "SELECT COUNT(*) AS n FROM nation n LEFT OUTER JOIN remote1.tpch.dbo.supplier s \
               ON s.s_suppkey > n.n_nationkey";
    local.query(sql).unwrap();
    let m = local.metrics();
    assert!(
        m.remote_roundtrips > 0,
        "the supplier fetch crosses the link"
    );
    assert!(m.spool_builds >= 1, "the inner subtree is spooled");
    assert!(
        m.spool_hits >= 1,
        "rescans are served from the spool: {m:?}"
    );
}
