//! Observability integration tests: `EXPLAIN ANALYZE` over distributed
//! plans, the engine metrics registry and the recent-query ring.

use dhqp::{
    Engine, EngineBuilder, EngineDataSource, EventConfig, EventKind, FaultConfig, ParallelConfig,
    RetryPolicy, StatementKind, TraceConfig, WaitClass,
};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_storage::TableDef;
use dhqp_types::{Column, DataType, Row, Schema, Value};
use dhqp_workload::tpch::{self, TpchScale};
use std::sync::Arc;
use std::time::Duration;

/// Local engine + two remote servers: remote0 holds customer, remote1
/// holds supplier, nation stays local — the Figure 4 layout split across
/// two links so a join must touch both servers.
fn two_server_setup(scale: TpchScale) -> (Engine, NetworkLink, NetworkLink) {
    use rand::SeedableRng;
    let remote0 = Engine::new("remote0-engine");
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    tpch::create_customer(remote0.storage(), &scale, &mut rng).unwrap();
    remote0.storage().analyze("customer", 24).unwrap();

    let remote1 = Engine::new("remote1-engine");
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    tpch::create_supplier(remote1.storage(), &scale, &mut rng).unwrap();
    remote1.storage().analyze("supplier", 24).unwrap();

    let local = Engine::new("local");
    tpch::create_nation(local.storage(), &scale).unwrap();
    local.analyze("nation", 8).unwrap();

    let link0 = NetworkLink::new("link-remote0", NetworkConfig::lan());
    let link1 = NetworkLink::new("link-remote1", NetworkConfig::lan());
    local
        .add_linked_server(
            "remote0",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(remote0)),
                link0.clone(),
            )),
        )
        .unwrap();
    local
        .add_linked_server(
            "remote1",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(remote1)),
                link1.clone(),
            )),
        )
        .unwrap();
    (local, link0, link1)
}

const TWO_SERVER_JOIN: &str = "SELECT c.c_name, c.c_address, c.c_phone \
     FROM remote0.tpch.dbo.customer c, remote1.tpch.dbo.supplier s, nation n \
     WHERE c.c_nationkey = n.n_nationkey AND n.n_nationkey = s.s_nationkey";

#[test]
fn explain_analyze_distributed_join_reports_wire_activity() {
    let (local, _l0, _l1) = two_server_setup(TpchScale::tiny());
    let expected_rows = local.query(TWO_SERVER_JOIN).unwrap().len();
    assert!(expected_rows > 0, "scenario must produce rows");

    let report = local.execute_analyze(TWO_SERVER_JOIN).unwrap();
    assert_eq!(
        report.result.len(),
        expected_rows,
        "ANALYZE returns the query's own rows"
    );

    // The root operator's actual row count matches what came back.
    let root = report.node(0).expect("root node executed");
    assert_eq!(root.rows, expected_rows as u64);

    // Both servers appear as remote nodes with shipped text and nonzero
    // traffic deltas.
    let remotes = report.remote_nodes();
    let servers: Vec<&str> = remotes
        .iter()
        .map(|(_, rt)| rt.remote.as_ref().unwrap().server.as_str())
        .collect();
    assert!(servers.contains(&"remote0"), "remote0 missing: {servers:?}");
    assert!(servers.contains(&"remote1"), "remote1 missing: {servers:?}");
    for (id, rt) in &remotes {
        let trace = rt.remote.as_ref().unwrap();
        assert!(!trace.sql.is_empty(), "node {id} has no shipped text");
        assert!(trace.traffic.requests > 0, "node {id} recorded no requests");
        assert!(trace.traffic.bytes > 0, "node {id} recorded no bytes");
        assert!(rt.rows > 0, "node {id} produced no rows");
    }

    // The rendered report carries the wire and SQL annotations.
    let rendered = report.render();
    assert!(rendered.contains("actual_rows="), "{rendered}");
    assert!(rendered.contains("[wire @remote0:"), "{rendered}");
    assert!(rendered.contains("[wire @remote1:"), "{rendered}");
    assert!(rendered.contains("[shipped: "), "{rendered}");
    assert!(
        rendered.contains("rules fired"),
        "optimizer telemetry missing:\n{rendered}"
    );
}

#[test]
fn figure4_cardinality_estimates_within_bounds() {
    // Satellite: cardinality sanity over the Figure 4 remote-join plan.
    // With fresh statistics on every table, the root estimate must land
    // within an order of magnitude of the actual row count.
    let (local, _l0, _l1) = two_server_setup(TpchScale::small());
    let report = local.execute_analyze(TWO_SERVER_JOIN).unwrap();
    let actual = report.node(0).unwrap().rows as f64;
    let est = report.plan.est_rows;
    assert!(actual > 0.0);
    assert!(
        est <= actual * 10.0 && est >= actual / 10.0,
        "root estimate off by more than 10x: est={est:.0} actual={actual:.0}\n{}",
        report.render()
    );
}

#[test]
fn explain_and_explain_analyze_through_execute() {
    let (local, _l0, _l1) = two_server_setup(TpchScale::tiny());

    let r = local.execute("EXPLAIN SELECT n_name FROM nation").unwrap();
    assert_eq!(r.schema.columns()[0].name, "plan");
    let text: Vec<String> = r.rows.iter().map(|row| row.get(0).to_string()).collect();
    assert!(text.iter().any(|l| l.contains("est_rows")), "{text:?}");
    assert!(
        !text.iter().any(|l| l.contains("actual_rows")),
        "plain EXPLAIN must not execute: {text:?}"
    );

    let r = local
        .execute("EXPLAIN ANALYZE SELECT n_name FROM nation")
        .unwrap();
    let text: Vec<String> = r.rows.iter().map(|row| row.get(0).to_string()).collect();
    assert!(text.iter().any(|l| l.contains("actual_rows=")), "{text:?}");

    let m = local.metrics();
    assert_eq!(m.explains, 1);
    assert_eq!(m.explain_analyzes, 1);
}

#[test]
fn metrics_count_statements_and_recent_queries() {
    let engine = Engine::new("local");
    engine
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();

    engine.execute("INSERT INTO t (a) VALUES (1)").unwrap();
    engine.execute("INSERT INTO t (a) VALUES (2)").unwrap();
    engine.execute("UPDATE t SET a = 3 WHERE a = 2").unwrap();
    engine.execute("SELECT a FROM t").unwrap();
    engine.execute("DELETE FROM t WHERE a = 3").unwrap();
    assert!(engine.execute("FROB GARBAGE").is_err());
    assert!(engine.execute("SELECT missing_col FROM t").is_err());

    let m = engine.metrics();
    assert_eq!(m.inserts, 2);
    assert_eq!(m.updates, 1);
    assert_eq!(m.selects, 2, "failed binds still count as SELECT attempts");
    assert_eq!(m.deletes, 1);
    assert_eq!(m.statement_errors, 2, "one parse error + one bind error");
    assert_eq!(m.statements(), 6, "parse failures are not classified");

    let recent = engine.recent_queries();
    assert_eq!(recent.len(), 6, "unparseable text never reaches the ring");
    assert_eq!(recent[0].kind, StatementKind::Insert);
    assert_eq!(recent[0].rows, 1);
    assert!(recent[0].ok);
    let last = recent.last().unwrap();
    assert_eq!(last.kind, StatementKind::Select);
    assert_eq!(last.sql, "SELECT missing_col FROM t");
    assert!(!last.ok);
}

#[test]
fn metadata_cache_hits_on_repeat_queries() {
    let (local, _l0, _l1) = two_server_setup(TpchScale::tiny());
    let sql = "SELECT COUNT(*) AS n FROM remote0.tpch.dbo.customer";

    local.query(sql).unwrap();
    let first = local.metrics();
    assert!(
        first.meta_cache_misses > 0,
        "first query must fetch remote metadata"
    );

    local.query(sql).unwrap();
    local.query(sql).unwrap();
    let after = local.metrics();
    assert_eq!(
        after.meta_cache_misses, first.meta_cache_misses,
        "repeat queries must not re-fetch metadata"
    );
    assert!(
        after.meta_cache_hits > first.meta_cache_hits,
        "repeat queries hit the cache"
    );
}

#[test]
fn linked_server_reregistration_invalidates_stale_metadata() {
    let local = Engine::new("local");

    let old = Engine::new("old-remote");
    old.create_table(TableDef::new(
        "t",
        Schema::new(vec![Column::not_null("a", DataType::Int)]),
    ))
    .unwrap();
    old.insert("t", &[Row::new(vec![Value::Int(1)])]).unwrap();
    local
        .add_linked_server("srv", Arc::new(EngineDataSource::new(old)))
        .unwrap();
    local.query("SELECT a FROM srv.db.dbo.t").unwrap();
    // The old schema has no column b.
    assert!(local.query("SELECT b FROM srv.db.dbo.t").is_err());

    // Re-point 'srv' at an engine whose t has an extra column. Without
    // invalidation the cached single-column schema would still bind.
    let new = Engine::new("new-remote");
    new.create_table(TableDef::new(
        "t",
        Schema::new(vec![
            Column::not_null("a", DataType::Int),
            Column::not_null("b", DataType::Str),
        ]),
    ))
    .unwrap();
    new.insert(
        "t",
        &[Row::new(vec![Value::Int(2), Value::Str("x".into())])],
    )
    .unwrap();
    local
        .add_linked_server("srv", Arc::new(EngineDataSource::new(new)))
        .unwrap();

    let r = local.query("SELECT b FROM srv.db.dbo.t").unwrap();
    assert_eq!(r.value(0, 0), &Value::Str("x".into()));
}

#[test]
fn dtc_outcomes_surface_in_metrics() {
    let engine = Engine::new("local");
    let remote = Engine::new("remote");
    remote
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();
    let source: Arc<dyn dhqp_oledb::DataSource> = Arc::new(EngineDataSource::new(remote));

    let mut txn = engine.dtc().begin();
    txn.enlist("srv", source.create_session().unwrap()).unwrap();
    txn.commit().unwrap();

    let mut txn = engine.dtc().begin();
    txn.enlist("srv", source.create_session().unwrap()).unwrap();
    txn.abort().unwrap();

    let m = engine.metrics();
    assert_eq!(m.dtc_commits, 1);
    assert_eq!(m.dtc_aborts, 1);
}

#[test]
fn fulltext_searches_are_counted() {
    let engine = Engine::new("local");
    engine
        .create_table(
            TableDef::new(
                "docs",
                Schema::new(vec![
                    Column::not_null("id", DataType::Int),
                    Column::new("body", DataType::Str),
                ]),
            )
            .with_index("pk_docs", &["id"], true),
        )
        .unwrap();
    engine
        .insert(
            "docs",
            &[Row::new(vec![
                Value::Int(1),
                Value::Str("distributed query processing".into()),
            ])],
        )
        .unwrap();
    engine
        .create_fulltext_index("docs", "id", "body", "docs_ft")
        .unwrap();
    assert_eq!(engine.metrics().fulltext_searches, 0);

    let r = engine
        .query("SELECT id FROM docs WHERE CONTAINS(body, 'query')")
        .unwrap();
    assert_eq!(r.len(), 1);
    assert!(engine.metrics().fulltext_searches >= 1);
}

#[test]
fn link_histograms_report_the_modeled_latency_distribution() {
    // A deterministic link: 3 ms per round trip, no bandwidth term, no
    // sleeping — every percentile must come out of the accounting model.
    let cfg = NetworkConfig {
        latency_us: 3_000,
        bytes_per_ms: 0,
        simulate_delay: false,
    };
    let remote = Engine::new("remote");
    remote
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();
    remote
        .insert("t", &[Row::new(vec![Value::Int(1)])])
        .unwrap();
    let local = Engine::new("local");
    let link = NetworkLink::new("fixed-link", cfg);
    local
        .add_linked_server(
            "srv",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(remote)),
                link.clone(),
            )),
        )
        .unwrap();
    for _ in 0..5 {
        local.query("SELECT a FROM srv.db.dbo.t").unwrap();
    }

    let hist = link.latency_histogram();
    assert!(hist.count >= 5, "every round trip recorded: {hist:?}");
    let summary = link.latency_summary();
    assert_eq!(summary.max_us, 3_000, "modeled time is exact");
    // 3 000 µs lands in the [2048, 4096) log bucket whose upper edge the
    // percentile clamps to the observed max — so with one fixed latency
    // every percentile is exactly the configured value.
    assert_eq!(summary.p50_us, 3_000);
    assert_eq!(summary.p95_us, 3_000);
    assert_eq!(summary.p99_us, 3_000);
    assert!(
        link.payload_histogram().count > 0,
        "payload sizes recorded alongside latencies"
    );

    // The same distribution surfaces in EXPLAIN ANALYZE's wire lines.
    let rendered = local
        .execute_analyze("SELECT a FROM srv.db.dbo.t")
        .unwrap()
        .render();
    assert!(rendered.contains("[link latency: p50=3.00ms"), "{rendered}");
}

#[test]
fn slow_query_log_captures_threshold_crossers() {
    // A zero threshold turns the slow-query ring into "everything".
    let engine = EngineBuilder::new("local")
        .slow_query_threshold(Some(Duration::ZERO))
        .build();
    engine
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();
    engine.query("SELECT a FROM t").unwrap();
    let slow = engine.slow_queries();
    assert_eq!(slow.len(), 1);
    assert_eq!(slow[0].sql, "SELECT a FROM t");

    // Without an armed threshold nothing is retained.
    let quiet = Engine::new("quiet");
    quiet
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();
    quiet.query("SELECT a FROM t").unwrap();
    assert!(quiet.slow_queries().is_empty());
}

#[test]
fn explain_analyze_reports_self_time_with_adaptive_units() {
    let (local, _l0, _l1) = two_server_setup(TpchScale::tiny());
    let rendered = local.execute_analyze(TWO_SERVER_JOIN).unwrap().render();
    assert!(rendered.contains(" time="), "{rendered}");
    assert!(rendered.contains(" self="), "{rendered}");
    // Sub-millisecond operators render in µs, not 0.00ms.
    assert!(
        !rendered.contains("self=0.00ms"),
        "adaptive units collapsed: {rendered}"
    );
}

/// Head engine federating four members that hold the seven `lineitem_9x`
/// partitions, each behind a *timed* LAN link (so blocking is real wall
/// time) armed with exactly one transient fault.
fn flaky_parallel_federation() -> (Engine, Vec<NetworkLink>) {
    let head = Engine::new("head");
    let members: Vec<Engine> = (1..=4)
        .map(|i| Engine::new(format!("member{i}-engine")))
        .collect();
    let engines: Vec<&dhqp_storage::StorageEngine> =
        members.iter().map(|e| e.storage().as_ref()).collect();
    let parts = tpch::create_lineitem_partitions(&engines, &TpchScale::tiny(), 17).unwrap();

    let mut links = Vec::new();
    for (i, m) in members.iter().enumerate() {
        let link = NetworkLink::new(format!("member{}", i + 1), NetworkConfig::lan_timed());
        let inner: Arc<dyn dhqp_oledb::DataSource> = Arc::new(EngineDataSource::new(m.clone()));
        let wrapped = NetworkedDataSource::with_faults(
            inner,
            link.clone(),
            FaultConfig::one_transient_per_link(42),
        );
        head.add_linked_server(&format!("member{}", i + 1), Arc::new(wrapped))
            .unwrap();
        links.push(link);
    }
    let view_members = parts
        .into_iter()
        .map(|(idx, table, domain)| (Some(format!("member{}", idx + 1)), table, domain))
        .collect();
    head.define_partitioned_view("lineitem_all", "l_commitdate", view_members)
        .unwrap();
    (head, links)
}

const FEDERATION_SCAN: &str = "SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem_all";

fn fast_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        attempt_deadline: None,
        query_deadline: None,
    }
}

/// The PR's acceptance scenario: one parallel, fault-injected federation
/// query must light up the wait-stats DMV consistently with the per-query
/// `[waits:]` report, surface retry/fault events through the event bus,
/// and export a Perfetto trace with one track per exchange worker.
#[test]
fn parallel_flaky_federation_reports_waits_events_and_worker_tracks() {
    let (head, links) = flaky_parallel_federation();
    head.set_retry_policy(fast_retries());
    head.set_parallel_config(ParallelConfig::parallel());
    head.set_event_config(EventConfig::all());
    head.set_trace_config(TraceConfig::enabled());

    let report = head.execute_analyze(FEDERATION_SCAN).unwrap();
    let scale = TpchScale::tiny();
    assert_eq!(
        report.result.len(),
        scale.orders * scale.lineitems_per_order,
        "faults and instrumentation must not change the answer"
    );
    let faults: u64 = links.iter().map(NetworkLink::faults_injected).sum();
    assert_eq!(faults, links.len() as u64, "one injected fault per link");

    // (a) Per-query wait accounting: the statement blocked on the wire,
    // on retry backoff and on the exchange's bounded channel.
    let waits = report
        .waits
        .expect("EXPLAIN ANALYZE carries per-query waits");
    let net = waits.get(WaitClass::NetworkIo);
    assert!(
        net.count > 0 && net.total_us > 0,
        "no NETWORK_IO: {waits:?}"
    );
    let backoff = waits.get(WaitClass::RetryBackoff);
    assert!(
        backoff.count >= faults && backoff.total_us > 0,
        "every injected fault sleeps one backoff: {waits:?}"
    );
    let exchange_waits = waits.get(WaitClass::ExchangeQueueFull).count
        + waits.get(WaitClass::ExchangeQueueEmpty).count;
    assert!(exchange_waits > 0, "no exchange-channel waits: {waits:?}");
    let rendered = report.render();
    assert!(rendered.contains("-- [waits:"), "{rendered}");
    assert!(rendered.contains("NETWORK_IO="), "{rendered}");
    assert!(rendered.contains("RETRY_BACKOFF="), "{rendered}");

    // Engine-cumulative accounting dominates the per-query snapshot, and
    // `sys.dm_os_wait_stats` serves exactly that accounting.
    let cumulative = head.wait_stats();
    for class in WaitClass::ALL {
        assert!(
            cumulative.get(class).count >= waits.get(class).count,
            "engine-cumulative {} lost waits",
            class.name()
        );
    }
    let r = head
        .query("SELECT wait_type, waiting_tasks_count, wait_time_ms FROM sys.dm_os_wait_stats")
        .unwrap();
    assert_eq!(r.rows.len(), WaitClass::ALL.len());
    for (class, expected) in [
        (WaitClass::NetworkIo, net),
        (WaitClass::RetryBackoff, backoff),
    ] {
        let row = r
            .rows
            .iter()
            .find(|row| row.get(0) == &Value::Str(class.name().to_string()))
            .unwrap_or_else(|| panic!("{} row missing", class.name()));
        assert!(
            matches!(row.get(1), Value::Int(n) if *n as u64 >= expected.count),
            "DMV undercounts {}: {row:?}",
            class.name()
        );
        assert!(
            matches!(row.get(2), Value::Float(ms) if *ms > 0.0),
            "DMV reports no wait time for {}: {row:?}",
            class.name()
        );
    }

    // (b) The event bus saw the faults, the retries and the exchange
    // lifecycle — both through the API and through the DMV.
    let events = head.recent_events();
    for kind in [
        EventKind::QueryStart,
        EventKind::QueryEnd,
        EventKind::FaultInjected,
        EventKind::RetryAttempt,
        EventKind::ExchangeSpawn,
        EventKind::ExchangeDrain,
    ] {
        assert!(
            events.iter().any(|e| e.kind == kind),
            "no {} event: {events:?}",
            kind.name()
        );
    }
    let retry = events
        .iter()
        .find(|e| e.kind == EventKind::RetryAttempt)
        .unwrap();
    assert!(
        retry.detail().contains("attempt=") && retry.detail().contains("backoff_ms="),
        "{retry:?}"
    );
    let r = head
        .query("SELECT kind FROM sys.dm_xe_recent_events")
        .unwrap();
    for kind in ["retry", "fault"] {
        assert!(
            r.rows
                .iter()
                .any(|row| row.get(0) == &Value::Str(kind.to_string())),
            "{kind} missing from dm_xe_recent_events: {r:?}"
        );
    }

    // (c) The Perfetto export is a trace_event document with one thread
    // track per exchange worker (7 branches under the 8-worker cap).
    let trace = report.trace.as_ref().expect("tracing was armed");
    let json = trace.to_chrome_json();
    assert!(
        json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
        "{json}"
    );
    assert!(json.ends_with("]}"), "{json}");
    assert!(json.contains("\"name\":\"query\""), "{json}");
    for worker in 0..7u64 {
        assert!(
            json.contains(&format!("\"name\":\"worker-{worker}\"")),
            "worker {worker} has no track:\n{json}"
        );
        assert!(
            json.contains(&format!("\"tid\":{}", worker + 1)),
            "worker {worker} shares a track:\n{json}"
        );
    }
}

#[test]
fn wait_accounting_covers_compile_stats_fetch_and_spool() {
    let (local, _l0, _l1) = two_server_setup(TpchScale::tiny());
    assert!(
        local.wait_stats().is_empty(),
        "programmatic setup runs no statements"
    );
    // The outer join pins the remote table on the inner side: the first
    // open builds a spool (SPOOL), binding fetches remote metadata and
    // statistics (STATS_FETCH) over the accounting-only link (NETWORK_IO),
    // and the statement itself compiles (PLAN_COMPILE).
    let sql = "SELECT COUNT(*) AS n FROM nation n LEFT OUTER JOIN remote1.tpch.dbo.supplier s \
               ON s.s_suppkey > n.n_nationkey";
    local.query(sql).unwrap();
    let w = local.wait_stats();
    for class in [
        WaitClass::PlanCompile,
        WaitClass::StatsFetch,
        WaitClass::Spool,
        WaitClass::NetworkIo,
    ] {
        assert!(
            w.get(class).count > 0,
            "no {} waits recorded: {w:?}",
            class.name()
        );
    }

    // DBCC SQLPERF CLEAR analog: zeroed without touching other state.
    local.clear_wait_stats();
    assert!(local.wait_stats().is_empty());
    assert!(local.metrics().selects >= 1, "clear leaves counters alone");
}

#[test]
fn reset_metrics_clears_counters_rings_and_waits() {
    let engine = Engine::new("local");
    engine
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();
    engine.execute("INSERT INTO t (a) VALUES (1)").unwrap();
    engine.query("SELECT a FROM t").unwrap();
    assert!(engine.metrics().statements() >= 2);
    assert!(!engine.recent_queries().is_empty());
    assert!(engine.wait_stats().get(WaitClass::PlanCompile).count > 0);

    engine.reset_metrics();
    let m = engine.metrics();
    assert_eq!(m.statements(), 0);
    assert_eq!(m.inserts, 0);
    assert!(engine.recent_queries().is_empty());
    assert!(engine.wait_stats().is_empty());

    // The engine keeps working, and counting resumes from zero.
    engine.query("SELECT a FROM t").unwrap();
    assert_eq!(engine.metrics().selects, 1);
    assert_eq!(engine.recent_queries().len(), 1);
}

#[test]
fn slow_query_events_carry_the_dominant_wait() {
    let remote = Engine::new("remote");
    remote
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();
    remote
        .insert("t", &[Row::new(vec![Value::Int(1)])])
        .unwrap();
    // Zero threshold: every statement is "slow". The builder arms events,
    // exercising the config path the `DHQP_EVENTS` env knob feeds.
    let local = EngineBuilder::new("local")
        .slow_query_threshold(Some(Duration::ZERO))
        .event_config(EventConfig::all())
        .build();
    let link = NetworkLink::new("slow-link", NetworkConfig::lan());
    local
        .add_linked_server(
            "srv",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(remote)),
                link,
            )),
        )
        .unwrap();
    local.query("SELECT a FROM srv.db.dbo.t").unwrap();

    // The slow-query ring attributes the statement to its dominant wait
    // class: the modeled 0.5 ms round trips dwarf compile time, unless
    // the CI matrix arms fault injection (DHQP_FAULT_SEED) and the retry
    // backoff sleeps are longer still. Either way the attribution is the
    // wire, not the compiler.
    let slow = local.slow_queries();
    let dominant = slow[0].dominant_wait.expect("slow query carries a wait");
    assert!(
        dominant == "NETWORK_IO" || dominant == "RETRY_BACKOFF",
        "{slow:?}"
    );

    // The event stream carries the same attribution.
    let event = local
        .recent_events()
        .into_iter()
        .find(|e| e.kind == EventKind::SlowQuery)
        .expect("zero threshold makes every statement slow");
    assert!(
        event
            .detail()
            .contains(&format!("dominant_wait={dominant}")),
        "{event:?}"
    );

    // Filtered configs drop other kinds: only() keeps what it names.
    assert!(local.event_config().wants(EventKind::QueryStart));
    local.set_event_config(EventConfig::only(&[EventKind::SlowQuery]));
    assert!(!local.event_config().wants(EventKind::QueryStart));
    local.query("SELECT a FROM srv.db.dbo.t").unwrap();
    let events = local.recent_events();
    assert!(!events.is_empty(), "slow_query still captured");
    assert!(
        events.iter().all(|e| e.kind == EventKind::SlowQuery),
        "{events:?}"
    );
}

#[test]
fn jsonl_sink_streams_engine_events() {
    use std::sync::Mutex;
    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Buf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let engine = Engine::new("local");
    engine.set_event_config(EventConfig::all());
    let buf = Buf::default();
    engine.add_event_sink(Box::new(dhqp::JsonlSink::new(buf.clone())));
    engine
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Int)]),
        ))
        .unwrap();
    engine.query("SELECT a FROM t").unwrap();

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "sink saw no events");
    assert!(
        lines.iter().all(|l| l.starts_with("{\"seq\":")),
        "{lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.contains("\"kind\":\"query_end\"")),
        "{lines:?}"
    );
}

#[test]
fn spool_hits_and_remote_roundtrips_are_counted() {
    let (local, _l0, _l1) = two_server_setup(TpchScale::tiny());
    // Outer join pins the remote table on the inner side; the spool
    // answers every rescan after the first from its cache.
    let sql = "SELECT COUNT(*) AS n FROM nation n LEFT OUTER JOIN remote1.tpch.dbo.supplier s \
               ON s.s_suppkey > n.n_nationkey";
    local.query(sql).unwrap();
    let m = local.metrics();
    assert!(
        m.remote_roundtrips > 0,
        "the supplier fetch crosses the link"
    );
    assert!(m.spool_builds >= 1, "the inner subtree is spooled");
    assert!(
        m.spool_hits >= 1,
        "rescans are served from the spool: {m:?}"
    );
}

#[test]
fn batch_flush_events_land_on_the_ring_behind_the_mask() {
    use dhqp::BatchConfig;
    let (local, link0, _l1) = two_server_setup(TpchScale::tiny());
    local.set_batch_config(BatchConfig::batched(4));
    local.set_event_config(EventConfig::only(&[EventKind::BatchFlush]));

    let r = local
        .query("SELECT c_custkey FROM remote0.tpch.dbo.customer")
        .unwrap();
    assert!(!r.rows.is_empty());

    let events = local.recent_events();
    assert!(!events.is_empty(), "no batch_flush events captured");
    assert!(
        events.iter().all(|e| e.kind == EventKind::BatchFlush),
        "mask must admit only batch_flush: {events:?}"
    );
    let flushes: Vec<_> = events
        .iter()
        .filter(|e| e.detail().contains("link=link-remote0"))
        .collect();
    assert!(
        !flushes.is_empty(),
        "no flush attributed to the customer link"
    );
    for e in &flushes {
        assert!(
            e.detail().contains("rows=") && e.detail().contains("bytes="),
            "flush event missing row/byte attrs: {e:?}"
        );
    }
    // Every result row shipped in exactly one flush: the event stream's
    // row total matches the rows the scan pulled across the wire (the
    // link's grand total also counts bind-time metadata reads, which go
    // row-at-a-time and emit no flushes).
    let event_rows: u64 = flushes
        .iter()
        .filter_map(|e| {
            e.detail()
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix("rows="))
                .and_then(|v| v.parse::<u64>().ok())
        })
        .sum();
    assert_eq!(event_rows, r.rows.len() as u64, "flush events lose rows");
    assert!(
        link0.snapshot().rows >= event_rows,
        "wire accounting can never trail the flushed rows"
    );

    // With batch_flush masked out, the same query records nothing.
    local.set_event_config(EventConfig::only(&[EventKind::SlowQuery]));
    local
        .query("SELECT c_custkey FROM remote0.tpch.dbo.customer")
        .unwrap();
    assert!(
        local.recent_events().is_empty(),
        "masked batch_flush still captured"
    );
}

// ---- Perfetto export validity -------------------------------------------

/// A minimal strict JSON value — the test's own parser, so "parseable"
/// means parseable by the grammar, not by substring luck.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Recursive-descent JSON parser: rejects trailing garbage, unterminated
/// strings, bad escapes and malformed numbers.
fn parse_json(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("non-string key {other:?}")),
                };
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex =
                                    b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) if c < 0x20 => {
                        return Err(format!("unescaped control byte 0x{c:02x}"))
                    }
                    Some(_) => {
                        // Multi-byte UTF-8 sequences pass through verbatim.
                        let start = *pos;
                        while *pos < b.len() && b[*pos] & 0xc0 == 0x80 || *pos == start {
                            *pos += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?,
                        );
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|t| t.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at {start}"))
        }
        None => Err("unexpected end of input".into()),
    }
}

/// The Perfetto export under parallel chaos must be *parseable* JSON (by
/// the grammar, not substring checks) whose trace_event stream gives each
/// exchange worker its own thread track with the wait slices riding on it.
#[test]
fn chrome_trace_export_parses_with_one_track_per_exchange_worker() {
    let (head, links) = flaky_parallel_federation();
    head.set_retry_policy(fast_retries());
    head.set_parallel_config(ParallelConfig::parallel());
    head.set_trace_config(TraceConfig::enabled());

    head.query(FEDERATION_SCAN).unwrap();
    let faults: u64 = links.iter().map(NetworkLink::faults_injected).sum();
    assert_eq!(faults, links.len() as u64, "chaos leg armed");

    let trace = head.last_trace().expect("tracing was armed");
    let json = trace.to_chrome_json();
    let doc = parse_json(&json).unwrap_or_else(|e| panic!("unparseable export: {e}\n{json}"));

    assert_eq!(
        doc.get("displayTimeUnit"),
        Some(&Json::Str("ms".to_string()))
    );
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents missing or not an array: {doc:?}");
    };
    assert!(!events.is_empty());
    // Every event is a complete slice with the full field set.
    for ev in events {
        assert_eq!(ev.get("ph"), Some(&Json::Str("X".to_string())), "{ev:?}");
        assert_eq!(ev.get("pid").and_then(Json::as_num), Some(1.0), "{ev:?}");
        for field in ["name", "ts", "dur", "tid", "args"] {
            assert!(ev.get(field).is_some(), "{field} missing: {ev:?}");
        }
    }
    // The query's own track is tid 0; each of the 7 partition branches
    // runs on its worker's private track (tid = N+1), and no two workers
    // share one.
    let root = events
        .iter()
        .find(|e| e.get("name") == Some(&Json::Str("query".to_string())))
        .expect("root span");
    assert_eq!(root.get("tid").and_then(Json::as_num), Some(0.0));
    let mut worker_tids = Vec::new();
    for worker in 0..7u64 {
        let name = Json::Str(format!("worker-{worker}"));
        let ev = events
            .iter()
            .find(|e| e.get("name") == Some(&name))
            .unwrap_or_else(|| panic!("worker-{worker} has no slice"));
        let tid = ev.get("tid").and_then(Json::as_num).unwrap();
        assert_eq!(tid, worker as f64 + 1.0, "worker-{worker} off-track");
        assert!(!worker_tids.contains(&tid.to_bits()), "shared track");
        worker_tids.push(tid.to_bits());
    }
}
