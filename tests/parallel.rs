//! Parallel remote execution (§4.1.5): the exchange operator dispatches
//! DPV member branches concurrently, prefetching overlaps remote fetches
//! with consumption, and errors from any branch surface unchanged.

use dhqp::{Engine, EngineDataSource, ParallelConfig};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_oledb::{
    Command, CommandResult, DataSource, Histogram, KeyRange, ProviderCapabilities, Rowset, Session,
    TableInfo, TrafficSnapshot, TxnId,
};
use dhqp_types::{DhqpError, Result, Row, Schema, Value};
use dhqp_workload::tpch::{self, TpchScale};
use std::sync::Arc;

/// Head engine federating four remote members that hold all seven
/// `lineitem_9x` partitions; `wrap` lets a test decorate each member's
/// data source (e.g. to inject faults) before it goes behind its link.
fn federation_with(
    wrap: impl Fn(Arc<dyn DataSource>, usize) -> Arc<dyn DataSource>,
) -> (Engine, Vec<NetworkLink>) {
    let head = Engine::new("head");
    let members: Vec<Engine> = (1..=4)
        .map(|i| Engine::new(format!("member{i}-engine")))
        .collect();
    let engines: Vec<&dhqp_storage::StorageEngine> =
        members.iter().map(|e| e.storage().as_ref()).collect();
    let parts = tpch::create_lineitem_partitions(&engines, &TpchScale::tiny(), 17).unwrap();

    let mut links = Vec::new();
    for (i, m) in members.iter().enumerate() {
        let link = NetworkLink::new(format!("member{}", i + 1), NetworkConfig::lan());
        let inner = wrap(Arc::new(EngineDataSource::new(m.clone())), i);
        head.add_linked_server(
            &format!("member{}", i + 1),
            Arc::new(NetworkedDataSource::new(inner, link.clone())),
        )
        .unwrap();
        links.push(link);
    }
    let view_members = parts
        .into_iter()
        .map(|(idx, table, domain)| (Some(format!("member{}", idx + 1)), table, domain))
        .collect();
    head.define_partitioned_view("lineitem_all", "l_commitdate", view_members)
        .unwrap();
    (head, links)
}

fn federation() -> (Engine, Vec<NetworkLink>) {
    federation_with(|ds, _| ds)
}

/// Rows of a result as sorted value vectors (bag comparison independent of
/// delivery order, which an exchange does not preserve).
fn multiset(rows: &[Row], width: usize) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| (0..width).map(|i| r.get(i).clone()).collect())
        .collect();
    out.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    out
}

const SCAN: &str = "SELECT l_orderkey, l_linenumber, l_quantity FROM lineitem_all";

#[test]
fn parallel_dpv_union_matches_serial_multiset() {
    let (head, _links) = federation();
    let scale = TpchScale::tiny();

    head.set_parallel_config(ParallelConfig::serial());
    let serial_plan = head.explain(SCAN).unwrap().plan_text;
    assert!(serial_plan.contains("UnionAll"), "{serial_plan}");
    assert!(!serial_plan.contains("Exchange"), "{serial_plan}");
    let serial = head.query(SCAN).unwrap();
    assert_eq!(serial.len(), scale.orders * scale.lineitems_per_order);

    head.set_parallel_config(ParallelConfig::parallel());
    let parallel_plan = head.explain(SCAN).unwrap().plan_text;
    assert!(
        parallel_plan.contains("Exchange(7 branches)"),
        "parallel plans must dispatch DPV members through an exchange:\n{parallel_plan}"
    );
    let parallel = head.query(SCAN).unwrap();

    assert_eq!(multiset(&serial.rows, 3), multiset(&parallel.rows, 3));
}

#[test]
fn exchange_reports_workers_and_traffic_stays_exact() {
    let (head, links) = federation();
    // Warm the metadata cache so both measured runs bind identically.
    head.set_parallel_config(ParallelConfig::serial());
    head.query(SCAN).unwrap();

    let measure = |links: &[NetworkLink]| -> Vec<TrafficSnapshot> {
        links.iter().map(NetworkLink::snapshot).collect()
    };

    for l in &links {
        l.reset();
    }
    head.execute_analyze(SCAN).unwrap();
    let serial_traffic = measure(&links);
    let total_rows: u64 = serial_traffic.iter().map(|t| t.rows).sum();
    let scale = TpchScale::tiny();
    assert_eq!(
        total_rows,
        (scale.orders * scale.lineitems_per_order) as u64
    );

    head.set_parallel_config(ParallelConfig::parallel());
    for l in &links {
        l.reset();
    }
    let report = head.execute_analyze(SCAN).unwrap();
    let parallel_traffic = measure(&links);

    // Concurrency must not change what crosses each wire: per-link request,
    // row and byte counts are identical to the serial execution.
    assert_eq!(serial_traffic, parallel_traffic);

    // The report carries the exchange runtime: seven branches, one worker
    // each (under the default eight-worker cap).
    let exchange = report
        .runtime
        .values()
        .find_map(|rt| rt.exchange.clone())
        .expect("parallel run records exchange runtime");
    assert_eq!(exchange.workers, 7);
    let rendered = report.render();
    assert!(rendered.contains("Exchange(7 branches)"), "{rendered}");
    assert!(rendered.contains("[exchange: workers=7"), "{rendered}");

    let m = head.metrics();
    assert!(m.parallel_exchanges >= 1, "{m:?}");
    assert!(m.exchange_workers >= 7, "{m:?}");
    assert!(m.remote_prefetches >= 7, "{m:?}");
}

#[test]
fn exchange_plan_falls_back_to_serial_execution() {
    // Plan with an Exchange but execute with parallelism disabled (e.g. a
    // cached plan after the knob was turned off): the operator degrades to
    // an in-line union, spawning no workers.
    let (head, _links) = federation();
    head.set_parallel_config(ParallelConfig::serial());
    let mut config = head.optimizer_config();
    config.enable_parallel_union = true;
    head.set_optimizer_config(config);

    let plan = head.explain(SCAN).unwrap().plan_text;
    assert!(plan.contains("Exchange"), "{plan}");
    let before = head.metrics().parallel_exchanges;
    let r = head.query(SCAN).unwrap();
    let scale = TpchScale::tiny();
    assert_eq!(r.len(), scale.orders * scale.lineitems_per_order);
    assert_eq!(head.metrics().parallel_exchanges, before);
}

// --- fault injection -------------------------------------------------------

/// Decorates a member so every rowset it serves fails after `fail_after`
/// rows, as a dropped connection mid-stream would.
struct FaultySource {
    inner: Arc<dyn DataSource>,
    fail_after: usize,
}

const FAULT: &str = "simulated link reset mid-stream";

impl DataSource for FaultySource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capabilities(&self) -> ProviderCapabilities {
        self.inner.capabilities()
    }

    fn traffic(&self) -> Option<TrafficSnapshot> {
        self.inner.traffic()
    }

    fn tables(&self) -> Result<Vec<TableInfo>> {
        self.inner.tables()
    }

    fn create_session(&self) -> Result<Box<dyn Session>> {
        Ok(Box::new(FaultySession {
            inner: self.inner.create_session()?,
            fail_after: self.fail_after,
        }))
    }
}

struct FaultySession {
    inner: Box<dyn Session>,
    fail_after: usize,
}

impl FaultySession {
    fn wrap(&self, rs: Box<dyn Rowset>) -> Box<dyn Rowset> {
        Box::new(FaultyRowset {
            inner: rs,
            remaining: self.fail_after,
        })
    }
}

impl Session for FaultySession {
    fn open_rowset(&mut self, table: &str) -> Result<Box<dyn Rowset>> {
        let rs = self.inner.open_rowset(table)?;
        Ok(self.wrap(rs))
    }

    fn open_index(
        &mut self,
        table: &str,
        index: &str,
        range: &KeyRange,
    ) -> Result<Box<dyn Rowset>> {
        let rs = self.inner.open_index(table, index, range)?;
        Ok(self.wrap(rs))
    }

    fn create_command(&mut self) -> Result<Box<dyn Command>> {
        Ok(Box::new(FaultyCommand {
            inner: self.inner.create_command()?,
            fail_after: self.fail_after,
        }))
    }

    fn fetch_by_bookmarks(&mut self, table: &str, bookmarks: &[u64]) -> Result<Vec<Row>> {
        self.inner.fetch_by_bookmarks(table, bookmarks)
    }

    fn histogram(&mut self, table: &str, column: &str) -> Result<Option<Histogram>> {
        self.inner.histogram(table, column)
    }

    fn join_transaction(&mut self, txn: TxnId) -> Result<()> {
        self.inner.join_transaction(txn)
    }
}

struct FaultyCommand {
    inner: Box<dyn Command>,
    fail_after: usize,
}

impl Command for FaultyCommand {
    fn set_text(&mut self, text: &str) -> Result<()> {
        self.inner.set_text(text)
    }

    fn bind_parameter(&mut self, ordinal: usize, value: Value) -> Result<()> {
        self.inner.bind_parameter(ordinal, value)
    }

    fn execute(&mut self) -> Result<CommandResult> {
        match self.inner.execute()? {
            CommandResult::Rowset(rs) => Ok(CommandResult::Rowset(Box::new(FaultyRowset {
                inner: rs,
                remaining: self.fail_after,
            }))),
            CommandResult::RowCount(n) => Ok(CommandResult::RowCount(n)),
        }
    }
}

struct FaultyRowset {
    inner: Box<dyn Rowset>,
    remaining: usize,
}

impl Rowset for FaultyRowset {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if self.remaining == 0 {
            return Err(DhqpError::Provider(FAULT.into()));
        }
        self.remaining -= 1;
        self.inner.next()
    }
}

#[test]
fn branch_fault_surfaces_original_error_through_exchange() {
    // Member 3 drops its connection three rows into every result stream.
    let (head, _links) = federation_with(|ds, i| {
        if i == 2 {
            Arc::new(FaultySource {
                inner: ds,
                fail_after: 3,
            })
        } else {
            ds
        }
    });
    head.set_parallel_config(ParallelConfig::parallel());

    let err = head.query(SCAN).unwrap_err();
    assert_eq!(err.kind(), "provider", "{err}");
    assert!(err.message().contains(FAULT), "{err}");

    // The failure cancels cleanly: healthy members still answer afterwards.
    let r = head
        .query("SELECT l_orderkey FROM lineitem_all WHERE l_commitdate < '1993-01-01'")
        .unwrap();
    assert!(!r.is_empty());
}
