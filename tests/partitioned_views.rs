//! Distributed partitioned views (§4.1.5): static and runtime pruning,
//! DML routing, partition-key moves, delayed schema validation and 2PC
//! atomicity.

use dhqp::{Engine, EngineDataSource};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_types::{value::parse_date, Column, DataType, Schema, Value};
use dhqp_workload::tpch::{self, TpchScale};
use std::collections::HashMap;
use std::sync::Arc;

/// A local engine plus two remote member engines holding the seven
/// `lineitem_9x` partitions; the `lineitem_all` DPV unions them.
struct Federation {
    local: Engine,
    remotes: Vec<Engine>,
    links: Vec<NetworkLink>,
}

fn dpv_setup(scale: TpchScale) -> Federation {
    let local = Engine::new("head");
    let r1 = Engine::new("member1-engine");
    let r2 = Engine::new("member2-engine");
    // Partition years 1992..=1998 over [local, r1, r2] round robin.
    let engines = [
        local.storage().as_ref(),
        r1.storage().as_ref(),
        r2.storage().as_ref(),
    ];
    let members = tpch::create_lineitem_partitions(&engines, &scale, 17).unwrap();

    let mut links = Vec::new();
    for (i, remote) in [&r1, &r2].iter().enumerate() {
        let link = NetworkLink::new(format!("member{}", i + 1), NetworkConfig::lan());
        local
            .add_linked_server(
                &format!("member{}", i + 1),
                Arc::new(NetworkedDataSource::new(
                    Arc::new(EngineDataSource::new((*remote).clone())),
                    link.clone(),
                )),
            )
            .unwrap();
        links.push(link);
    }
    let view_members = members
        .into_iter()
        .map(|(idx, table, domain)| {
            let server = match idx {
                0 => None,
                i => Some(format!("member{i}")),
            };
            (server, table, domain)
        })
        .collect();
    local
        .define_partitioned_view("lineitem_all", "l_commitdate", view_members)
        .unwrap();
    Federation {
        local,
        remotes: vec![r1, r2],
        links,
    }
}

#[test]
fn view_unions_all_partitions() {
    let fed = dpv_setup(TpchScale::tiny());
    let scale = TpchScale::tiny();
    let r = fed
        .local
        .query("SELECT COUNT(*) AS n FROM lineitem_all")
        .unwrap();
    assert_eq!(
        r.scalar(),
        Some(&Value::Int(
            (scale.orders * scale.lineitems_per_order) as i64
        ))
    );
}

#[test]
fn static_pruning_touches_one_partition() {
    let fed = dpv_setup(TpchScale::tiny());
    let sql = "SELECT COUNT(*) AS n FROM lineitem_all \
               WHERE l_commitdate >= '1995-01-01' AND l_commitdate <= '1995-12-31'";
    let plan = fed.local.explain(sql).unwrap();
    // 1995 lives on exactly one member; the others are pruned at compile
    // time, so the plan touches a single lineitem_95 access.
    let touched = plan.plan_text.matches("lineitem_9").count();
    assert_eq!(
        touched, 1,
        "static pruning must leave one member:\n{}",
        plan.plan_text
    );
    assert!(plan.plan_text.contains("lineitem_95"), "{}", plan.plan_text);
    // And it answers correctly.
    let n = fed.local.query(sql).unwrap();
    assert!(matches!(n.scalar(), Some(Value::Int(c)) if *c > 0));
}

#[test]
fn pruning_ablation_touches_everything() {
    let fed = dpv_setup(TpchScale::tiny());
    let mut config = fed.local.optimizer_config();
    config.simplify.constraint_pruning = false;
    fed.local.set_optimizer_config(config);
    let plan = fed
        .local
        .explain(
            "SELECT COUNT(*) AS n FROM lineitem_all WHERE l_commitdate >= '1995-01-01' \
                  AND l_commitdate <= '1995-12-31'",
        )
        .unwrap();
    let touched = plan.plan_text.matches("lineitem_9").count();
    assert_eq!(
        touched, 7,
        "without pruning all members are scanned:\n{}",
        plan.plan_text
    );
}

#[test]
fn contradictory_predicate_prunes_whole_view() {
    let fed = dpv_setup(TpchScale::tiny());
    let plan = fed
        .local
        .explain("SELECT COUNT(*) AS n FROM lineitem_all WHERE l_commitdate > '2005-01-01'")
        .unwrap();
    assert!(
        plan.plan_text.contains("Empty"),
        "out-of-range predicate reduces the view to an empty plan:\n{}",
        plan.plan_text
    );
    let r = fed
        .local
        .query("SELECT COUNT(*) AS n FROM lineitem_all WHERE l_commitdate > '2005-01-01'")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(0)));
}

#[test]
fn runtime_pruning_with_startup_filters() {
    let fed = dpv_setup(TpchScale::tiny());
    let sql = "SELECT COUNT(*) AS n FROM lineitem_all WHERE l_commitdate = @d";
    // Parameterized date: compile-time pruning is impossible; the plan
    // carries startup filters instead (§4.1.5).
    let mut params = HashMap::new();
    params.insert(
        "d".to_string(),
        Value::Date(parse_date("1994-06-15").unwrap()),
    );
    let plan = fed.local.explain_with_params(sql, params.clone()).unwrap();
    assert!(
        plan.plan_text.contains("StartupFilter"),
        "parameterized DPV queries need startup filters:\n{}",
        plan.plan_text
    );
    // At execution only the 1994 member (on member2: year index 2) runs:
    // warm metadata first, then measure traffic.
    fed.local.query_with_params(sql, params.clone()).unwrap();
    for l in &fed.links {
        l.reset();
    }
    fed.local.query_with_params(sql, params.clone()).unwrap();
    // 1994 is year index 2 → engine index 2 % 3 = 2 → member2 (links[1]).
    let m1 = fed.links[0].snapshot();
    let m2 = fed.links[1].snapshot();
    assert_eq!(
        m1.requests, 0,
        "member1 must be skipped by its startup filter"
    );
    assert!(m2.requests > 0, "member2 holds 1994 and must run");
}

#[test]
fn insert_routes_to_member_by_partition_value() {
    let fed = dpv_setup(TpchScale::tiny());
    let n = fed
        .local
        .execute(
            "INSERT INTO lineitem_all (l_orderkey, l_linenumber, l_suppkey, l_quantity, \
             l_extendedprice, l_commitdate) VALUES \
             (9001, 1, 0, 5, 10.0, '1993-07-04'), \
             (9001, 2, 0, 6, 12.0, '1997-02-11')",
        )
        .unwrap();
    assert_eq!(n.rows_affected, Some(2));
    // 1993 → engine index 1 (member1); 1997 → index 5 % 3 = 2 (member2).
    let r = fed.remotes[0]
        .query("SELECT l_linenumber FROM lineitem_93 WHERE l_orderkey = 9001")
        .unwrap();
    assert_eq!(r.len(), 1);
    let r = fed.remotes[1]
        .query("SELECT l_linenumber FROM lineitem_97 WHERE l_orderkey = 9001")
        .unwrap();
    assert_eq!(r.len(), 1);
    // Out-of-range partition values are constraint violations.
    let err = fed
        .local
        .execute(
            "INSERT INTO lineitem_all (l_orderkey, l_linenumber, l_suppkey, l_quantity, \
             l_extendedprice, l_commitdate) VALUES (9002, 1, 0, 1, 1.0, '2009-01-01')",
        )
        .unwrap_err();
    assert_eq!(err.kind(), "constraint");
}

#[test]
fn delete_through_view_prunes_members() {
    let fed = dpv_setup(TpchScale::tiny());
    let before = fed
        .local
        .query("SELECT COUNT(*) AS n FROM lineitem_all")
        .unwrap();
    let deleted = fed
        .local
        .execute("DELETE FROM lineitem_all WHERE l_commitdate < '1993-01-01'")
        .unwrap();
    assert!(deleted.rows_affected.unwrap() > 0);
    let after = fed
        .local
        .query("SELECT COUNT(*) AS n FROM lineitem_all")
        .unwrap();
    let (Some(Value::Int(b)), Some(Value::Int(a))) = (before.scalar(), after.scalar()) else {
        panic!("counts");
    };
    assert_eq!(a + deleted.rows_affected.unwrap() as i64, *b);
    // 1992 partition is now empty.
    let r = fed
        .local
        .query("SELECT COUNT(*) AS n FROM lineitem_92")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(0)));
}

#[test]
fn update_moving_partition_key_relocates_row() {
    let fed = dpv_setup(TpchScale::tiny());
    fed.local
        .execute(
            "INSERT INTO lineitem_all (l_orderkey, l_linenumber, l_suppkey, l_quantity, \
             l_extendedprice, l_commitdate) VALUES (7777, 1, 0, 5, 10.0, '1992-06-01')",
        )
        .unwrap();
    // Move the row from 1992 (local member) to 1996 (member engine).
    let n = fed
        .local
        .execute("UPDATE lineitem_all SET l_commitdate = '1996-06-01' WHERE l_orderkey = 7777")
        .unwrap();
    assert_eq!(n.rows_affected, Some(1));
    let gone = fed
        .local
        .query("SELECT COUNT(*) AS n FROM lineitem_92 WHERE l_orderkey = 7777")
        .unwrap();
    assert_eq!(gone.scalar(), Some(&Value::Int(0)));
    let moved = fed
        .local
        .query(
            "SELECT COUNT(*) AS n FROM lineitem_all WHERE l_orderkey = 7777 \
                AND l_commitdate = '1996-06-01'",
        )
        .unwrap();
    assert_eq!(moved.scalar(), Some(&Value::Int(1)));
}

#[test]
fn multi_member_dml_is_atomic_under_failure() {
    let fed = dpv_setup(TpchScale::tiny());
    let before = fed
        .local
        .query("SELECT COUNT(*) AS n FROM lineitem_all")
        .unwrap();
    // Inject a prepare failure on member1's engine, then attempt an insert
    // spanning local + member1 + member2.
    fed.remotes[0].storage().set_fail_prepare(true);
    let err = fed
        .local
        .execute(
            "INSERT INTO lineitem_all (l_orderkey, l_linenumber, l_suppkey, l_quantity, \
             l_extendedprice, l_commitdate) VALUES \
             (8001, 1, 0, 1, 1.0, '1992-03-03'), \
             (8001, 2, 0, 1, 1.0, '1993-03-03'), \
             (8001, 3, 0, 1, 1.0, '1994-03-03')",
        )
        .unwrap_err();
    assert_eq!(err.kind(), "transaction");
    fed.remotes[0].storage().set_fail_prepare(false);
    // Atomicity: nothing was applied anywhere.
    let after = fed
        .local
        .query("SELECT COUNT(*) AS n FROM lineitem_all")
        .unwrap();
    assert_eq!(before.scalar(), after.scalar());
    let (commits, aborts) = fed.local.dtc().stats();
    assert_eq!((commits, aborts), (0, 1));
}

#[test]
fn delayed_schema_validation_detects_drift() {
    let fed = dpv_setup(TpchScale::tiny());
    // Plans compile against the definition-time snapshot...
    fed.local
        .query("SELECT COUNT(*) AS n FROM lineitem_all")
        .unwrap();
    // ...then a member's schema changes behind the federation's back.
    fed.remotes[0].storage().drop_table("lineitem_93").unwrap();
    fed.remotes[0]
        .storage()
        .create_table(dhqp_storage::TableDef::new(
            "lineitem_93",
            Schema::new(vec![Column::not_null("something_else", DataType::Int)]),
        ))
        .unwrap();
    fed.local.clear_metadata_cache();
    let err = fed
        .local
        .query("SELECT COUNT(*) AS n FROM lineitem_all")
        .unwrap_err();
    assert_eq!(err.kind(), "schema-drift", "{err}");
}

#[test]
fn local_partitioned_view_works_without_servers() {
    // All members local: a plain (non-distributed) partitioned view.
    let engine = Engine::new("solo");
    for (table, lo, hi) in [("p_low", 0, 99), ("p_high", 100, 199)] {
        engine
            .create_table(
                dhqp_storage::TableDef::new(
                    table,
                    Schema::new(vec![
                        Column::not_null("k", DataType::Int),
                        Column::new("v", DataType::Str),
                    ]),
                )
                .with_check(dhqp_storage::CheckConstraint {
                    name: format!("ck_{table}"),
                    column: "k".into(),
                    domain: dhqp_types::IntervalSet::single(dhqp_types::Interval::between(
                        Value::Int(lo),
                        Value::Int(hi),
                    )),
                }),
            )
            .unwrap();
    }
    engine
        .define_partitioned_view(
            "all_k",
            "k",
            vec![
                (
                    None,
                    "p_low".into(),
                    dhqp_types::IntervalSet::single(dhqp_types::Interval::between(
                        Value::Int(0),
                        Value::Int(99),
                    )),
                ),
                (
                    None,
                    "p_high".into(),
                    dhqp_types::IntervalSet::single(dhqp_types::Interval::between(
                        Value::Int(100),
                        Value::Int(199),
                    )),
                ),
            ],
        )
        .unwrap();
    engine
        .execute("INSERT INTO all_k (k, v) VALUES (5, 'a'), (150, 'b')")
        .unwrap();
    assert_eq!(
        engine
            .query("SELECT COUNT(*) AS n FROM p_low")
            .unwrap()
            .scalar(),
        Some(&Value::Int(1))
    );
    let r = engine.query("SELECT v FROM all_k WHERE k = 150").unwrap();
    assert_eq!(r.value(0, 0), &Value::Str("b".into()));
    let plan = engine.explain("SELECT v FROM all_k WHERE k = 150").unwrap();
    assert!(
        !plan.plan_text.contains("p_low"),
        "pruned:\n{}",
        plan.plan_text
    );
}

#[test]
fn aggregates_over_view_ship_partials_not_rows() {
    let fed = dpv_setup(TpchScale::tiny());
    let sql = "SELECT COUNT(*) AS n, SUM(l_quantity) AS q FROM lineitem_all";
    // Warm metadata, then measure.
    let expected = fed.local.query(sql).unwrap();
    for l in &fed.links {
        l.reset();
    }
    let r = fed.local.query(sql).unwrap();
    assert_eq!(r.rows, expected.rows);
    let shipped: u64 = fed.links.iter().map(|l| l.snapshot().rows).sum();
    // Two remote members hold 2-3 partitions each; each ships one partial
    // row per partition, not its raw lineitems.
    assert!(
        shipped <= 7,
        "partial aggregation should ship one row per member, shipped {shipped}"
    );
    // The plan shows the split: a global combine above the union, with
    // per-branch partials either as local aggregate operators or folded
    // into the pushed remote statements (GROUP-BY-less COUNT/SUM).
    let plan = fed.local.explain(sql).unwrap();
    let local_partials = plan.plan_text.matches("Aggregate").count();
    let remote_partials = plan.plan_text.matches("COUNT(*)").count();
    assert!(
        local_partials + remote_partials >= 8,
        "7 partials + 1 global:\n{}",
        plan.plan_text
    );
}

#[test]
fn grouped_aggregate_over_view_is_correct() {
    let fed = dpv_setup(TpchScale::tiny());
    // Group by supplier across all partitions; verify against the same
    // data loaded monolithically.
    let r = fed
        .local
        .query(
            "SELECT l_suppkey, COUNT(*) AS n, MAX(l_quantity) AS mx FROM lineitem_all \
             GROUP BY l_suppkey ORDER BY l_suppkey",
        )
        .unwrap();
    let mono = Engine::new("mono");
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let scale = TpchScale::tiny();
        let rows = tpch::lineitem_rows(&scale, &mut rng);
        mono.create_table(dhqp_storage::TableDef::new(
            "lineitem",
            tpch::lineitem_schema(),
        ))
        .unwrap();
        mono.insert("lineitem", &rows).unwrap();
    }
    let want = mono
        .query(
            "SELECT l_suppkey, COUNT(*) AS n, MAX(l_quantity) AS mx FROM lineitem \
             GROUP BY l_suppkey ORDER BY l_suppkey",
        )
        .unwrap();
    assert_eq!(r.rows, want.rows);
}

#[test]
fn avg_and_distinct_aggregates_stay_unsplit_but_correct() {
    let fed = dpv_setup(TpchScale::tiny());
    let r = fed
        .local
        .query("SELECT AVG(l_quantity) AS a, COUNT(DISTINCT l_suppkey) AS d FROM lineitem_all")
        .unwrap();
    // AVG/DISTINCT cannot be combined from partials; the plan must keep a
    // single global aggregate (no per-branch split).
    let plan = fed
        .local
        .explain("SELECT AVG(l_quantity) AS a, COUNT(DISTINCT l_suppkey) AS d FROM lineitem_all")
        .unwrap();
    let aggs = plan.plan_text.matches("Aggregate").count();
    assert_eq!(aggs, 1, "{}", plan.plan_text);
    // And the answer matches a monolithic computation.
    let mono = Engine::new("mono2");
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let rows = tpch::lineitem_rows(&TpchScale::tiny(), &mut rng);
        mono.create_table(dhqp_storage::TableDef::new(
            "lineitem",
            tpch::lineitem_schema(),
        ))
        .unwrap();
        mono.insert("lineitem", &rows).unwrap();
    }
    let want = mono
        .query("SELECT AVG(l_quantity) AS a, COUNT(DISTINCT l_suppkey) AS d FROM lineitem")
        .unwrap();
    assert_eq!(r.rows, want.rows);
}
