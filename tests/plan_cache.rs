//! Parameterized plan cache: hit/miss observability, epoch invalidation
//! through every mutation path, the TTL'd remote-statistics cache, and
//! the regression that a replaced linked server's old plans are never
//! reused.

use dhqp::{Engine, EngineDataSource};
use dhqp_storage::TableDef;
use dhqp_types::{Column, DataType, Interval, IntervalSet, Row, Schema, Value};
use std::sync::Arc;
use std::time::Duration;

fn local_engine() -> Engine {
    let e = Engine::new("local");
    e.create_table(TableDef::new(
        "t",
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Str),
        ]),
    ))
    .unwrap();
    let rows: Vec<Row> = [(1, "alice"), (2, "bob"), (3, "carol")]
        .iter()
        .map(|(id, n)| Row::new(vec![Value::Int(*id), Value::Str(n.to_string())]))
        .collect();
    e.insert("t", &rows).unwrap();
    // Cache behaviour is what this file tests: force it on even when the
    // suite runs under a DHQP_PLAN_CACHE=0 leg.
    e.set_plan_cache_enabled(true);
    e
}

/// A remote engine holding `rt(k, v)` with the given rows, analyzed so a
/// statistics bundle ships with its metadata.
fn remote_with(rows: &[(i64, &str)]) -> Engine {
    let r = Engine::new("remote-engine");
    r.create_table(TableDef::new(
        "rt",
        Schema::new(vec![
            Column::not_null("k", DataType::Int),
            Column::new("v", DataType::Str),
        ]),
    ))
    .unwrap();
    let rows: Vec<Row> = rows
        .iter()
        .map(|(k, v)| Row::new(vec![Value::Int(*k), Value::Str(v.to_string())]))
        .collect();
    r.insert("rt", &rows).unwrap();
    r.analyze("rt", 8).unwrap();
    r
}

fn link(head: &Engine, name: &str, remote: &Engine) {
    head.add_linked_server(name, Arc::new(EngineDataSource::new(remote.clone())))
        .unwrap();
}

/// A head engine with the plan cache force-enabled (env-leg independent).
fn head_engine() -> Engine {
    let head = Engine::new("head");
    head.set_plan_cache_enabled(true);
    head
}

#[test]
fn second_execution_hits_and_explain_analyze_says_so() {
    let e = local_engine();
    let sql = "SELECT name FROM t WHERE id = 2";
    let first = e.execute_analyze(sql).unwrap();
    assert_eq!(first.cache_hit, Some(false));
    assert!(
        first.render().contains("[plan cache: miss]"),
        "{}",
        first.render()
    );
    let second = e.execute_analyze(sql).unwrap();
    assert_eq!(second.cache_hit, Some(true));
    assert!(
        second.render().contains("[plan cache: hit]"),
        "{}",
        second.render()
    );
    assert_eq!(first.result.rows, second.result.rows);
    // The statement form renders the same marker.
    let r = e
        .execute("EXPLAIN ANALYZE SELECT name FROM t WHERE id = 2")
        .unwrap();
    let text = format!("{:?}", r.rows);
    assert!(text.contains("[plan cache: hit]"), "{text}");
    let m = e.metrics();
    assert!(m.plan_cache_hits >= 2, "{m:?}");
    assert_eq!(m.plan_cache_misses, 1, "{m:?}");
}

#[test]
fn fingerprint_equal_literals_share_one_entry() {
    let e = local_engine();
    let r1 = e.query("SELECT name FROM t WHERE id = 1").unwrap();
    let r2 = e.query("SELECT name FROM t WHERE id = 2").unwrap();
    let r3 = e.query("SELECT name FROM t WHERE id = 3").unwrap();
    assert_eq!(r1.value(0, 0), &Value::Str("alice".into()));
    assert_eq!(r2.value(0, 0), &Value::Str("bob".into()));
    assert_eq!(r3.value(0, 0), &Value::Str("carol".into()));
    assert_eq!(e.plan_cache_len(), 1, "one shared entry for all literals");
    let m = e.metrics();
    assert_eq!(m.plan_cache_misses, 1, "{m:?}");
    assert_eq!(m.plan_cache_hits, 2, "{m:?}");
}

/// Int and float literals produce the same template (the parameter's type
/// is not part of the shape), so a plan compiled for an integer literal
/// serves a float literal on a hit — and must still compare correctly.
#[test]
fn int_and_float_literals_share_a_template_correctly() {
    let e = local_engine();
    let n = |sql: &str| match e.query(sql).unwrap().scalar().unwrap() {
        Value::Int(n) => *n,
        other => panic!("{other}"),
    };
    assert_eq!(n("SELECT COUNT(*) AS c FROM t WHERE id > 1"), 2);
    assert_eq!(n("SELECT COUNT(*) AS c FROM t WHERE id > 1.5"), 2);
    assert_eq!(n("SELECT COUNT(*) AS c FROM t WHERE id > 2.5"), 1);
    assert_eq!(e.plan_cache_len(), 1, "one template across int and float");
    assert_eq!(e.metrics().plan_cache_hits, 2);
}

#[test]
fn user_params_compose_with_auto_parameterization() {
    let e = local_engine();
    let sql = "SELECT name FROM t WHERE id = @who AND 1 = 1";
    let params = |id: i64| std::collections::HashMap::from([("who".to_string(), Value::Int(id))]);
    let r1 = e.query_with_params(sql, params(1)).unwrap();
    let r2 = e.query_with_params(sql, params(3)).unwrap();
    assert_eq!(r1.value(0, 0), &Value::Str("alice".into()));
    assert_eq!(r2.value(0, 0), &Value::Str("carol".into()));
    assert!(e.metrics().plan_cache_hits >= 1);
}

/// The small-fix regression: re-registering a linked server under the same
/// name must evict the old server's plans — the replacement engine's data
/// (and schema) answer every subsequent execution.
#[test]
fn replaced_server_never_reuses_old_plan() {
    let head = head_engine();
    let old = remote_with(&[(1, "old-world")]);
    link(&head, "srv", &old);
    let sql = "SELECT v FROM srv.db.dbo.rt WHERE k = 1";
    let r = head.query(sql).unwrap();
    assert_eq!(r.value(0, 0), &Value::Str("old-world".into()));
    assert_eq!(head.metrics().plan_cache_misses, 1);

    let new = remote_with(&[(1, "new-world")]);
    link(&head, "srv", &new); // same name: replacement, epoch bump
    let r = head.query(sql).unwrap();
    assert_eq!(
        r.value(0, 0),
        &Value::Str("new-world".into()),
        "stale plan answered from the replaced server"
    );
    let m = head.metrics();
    assert_eq!(m.plan_cache_hits, 0, "old plan must never be a hit: {m:?}");
    assert_eq!(m.plan_cache_misses, 2, "{m:?}");
    assert!(m.plan_cache_evictions >= 1, "{m:?}");
    // The fresh plan is normal: it hits on re-execution.
    head.query(sql).unwrap();
    assert_eq!(head.metrics().plan_cache_hits, 1);
}

#[test]
fn remote_ddl_with_clear_metadata_cache_invalidates() {
    let head = head_engine();
    let remote = remote_with(&[(1, "before")]);
    link(&head, "srv", &remote);
    let sql = "SELECT v FROM srv.db.dbo.rt WHERE k = 1";
    head.query(sql).unwrap();
    head.query(sql).unwrap();
    assert_eq!(head.metrics().plan_cache_hits, 1);

    // Remote DDL: the column the cached plan ships is renamed away.
    remote.storage().drop_table("rt").unwrap();
    remote
        .storage()
        .create_table(TableDef::new(
            "rt",
            Schema::new(vec![
                Column::not_null("k", DataType::Int),
                Column::new("w", DataType::Str),
            ]),
        ))
        .unwrap();
    remote
        .storage()
        .insert_rows(
            "rt",
            &[Row::new(vec![Value::Int(1), Value::Str("after".into())])],
        )
        .unwrap();

    head.clear_metadata_cache();
    // The old statement now fails its (fresh) bind instead of shipping a
    // stale plan that references the dropped column...
    let err = head.query(sql).unwrap_err();
    assert!(err.to_string().contains('v'), "{err}");
    // ...and the new column resolves against the refetched schema.
    let r = head
        .query("SELECT w FROM srv.db.dbo.rt WHERE k = 1")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Str("after".into()));
    let m = head.metrics();
    assert!(m.plan_cache_evictions >= 1, "{m:?}");
    assert_eq!(m.plan_cache_hits, 1, "no hit after invalidation: {m:?}");
}

/// A DPV member altered behind the federation's back: the cached plan is
/// still *found*, but delayed schema validation re-checks every member the
/// plan touches on each execution and refuses to run it; redefining the
/// view (a member change at the head) then evicts the stale plan.
#[test]
fn dpv_member_drift_fails_cached_plan_and_redefinition_evicts() {
    let head = head_engine();
    let m1 = remote_with(&[(1, "one"), (2, "two")]);
    let m2 = remote_with(&[(10, "ten"), (11, "eleven")]);
    link(&head, "member1", &m1);
    link(&head, "member2", &m2);
    let members = vec![
        (
            Some("member1".to_string()),
            "rt".to_string(),
            IntervalSet::single(Interval::less_than(Value::Int(10))),
        ),
        (
            Some("member2".to_string()),
            "rt".to_string(),
            IntervalSet::single(Interval::at_least(Value::Int(10))),
        ),
    ];
    head.define_partitioned_view("rt_all", "k", members.clone())
        .unwrap();
    let sql = "SELECT v FROM rt_all WHERE k >= 1";
    head.query(sql).unwrap();
    head.query(sql).unwrap();
    assert_eq!(head.metrics().plan_cache_hits, 1);

    // Member 2's schema drifts.
    m2.storage().drop_table("rt").unwrap();
    m2.storage()
        .create_table(TableDef::new(
            "rt",
            Schema::new(vec![Column::not_null("something_else", DataType::Int)]),
        ))
        .unwrap();
    let err = head.query(sql).unwrap_err();
    assert_eq!(err.kind(), "schema-drift", "{err}");

    // Repair the member and redefine the view: the schema epoch bump
    // evicts the stale plan, and a fresh compile succeeds.
    m2.storage().drop_table("rt").unwrap();
    drop(m2);
    let m2b = remote_with(&[(10, "ten"), (11, "eleven")]);
    link(&head, "member2", &m2b);
    head.define_partitioned_view("rt_all", "k", members)
        .unwrap();
    let r = head.query(sql).unwrap();
    assert_eq!(r.len(), 4);
    let m = head.metrics();
    assert!(m.plan_cache_evictions >= 1, "{m:?}");
}

#[test]
fn stats_ttl_zero_forces_refetch() {
    let head = head_engine();
    let remote = remote_with(&[(1, "x"), (2, "y")]);
    link(&head, "srv", &remote);
    head.set_plan_cache_enabled(false); // isolate the metadata path
    head.query("SELECT v FROM srv.db.dbo.rt WHERE k = 1")
        .unwrap();
    head.query("SELECT v FROM srv.db.dbo.rt WHERE k = 2")
        .unwrap();
    let m = head.metrics();
    assert!(m.stats_cache_hits >= 1, "fresh stats served again: {m:?}");
    let base_misses = m.stats_cache_misses;

    head.set_stats_ttl(Duration::ZERO);
    head.query("SELECT v FROM srv.db.dbo.rt WHERE k = 1")
        .unwrap();
    head.query("SELECT v FROM srv.db.dbo.rt WHERE k = 2")
        .unwrap();
    let m = head.metrics();
    assert!(
        m.stats_cache_misses >= base_misses + 2,
        "zero TTL must refetch statistics every bind: {m:?}"
    );
}

#[test]
fn disabling_the_cache_bypasses_it_entirely() {
    let e = local_engine();
    e.set_plan_cache_enabled(false);
    let sql = "SELECT name FROM t WHERE id = 1";
    e.query(sql).unwrap();
    e.query(sql).unwrap();
    let m = e.metrics();
    assert_eq!((m.plan_cache_hits, m.plan_cache_misses), (0, 0), "{m:?}");
    assert_eq!(e.plan_cache_len(), 0);
    // Re-enabling resumes normal miss-then-hit behavior.
    e.set_plan_cache_enabled(true);
    e.query(sql).unwrap();
    e.query(sql).unwrap();
    let m = e.metrics();
    assert_eq!((m.plan_cache_hits, m.plan_cache_misses), (1, 1), "{m:?}");
}

#[test]
fn capacity_pressure_evicts_lru() {
    let e = local_engine();
    e.set_plan_cache_capacity(2);
    e.query("SELECT name FROM t WHERE id = 1").unwrap();
    e.query("SELECT id FROM t WHERE id > 1").unwrap();
    e.query("SELECT COUNT(*) AS n FROM t WHERE id < 3").unwrap();
    assert!(e.plan_cache_len() <= 2);
    let m = e.metrics();
    assert_eq!(m.plan_cache_misses, 3, "{m:?}");
    assert!(m.plan_cache_evictions >= 1, "{m:?}");
    // The evicted (least recently used) shape recompiles as a miss.
    e.query("SELECT name FROM t WHERE id = 2").unwrap();
    assert_eq!(e.metrics().plan_cache_misses, 4);
}

#[test]
fn optimizer_config_change_invalidates() {
    let e = local_engine();
    let sql = "SELECT name FROM t WHERE id = 1";
    e.query(sql).unwrap();
    e.query(sql).unwrap();
    assert_eq!(e.metrics().plan_cache_hits, 1);
    let mut config = e.optimizer_config();
    config.simplify.constraint_pruning = false;
    e.set_optimizer_config(config);
    e.query(sql).unwrap();
    let m = e.metrics();
    assert_eq!(m.plan_cache_hits, 1, "config change must not reuse: {m:?}");
    assert_eq!(m.plan_cache_misses, 2, "{m:?}");
}

#[test]
fn local_ddl_invalidates() {
    let e = local_engine();
    let sql = "SELECT name FROM t WHERE id = 1";
    e.query(sql).unwrap();
    e.query(sql).unwrap();
    assert_eq!(e.metrics().plan_cache_hits, 1);
    e.create_table(TableDef::new(
        "other",
        Schema::new(vec![Column::not_null("x", DataType::Int)]),
    ))
    .unwrap();
    e.query(sql).unwrap();
    let m = e.metrics();
    assert_eq!(m.plan_cache_hits, 1, "DDL must invalidate: {m:?}");
    assert_eq!(m.plan_cache_misses, 2, "{m:?}");
}
