//! Property-based tests over the engine's core invariants.

use dhqp::Engine;
use dhqp_storage::TableDef;
use dhqp_types::{
    value::{format_date, like_match, parse_date},
    Column, DataType, Interval, IntervalSet, Row, Schema, Value,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// value model
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1000i64..1000).prop_map(|i| Value::Float(i as f64 / 4.0)),
        "[a-z]{0,6}".prop_map(Value::Str),
        (-30000i32..30000).prop_map(Value::Date),
    ]
}

proptest! {
    #[test]
    fn total_order_is_total_and_antisymmetric(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        // Transitivity on a sorted triple.
        let mut v = [a, b, c];
        v.sort_by(|x, y| x.total_cmp(y));
        prop_assert_ne!(v[0].total_cmp(&v[1]), Ordering::Greater);
        prop_assert_ne!(v[1].total_cmp(&v[2]), Ordering::Greater);
        prop_assert_ne!(v[0].total_cmp(&v[2]), Ordering::Greater);
    }

    #[test]
    fn sql_cmp_agrees_with_total_order_when_defined(a in arb_value(), b in arb_value()) {
        // Whenever SQL comparison is defined, it matches the total order.
        if let Some(ord) = a.sql_cmp(&b) {
            prop_assert_eq!(ord, a.total_cmp(&b));
        }
    }

    #[test]
    fn equal_values_hash_equal(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    #[test]
    fn date_roundtrip(days in -100_000i32..100_000) {
        prop_assert_eq!(parse_date(&format_date(days)), Some(days));
    }

    #[test]
    fn like_match_never_panics(s in ".{0,20}", p in "[a-z%_]{0,12}") {
        let _ = like_match(&s, &p);
    }

    #[test]
    fn like_percent_matches_everything(s in "[a-z]{0,12}") {
        prop_assert!(like_match(&s, "%"));
        let pat = format!("%{s}%");
        prop_assert!(like_match(&s, &pat));
    }
}

// ---------------------------------------------------------------------------
// interval algebra (the constraint property framework substrate)
// ---------------------------------------------------------------------------

fn arb_interval() -> impl Strategy<Value = Interval> {
    (-50i64..50, 0i64..30, any::<bool>(), any::<bool>()).prop_map(|(lo, width, linc, hinc)| {
        use dhqp_types::IntervalBound::*;
        let low = if linc {
            Included(Value::Int(lo))
        } else {
            Excluded(Value::Int(lo))
        };
        let high = if hinc {
            Included(Value::Int(lo + width))
        } else {
            Excluded(Value::Int(lo + width))
        };
        Interval { low, high }
    })
}

fn arb_set() -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec(arb_interval(), 0..4).prop_map(IntervalSet::from_intervals)
}

proptest! {
    #[test]
    fn interval_ops_match_membership_oracle(
        a in arb_set(),
        b in arb_set(),
        probe in -60i64..60,
    ) {
        let v = Value::Int(probe);
        let in_a = a.contains(&v);
        let in_b = b.contains(&v);
        prop_assert_eq!(a.union(&b).contains(&v), in_a || in_b);
        prop_assert_eq!(a.intersect(&b).contains(&v), in_a && in_b);
        prop_assert_eq!(a.complement().contains(&v), !in_a);
    }

    #[test]
    fn intersects_iff_shared_member(a in arb_set(), b in arb_set()) {
        // Exhaustively check the bounded integer domain used above.
        let shares = (-90i64..90).any(|i| {
            let v = Value::Int(i);
            a.contains(&v) && b.contains(&v)
        });
        // `intersects` may be true for non-integer overlap (e.g. (3,4)
        // intervals with no integer member), so only assert one direction.
        if shares {
            prop_assert!(a.intersects(&b));
        }
        if !a.intersects(&b) {
            prop_assert!(!shares);
        }
    }

    #[test]
    fn normalization_produces_disjoint_sorted_intervals(a in arb_set()) {
        let intervals = a.intervals();
        for w in intervals.windows(2) {
            prop_assert!(w[0].intersect(&w[1]).is_none(), "{} overlaps {}", w[0], w[1]);
        }
    }
}

// ---------------------------------------------------------------------------
// engine-level: SQL results vs a naive in-test oracle
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct DataSet {
    rows: Vec<(i64, i64, Option<i64>)>,
}

fn arb_dataset() -> impl Strategy<Value = DataSet> {
    prop::collection::vec((0i64..40, -20i64..20, prop::option::of(-5i64..5)), 0..60)
        .prop_map(|rows| DataSet { rows })
}

fn engine_with(data: &DataSet) -> Engine {
    let engine = Engine::new("prop");
    engine
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![
                Column::not_null("k", DataType::Int),
                Column::not_null("a", DataType::Int),
                Column::new("b", DataType::Int),
            ]),
        ))
        .unwrap();
    let rows: Vec<Row> = data
        .rows
        .iter()
        .map(|(k, a, b)| {
            Row::new(vec![
                Value::Int(*k),
                Value::Int(*a),
                b.map_or(Value::Null, Value::Int),
            ])
        })
        .collect();
    engine.insert("t", &rows).unwrap();
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filter_count_matches_oracle(data in arb_dataset(), lo in -20i64..20, hi in -20i64..20) {
        let engine = engine_with(&data);
        let sql = format!("SELECT COUNT(*) AS n FROM t WHERE a >= {lo} AND a < {hi}");
        let got = match engine.query(&sql).unwrap().scalar().unwrap() {
            Value::Int(n) => *n,
            other => panic!("{other}"),
        };
        let want = data.rows.iter().filter(|(_, a, _)| *a >= lo && *a < hi).count() as i64;
        prop_assert_eq!(got, want);
    }

    #[test]
    fn null_predicates_match_oracle(data in arb_dataset(), x in -5i64..5) {
        let engine = engine_with(&data);
        // b = x: NULL b never matches (three-valued logic).
        let got = engine
            .query(&format!("SELECT COUNT(*) AS n FROM t WHERE b = {x}"))
            .unwrap();
        let want = data.rows.iter().filter(|(_, _, b)| *b == Some(x)).count() as i64;
        prop_assert_eq!(got.scalar(), Some(&Value::Int(want)));
        // IS NULL picks exactly the nulls.
        let got = engine.query("SELECT COUNT(*) AS n FROM t WHERE b IS NULL").unwrap();
        let want = data.rows.iter().filter(|(_, _, b)| b.is_none()).count() as i64;
        prop_assert_eq!(got.scalar(), Some(&Value::Int(want)));
    }

    #[test]
    fn group_by_sums_match_oracle(data in arb_dataset()) {
        let engine = engine_with(&data);
        let result = engine
            .query("SELECT k, COUNT(*) AS n, SUM(a) AS s FROM t GROUP BY k ORDER BY k")
            .unwrap();
        use std::collections::BTreeMap;
        let mut oracle: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
        for (k, a, _) in &data.rows {
            let e = oracle.entry(*k).or_insert((0, 0));
            e.0 += 1;
            e.1 += a;
        }
        prop_assert_eq!(result.len(), oracle.len());
        for (row, (k, (n, s))) in result.rows.iter().zip(oracle) {
            prop_assert_eq!(row.get(0), &Value::Int(k));
            prop_assert_eq!(row.get(1), &Value::Int(n));
            prop_assert_eq!(row.get(2), &Value::Int(s));
        }
    }

    #[test]
    fn self_join_matches_oracle(data in arb_dataset()) {
        let engine = engine_with(&data);
        let got = match engine
            .query("SELECT COUNT(*) AS n FROM t x, t y WHERE x.k = y.k")
            .unwrap()
            .scalar()
            .unwrap()
        {
            Value::Int(n) => *n,
            other => panic!("{other}"),
        };
        let mut want = 0i64;
        for (k1, ..) in &data.rows {
            for (k2, ..) in &data.rows {
                if k1 == k2 {
                    want += 1;
                }
            }
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn order_by_is_sorted_and_complete(data in arb_dataset()) {
        let engine = engine_with(&data);
        let result = engine.query("SELECT a FROM t ORDER BY a DESC").unwrap();
        prop_assert_eq!(result.len(), data.rows.len());
        for w in result.rows.windows(2) {
            let (Value::Int(x), Value::Int(y)) = (w[0].get(0), w[1].get(0)) else {
                panic!("ints")
            };
            prop_assert!(x >= y);
        }
    }

    #[test]
    fn top_n_prefix_of_order(data in arb_dataset(), n in 0u64..10) {
        let engine = engine_with(&data);
        let all = engine.query("SELECT a FROM t ORDER BY a").unwrap();
        let top = engine.query(&format!("SELECT TOP {n} a FROM t ORDER BY a")).unwrap();
        prop_assert_eq!(top.len(), (n as usize).min(all.len()));
        for (t, a) in top.rows.iter().zip(all.rows.iter()) {
            prop_assert_eq!(t, a);
        }
    }
}

// ---------------------------------------------------------------------------
// parser robustness
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn parser_never_panics(input in ".{0,80}") {
        let _ = dhqp_sqlfront::parse_statement(&input);
    }

    #[test]
    fn lexer_never_panics(input in ".{0,120}") {
        let _ = dhqp_sqlfront::Lexer::new(&input).tokenize();
    }
}

// ---------------------------------------------------------------------------
// semi-join reduction: shipped IN-list SQL round-trips through the parser
// ---------------------------------------------------------------------------

/// Build a one-column `kv(k)` engine, splice `keys` into the semi-join
/// `IN`-list wrapper over it, and check the reduced statement (a) parses,
/// (b) returns exactly the rows whose key is a non-NULL member of `keys`.
fn semijoin_oracle_check(
    column: Column,
    rows: Vec<Value>,
    keys: Vec<Value>,
) -> std::result::Result<(), String> {
    let engine = Engine::new("sj-prop");
    engine
        .create_table(TableDef::new("kv", Schema::new(vec![column])))
        .unwrap();
    let stored: Vec<Row> = rows.iter().map(|v| Row::new(vec![v.clone()])).collect();
    engine.insert("kv", &stored).unwrap();
    let reduced = dhqp_executor::semijoin_remote_sql("SELECT [k] AS [c1] FROM [kv]", "c1", &keys);
    // The shipped text must be parseable by the remote's SQL front end —
    // whatever quotes, brackets or wildcards the key values contain.
    prop_assert!(
        dhqp_sqlfront::parse_statement(&reduced).is_ok(),
        "reduced statement must parse: {reduced}"
    );
    let got = engine.query(&reduced).unwrap();
    let want = rows
        .iter()
        .filter(|v| !v.is_null() && keys.iter().any(|k| !k.is_null() && *k == **v))
        .count();
    prop_assert!(got.rows.len() == want, "reduced: {reduced}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Integer key sets round-trip: NULL keys drop, empty key sets are
    /// provably empty, everything else filters exactly.
    #[test]
    fn semijoin_in_list_roundtrips_for_int_keys(
        rows in prop::collection::vec(prop::option::of(-30i64..30), 0..25),
        keys in prop::collection::vec(prop::option::of(-30i64..30), 0..10),
    ) {
        semijoin_oracle_check(
            Column::new("k", DataType::Int),
            rows.into_iter().map(|v| v.map_or(Value::Null, Value::Int)).collect(),
            keys.into_iter().map(|v| v.map_or(Value::Null, Value::Int)).collect(),
        )?;
    }

    /// String keys round-trip through literal escaping: embedded quotes,
    /// spaces and LIKE metacharacters must survive the splice verbatim.
    #[test]
    fn semijoin_in_list_roundtrips_for_string_keys(
        rows in prop::collection::vec(prop::option::of("[a-z' %_[]{0,8}"), 0..25),
        keys in prop::collection::vec(prop::option::of("[a-z' %_[]{0,8}"), 0..10),
    ) {
        semijoin_oracle_check(
            Column::new("k", DataType::Str),
            rows.into_iter().map(|v| v.map_or(Value::Null, Value::Str)).collect(),
            keys.into_iter().map(|v| v.map_or(Value::Null, Value::Str)).collect(),
        )?;
    }

    /// The predicate fingerprint is deterministic and shape-sensitive
    /// enough that distinct shipped texts rarely collide.
    #[test]
    fn semijoin_fingerprint_is_deterministic(a in ".{0,60}", b in ".{0,60}") {
        let fa = dhqp_executor::predicate_fingerprint(&a);
        prop_assert_eq!(&fa, &dhqp_executor::predicate_fingerprint(&a));
        prop_assert_eq!(fa.len(), 16);
        if a != b {
            // FNV-1a over distinct short strings: collisions would make
            // `sys.dm_link_health` attribution ambiguous.
            prop_assert_ne!(fa, dhqp_executor::predicate_fingerprint(&b));
        }
    }
}

// ---------------------------------------------------------------------------
// runtime startup pruning: never skips a member whose range qualifies
// ---------------------------------------------------------------------------

/// A three-member partitioned view over `k` split at `cut1`/`cut2`, with
/// runtime pruning forced on or off.
fn pruning_engine(rows: &[i64], cut1: i64, cut2: i64, eager: bool) -> Engine {
    use dhqp_types::IntervalBound::{Excluded, Included};
    let engine = Engine::new(if eager { "prune-eager" } else { "prune-lazy" });
    engine.set_runtime_prune(eager);
    let domains = [
        IntervalSet::single(Interval::less_than(Value::Int(cut1))),
        IntervalSet::single(Interval {
            low: Included(Value::Int(cut1)),
            high: Excluded(Value::Int(cut2)),
        }),
        IntervalSet::single(Interval::at_least(Value::Int(cut2))),
    ];
    let mut members = Vec::new();
    for (i, domain) in domains.into_iter().enumerate() {
        let table = format!("m{i}");
        engine
            .create_table(TableDef::new(
                &table,
                Schema::new(vec![Column::not_null("k", DataType::Int)]),
            ))
            .unwrap();
        let part: Vec<Row> = rows
            .iter()
            .filter(|k| domain.contains(&Value::Int(**k)))
            .map(|k| Row::new(vec![Value::Int(*k)]))
            .collect();
        engine.insert(&table, &part).unwrap();
        members.push((None, table, domain));
    }
    engine
        .define_partitioned_view("v_all", "k", members)
        .unwrap();
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Drive-time startup pruning must never skip the member whose range
    /// contains the bound parameter: eager and lazy evaluation agree with
    /// each other and with the oracle, for any probe — inside any member,
    /// on a cut boundary, or outside every range.
    #[test]
    fn runtime_pruning_never_skips_a_qualifying_member(
        rows in prop::collection::vec(0i64..60, 0..40),
        cut1 in 5i64..25,
        width in 5i64..25,
        probe in -5i64..65,
    ) {
        use std::collections::HashMap;
        let cut2 = cut1 + width;
        let sql = "SELECT k FROM v_all WHERE k = @p";
        let mut params = HashMap::new();
        params.insert("p".to_string(), Value::Int(probe));
        let eager = pruning_engine(&rows, cut1, cut2, true);
        let lazy = pruning_engine(&rows, cut1, cut2, false);
        let a = eager.query_with_params(sql, params.clone()).unwrap();
        let b = lazy.query_with_params(sql, params).unwrap();
        let want = rows.iter().filter(|k| **k == probe).count();
        prop_assert!(a.rows.len() == want, "eager pruning lost rows at probe {probe}");
        prop_assert!(b.rows.len() == want, "lazy startup filters lost rows at probe {probe}");
    }
}

// ---------------------------------------------------------------------------
// auto-parameterization (plan-cache fingerprinting)
// ---------------------------------------------------------------------------

/// One generated comparison predicate plus the literal-erased "shape" it
/// belongs to. Int and float literal *values* are interchangeable within a
/// shape (both auto-parameterize); everything else — columns, operators,
/// string literals, IN lists — is part of the shape.
#[derive(Clone, Debug)]
struct GenPred {
    sql: String,
    shape: String,
}

fn arb_pred() -> impl Strategy<Value = GenPred> {
    fn col() -> impl Strategy<Value = &'static str> {
        prop_oneof![Just("a"), Just("b"), Just("c")]
    }
    let op = prop_oneof![
        Just("="),
        Just("<>"),
        Just("<"),
        Just("<="),
        Just(">"),
        Just(">=")
    ];
    prop_oneof![
        // column <op> numeric-literal: parameterized.
        (col(), op, -999i64..999, any::<bool>()).prop_map(|(c, o, n, float)| {
            let lit = if float {
                format!("{:?}", n as f64 / 4.0)
            } else {
                n.to_string()
            };
            GenPred {
                sql: format!("{c} {o} {lit}"),
                shape: format!("{c} {o} ?"),
            }
        }),
        // column = string-literal: stays literal, so the value is shape.
        (col(), "[a-z]{0,5}").prop_map(|(c, s)| GenPred {
            sql: format!("{c} = '{s}'"),
            shape: format!("{c} = '{s}'"),
        }),
        // BETWEEN two numeric literals: both parameterized.
        (col(), -99i64..99, 0i64..99).prop_map(|(c, lo, w)| GenPred {
            sql: format!("{c} BETWEEN {lo} AND {}", lo + w),
            shape: format!("{c} BETWEEN ? AND ?"),
        }),
        // IN list: contents stay literal, so length and values are shape.
        (col(), proptest::collection::vec(-20i64..20, 1..4)).prop_map(|(c, vs)| {
            let list = vs
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            GenPred {
                sql: format!("{c} IN ({list})"),
                shape: format!("{c} IN ({list})"),
            }
        }),
    ]
}

/// A parseable SELECT with its literal-erased shape. Two generated queries
/// have equal shapes iff they differ only in parameterizable literals.
fn arb_parameterizable_select() -> impl Strategy<Value = GenPred> {
    let proj = prop_oneof![
        Just("*".to_string()),
        Just("a, b".to_string()),
        Just("COUNT(*) AS n".to_string()),
    ];
    let table = prop_oneof![Just("t1"), Just("t2")];
    let top = prop_oneof![
        Just(String::new()),
        (1u64..9).prop_map(|n| format!("TOP {n} "))
    ];
    let tail = prop_oneof![
        Just(String::new()),
        Just(" ORDER BY a".to_string()),
        Just(" ORDER BY b DESC".to_string()),
    ];
    (
        top,
        proj,
        table,
        proptest::collection::vec((arb_pred(), any::<bool>()), 1..4),
        tail,
    )
        .prop_map(|(top, proj, table, preds, tail)| {
            let mut where_sql = String::new();
            let mut where_shape = String::new();
            for (i, (p, or)) in preds.iter().enumerate() {
                if i > 0 {
                    let conj = if *or { " OR " } else { " AND " };
                    where_sql.push_str(conj);
                    where_shape.push_str(conj);
                }
                where_sql.push_str(&p.sql);
                where_shape.push_str(&p.shape);
            }
            GenPred {
                sql: format!("SELECT {top}{proj} FROM {table} WHERE {where_sql}{tail}"),
                shape: format!("SELECT {top}{proj} FROM {table} WHERE {where_shape}{tail}"),
            }
        })
}

proptest! {
    /// Extraction followed by re-substitution is the identity, judged at
    /// the AST level (whitespace and token spelling may differ).
    #[test]
    fn auto_parameterization_round_trips(q in arb_parameterizable_select()) {
        let fp = dhqp_sqlfront::fingerprint(&q.sql)
            .expect("generated SELECTs are always fingerprintable");
        let restored = dhqp_sqlfront::fingerprint::substitute(&fp.template, &fp.params)
            .expect("template re-substitution");
        let original = dhqp_sqlfront::parse_statement(&q.sql).expect("generated SQL parses");
        let round = dhqp_sqlfront::parse_statement(&restored).expect("restored SQL parses");
        prop_assert_eq!(format!("{original:?}"), format!("{round:?}"));
        // Every extracted parameter lives in the reserved namespace.
        for (name, _) in &fp.params {
            prop_assert!(name.starts_with(dhqp_sqlfront::AUTO_PARAM_PREFIX));
        }
    }

    /// Literal-only variation collapses to one template; any structural
    /// variation — different columns, operators, strings, IN lists, TOP,
    /// projection, table — always gets its own template.
    #[test]
    fn templates_collide_exactly_on_shape(
        q1 in arb_parameterizable_select(),
        q2 in arb_parameterizable_select(),
    ) {
        let fp1 = dhqp_sqlfront::fingerprint(&q1.sql).unwrap();
        let fp2 = dhqp_sqlfront::fingerprint(&q2.sql).unwrap();
        prop_assert_eq!(fp1.template == fp2.template, q1.shape == q2.shape);
    }

    /// The fingerprinter itself never panics, whatever the input.
    #[test]
    fn fingerprint_never_panics(input in ".{0,100}") {
        let _ = dhqp_sqlfront::fingerprint(&input);
    }
}
