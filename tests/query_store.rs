//! Query Store integration: per-fingerprint plan/runtime history, the
//! estimate-vs-actual skew ledger, plan-change/regression detection, the
//! cardinality feedback loop (E19's semi-join crossover correction), the
//! `sys.dm_os_knobs` provenance view and the slow-query ring's
//! fingerprint/annotation tags.

use dhqp::{
    BatchConfig, Engine, EngineBuilder, EngineDataSource, EventConfig, EventKind, FaultConfig,
    ParallelConfig, RetryPolicy,
};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_storage::TableDef;
use dhqp_types::{Column, DataType, Row, Schema, Value};
use std::sync::Arc;
use std::time::Duration;

const JOIN: &str = "SELECT d.id, f.val FROM dim d JOIN member1.db.dbo.fact f ON d.id = f.id";

fn fast_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        attempt_deadline: None,
        query_deadline: None,
    }
}

fn table_def(name: &str, value_col: Column) -> TableDef {
    TableDef::new(
        name,
        Schema::new(vec![Column::not_null("id", DataType::Int), value_col]),
    )
}

fn fact_row(id: i64, i: usize) -> Row {
    Row::new(vec![
        Value::Int(id),
        Value::Str(format!("payload-{i:04}-{}", "x".repeat(96))),
    ])
}

/// Link `member` into `head` behind a netsim link; returns the link so
/// tests can meter wire traffic.
fn link_member(
    head: &Engine,
    name: &str,
    member: &Engine,
    config: NetworkConfig,
    fault: Option<FaultConfig>,
) -> NetworkLink {
    let link = NetworkLink::new(name, config);
    let inner: Arc<dyn dhqp_oledb::DataSource> = Arc::new(EngineDataSource::new(member.clone()));
    let wrapped = match fault {
        Some(cfg) => NetworkedDataSource::with_faults(inner, link.clone(), cfg),
        None => NetworkedDataSource::reliable(inner, link.clone()),
    };
    head.add_linked_server(name, Arc::new(wrapped)).unwrap();
    link
}

/// Pin the knobs the suite's environment legs would otherwise perturb, so
/// plan choice and traffic accounting stay deterministic under every leg.
fn pin_knobs(head: &Engine) {
    head.set_plan_cache_enabled(true);
    head.set_batch_config(BatchConfig {
        enabled: true,
        batch_size: 1024,
    });
    let mut config = head.optimizer_config();
    config.enable_semijoin = true;
    config.semijoin_max_keys = 64;
    head.set_optimizer_config(config);
}

/// E19's fixture: a 24-key local `dim` (analyzed) joined against a wholly
/// remote `fact` that starts *tiny* (12 rows, never analyzed) so the head
/// caches a cardinality of 12 — then grows 210x behind the cached
/// statistics. Returns `(head, member, link)`.
fn skewed_federation() -> (Engine, Engine, NetworkLink) {
    let head = Engine::new("qs-head");
    head.storage()
        .create_table(table_def("dim", Column::new("tag", DataType::Str)))
        .unwrap();
    let dim_rows: Vec<Row> = (1..=24)
        .map(|id| Row::new(vec![Value::Int(id), Value::Str(format!("d{id}"))]))
        .collect();
    head.storage().insert_rows("dim", &dim_rows).unwrap();
    head.storage().analyze("dim", 8).unwrap();

    let m1 = Engine::new("qs-member1");
    m1.storage()
        .create_table(table_def("fact", Column::new("val", DataType::Str)))
        .unwrap();
    let seed: Vec<Row> = (0..12).map(|i| fact_row(i as i64 + 1, i)).collect();
    m1.storage().insert_rows("fact", &seed).unwrap();
    // Deliberately NOT analyzed: the head sees cardinality (live row
    // count) but no histograms, exactly the thin-metadata remote case.
    let link = link_member(&head, "member1", &m1, NetworkConfig::lan(), None);
    pin_knobs(&head);
    (head, m1, link)
}

/// Grow the remote fact to 2520 rows directly on the member engine: the
/// head's cached statistics (TTL 60s) still say 12.
fn grow_fact(m1: &Engine) {
    let extra: Vec<Row> = (0..2508)
        .map(|i| fact_row(((12 + i) % 840) as i64 + 1, i + 12))
        .collect();
    m1.storage().insert_rows("fact", &extra).unwrap();
}

fn sorted_rows(rows: &[Row]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

/// E19 end to end: one skewed execution is enough. The store records the
/// ≥10x estimate-vs-actual skew, the feedback loop overwrites the cached
/// cardinality and purges the stale plan, and the very next compilation
/// flips to the semi-join reduction — shipping a fraction of the bytes.
#[test]
fn feedback_corrects_semijoin_crossover_after_one_skewed_execution() {
    let (head, m1, link) = skewed_federation();
    head.set_query_store_enabled(true);
    head.set_card_feedback(true);
    head.set_event_config(EventConfig::all());

    // Execution 1 (fact = 12 rows): full fetch is the right plan, and the
    // compile caches cardinality 12.
    let r1 = head.query(JOIN).unwrap();
    assert_eq!(r1.rows.len(), 12, "{r1:?}");
    assert_eq!(head.query_store_len(), 1);
    let queries = head.query_store_queries();
    assert_eq!(queries[0].plans.len(), 1);
    assert!(
        !queries[0].plans[0].plan_text.contains("SemiJoinReduce"),
        "tiny fact must not be worth a reduction:\n{}",
        queries[0].plans[0].plan_text
    );

    // The table explodes behind the cached statistics.
    grow_fact(&m1);

    // Execution 2: the stale plan ships all 2520 rows. The store books the
    // skew; the feedback loop corrects the cache and purges the plan.
    let before2 = link.snapshot().bytes;
    let r2 = head.query(JOIN).unwrap();
    let bytes_stale = link.snapshot().bytes - before2;
    assert!(r2.rows.len() > r1.rows.len(), "{}", r2.rows.len());
    let m = head.metrics();
    assert!(m.card_feedback_applied >= 1, "{m:?}");

    // The skew is queryable through the runtime-stats DMV.
    let skews = head
        .query("SELECT max_skew, max_skew_operator FROM sys.query_store_runtime_stats")
        .unwrap();
    assert_eq!(skews.rows.len(), 1, "{skews:?}");
    assert!(
        matches!(skews.value(0, 0), Value::Float(s) if *s >= 10.0),
        "skew under 10x: {skews:?}"
    );
    assert!(
        matches!(skews.value(0, 1), Value::Str(op) if !op.is_empty()),
        "{skews:?}"
    );

    // Execution 3: recompilation costs with the fed-back cardinality and
    // flips to the reduction; EXPLAIN ANALYZE says so explicitly.
    let before3 = link.snapshot().bytes;
    let report = head.execute_analyze(JOIN).unwrap();
    let bytes_reduced = link.snapshot().bytes - before3;
    let rendered = report.render();
    assert!(rendered.contains("SemiJoinReduce"), "{rendered}");
    assert!(rendered.contains("-- [feedback: applied]"), "{rendered}");
    assert!(rendered.contains("[semijoin: keys=24 bytes="), "{rendered}");
    assert_eq!(sorted_rows(&report.result.rows), sorted_rows(&r2.rows));
    assert!(
        bytes_reduced * 4 < bytes_stale,
        "reduction saved no traffic: stale={bytes_stale} reduced={bytes_reduced}"
    );

    // The store now holds two plans under one fingerprint, and the switch
    // was announced on the event bus. (The DMV reads above were SELECTs
    // too, so the store also fingerprints them — filter to the join.)
    let q = head
        .query("SELECT template, plan_count, execution_count FROM sys.query_store_query")
        .unwrap();
    let row = q
        .rows
        .iter()
        .find(|row| matches!(row.get(0), Value::Str(t) if t.contains("fact")))
        .unwrap_or_else(|| panic!("join fingerprint missing: {q:?}"));
    assert_eq!(row.get(1), &Value::Int(2), "{q:?}");
    assert_eq!(row.get(2), &Value::Int(3), "{q:?}");
    let change = head
        .recent_events()
        .into_iter()
        .find(|e| e.kind == EventKind::PlanChange)
        .expect("plan_change event");
    assert!(change.detail().contains("new_plan_hash="), "{change:?}");

    // And the skew that triggered it all stays on the *old* plan's ledger.
    let queries = head.query_store_queries();
    let join_stats = queries
        .iter()
        .find(|q| q.template.contains("fact"))
        .expect("join fingerprint");
    let old_plan = join_stats
        .plans
        .iter()
        .find(|p| !p.plan_text.contains("SemiJoinReduce"))
        .expect("stale plan retained");
    assert!(old_plan.max_skew() >= 10.0, "{:?}", old_plan.max_skew());
}

/// A plan switch to a *slower* plan is a regression: flagged on the plan
/// row, counted in `plan_regressions`, and announced with
/// `regressed=true`. The timed WAN makes the byte difference wall time.
#[test]
fn slower_plan_switch_is_flagged_as_regression() {
    let head = Engine::new("reg-head");
    head.storage()
        .create_table(table_def("dim", Column::new("tag", DataType::Str)))
        .unwrap();
    let dim_rows: Vec<Row> = (1..=6)
        .map(|id| Row::new(vec![Value::Int(id), Value::Str(format!("d{id}"))]))
        .collect();
    head.storage().insert_rows("dim", &dim_rows).unwrap();
    head.storage().analyze("dim", 8).unwrap();

    let m1 = Engine::new("reg-member1");
    m1.storage()
        .create_table(table_def("fact", Column::new("val", DataType::Str)))
        .unwrap();
    let fact_rows: Vec<Row> = (0..3000)
        .map(|i| fact_row((i % 40) as i64 + 1, i))
        .collect();
    m1.storage().insert_rows("fact", &fact_rows).unwrap();
    m1.storage().analyze("fact", 8).unwrap();
    link_member(&head, "member1", &m1, NetworkConfig::wan_timed(), None);
    pin_knobs(&head);

    // Warm up off the books: compile (and its WAN statistics fetches)
    // must not pollute the fast plan's average.
    let warm = head.query(JOIN).unwrap();
    assert!(!warm.rows.is_empty());

    head.set_query_store_enabled(true);
    head.set_event_config(EventConfig::all());
    for _ in 0..3 {
        head.query(JOIN).unwrap();
    }
    let queries = head.query_store_queries();
    assert_eq!(queries[0].plans.len(), 1);
    assert!(
        queries[0].plans[0].plan_text.contains("SemiJoinReduce"),
        "{}",
        queries[0].plans[0].plan_text
    );

    // Force the fetch-everything plan: ~9x the bytes over a timed WAN.
    let mut config = head.optimizer_config();
    config.enable_semijoin = false;
    head.set_optimizer_config(config);
    head.query(JOIN).unwrap();

    let m = head.metrics();
    assert!(m.plan_regressions >= 1, "{m:?}");
    let change = head
        .recent_events()
        .into_iter()
        .find(|e| e.kind == EventKind::PlanChange)
        .expect("plan_change event");
    assert!(change.detail().contains("regressed=true"), "{change:?}");

    let plans = head
        .query("SELECT plan_id, regressed FROM sys.query_store_plan")
        .unwrap();
    assert_eq!(plans.rows.len(), 2, "{plans:?}");
    assert!(
        plans
            .rows
            .iter()
            .any(|row| row.get(1) == &Value::Bool(true)),
        "no plan flagged regressed: {plans:?}"
    );
}

/// The store is an observer, never a participant: identical answers with
/// the store+feedback armed under parallel chaos and with everything off
/// on a clean serial engine.
#[test]
fn store_and_feedback_never_change_answers() {
    let build = |name: &str, armed: bool| {
        let head = Engine::new(format!("{name}-head"));
        head.storage()
            .create_table(table_def("dim", Column::new("tag", DataType::Str)))
            .unwrap();
        let dim_rows: Vec<Row> = (1..=24)
            .map(|id| Row::new(vec![Value::Int(id), Value::Str(format!("d{id}"))]))
            .collect();
        head.storage().insert_rows("dim", &dim_rows).unwrap();
        head.storage().analyze("dim", 8).unwrap();
        let m1 = Engine::new(format!("{name}-member1"));
        m1.storage()
            .create_table(table_def("fact", Column::new("val", DataType::Str)))
            .unwrap();
        let fact_rows: Vec<Row> = (0..240).map(|i| fact_row((i % 40) as i64 + 1, i)).collect();
        m1.storage().insert_rows("fact", &fact_rows).unwrap();
        m1.storage().analyze("fact", 8).unwrap();
        let fault = armed.then(|| FaultConfig::one_transient_per_link(5));
        link_member(&head, "member1", &m1, NetworkConfig::lan(), fault);
        pin_knobs(&head);
        if armed {
            head.set_retry_policy(fast_retries());
            head.set_parallel_config(ParallelConfig::parallel());
            head.set_query_store_enabled(true);
            head.set_card_feedback(true);
        } else {
            head.set_parallel_config(ParallelConfig::serial());
            head.set_query_store_enabled(false);
            head.set_card_feedback(false);
        }
        head
    };
    let armed = build("qsdiff-on", true);
    let plain = build("qsdiff-off", false);
    // Two rounds: the second may replay a cached plan or recompile after
    // feedback — either way the answer must not move.
    let want = plain.query(JOIN).unwrap();
    for round in 0..2 {
        let got = armed.query(JOIN).unwrap();
        assert_eq!(
            sorted_rows(&got.rows),
            sorted_rows(&want.rows),
            "round {round}"
        );
    }
    assert!(armed.query_store_len() >= 1);
    assert_eq!(plain.query_store_len(), 0, "store was off");
}

/// `sys.dm_os_knobs` dumps every `DHQP_*` knob with provenance: `env`
/// when the environment supplied the value, `builder` when a setter
/// diverged from the default, `default` otherwise.
#[test]
fn dm_os_knobs_reports_every_knob_with_provenance() {
    std::env::set_var("DHQP_FAULT_SEED", "9");
    let head = Engine::new("knobs");
    head.set_stats_ttl(Duration::from_millis(1234));
    head.set_query_store_capacity(77);

    let r = head
        .query("SELECT name, value, source FROM sys.dm_os_knobs")
        .unwrap();
    assert_eq!(r.rows.len(), 27, "{r:?}");
    let knob = |name: &str| -> (String, String) {
        let row = r
            .rows
            .iter()
            .find(|row| row.get(0) == &Value::Str(name.to_string()))
            .unwrap_or_else(|| panic!("{name} missing: {r:?}"));
        match (row.get(1), row.get(2)) {
            (Value::Str(v), Value::Str(s)) => (v.clone(), s.clone()),
            _ => panic!("{name} row is not (Str, Str): {row:?}"),
        }
    };
    for name in [
        "DHQP_PARALLEL",
        "DHQP_BATCH_SIZE",
        "DHQP_RETRY_ATTEMPTS",
        "DHQP_BREAKER",
        "DHQP_DEGRADED",
        "DHQP_PLAN_CACHE",
        "DHQP_SLOW_QUERY_MS",
        "DHQP_EVENTS",
        "DHQP_SEMIJOIN",
        "DHQP_QUERY_STORE",
        "DHQP_CARD_FEEDBACK",
    ] {
        let (_, source) = knob(name);
        assert!(
            ["env", "builder", "default"].contains(&source.as_str()),
            "{name}: bad source {source}"
        );
    }
    // Builder/setter provenance: values no CI leg overrides via env.
    assert_eq!(
        knob("DHQP_STATS_TTL_MS"),
        ("1234".to_string(), "builder".to_string())
    );
    assert_eq!(
        knob("DHQP_QUERY_STORE_SIZE"),
        ("77".to_string(), "builder".to_string())
    );
    // Env provenance: the harness knob reports straight from the process
    // environment.
    assert_eq!(
        knob("DHQP_FAULT_SEED"),
        ("9".to_string(), "env".to_string())
    );
}

/// Slow-query ring entries explain themselves: the plan-cache fingerprint
/// joins against store rows and the annotation summary compresses the
/// semi-join ship — in the ring and on the `slow_query` event alike.
#[test]
fn slow_query_ring_carries_fingerprint_and_annotations() {
    let head = EngineBuilder::new("slowring")
        .slow_query_threshold(Some(Duration::ZERO))
        .build();
    head.storage()
        .create_table(table_def("dim", Column::new("tag", DataType::Str)))
        .unwrap();
    let dim_rows: Vec<Row> = (1..=6)
        .map(|id| Row::new(vec![Value::Int(id), Value::Str(format!("d{id}"))]))
        .collect();
    head.storage().insert_rows("dim", &dim_rows).unwrap();
    head.storage().analyze("dim", 8).unwrap();
    let m1 = Engine::new("slowring-member1");
    m1.storage()
        .create_table(table_def("fact", Column::new("val", DataType::Str)))
        .unwrap();
    let fact_rows: Vec<Row> = (0..240).map(|i| fact_row((i % 40) as i64 + 1, i)).collect();
    m1.storage().insert_rows("fact", &fact_rows).unwrap();
    m1.storage().analyze("fact", 8).unwrap();
    link_member(&head, "member1", &m1, NetworkConfig::lan(), None);
    pin_knobs(&head);
    head.set_event_config(EventConfig::all());

    head.query(JOIN).unwrap();

    let slow = head.slow_queries();
    let entry = slow
        .iter()
        .find(|q| q.sql.contains("fact"))
        .unwrap_or_else(|| panic!("join missing from slow ring: {slow:?}"));
    let fp = entry.fingerprint.as_deref().expect("fingerprint tag");
    assert!(fp.starts_with("SELECT"), "{fp}");
    let ann = entry.annotations.as_deref().expect("annotation summary");
    assert!(ann.contains("[semijoin: keys=6 bytes="), "{ann}");

    let ev = head
        .recent_events()
        .into_iter()
        .find(|e| e.kind == EventKind::SlowQuery && e.detail().contains("fact"))
        .expect("slow_query event");
    let detail = ev.detail();
    assert!(detail.contains("fingerprint=SELECT"), "{detail}");
    assert!(detail.contains("[semijoin: keys=6"), "{detail}");
}

/// Disabling the store drops its history; DMV rowsets degrade to empty,
/// not errors.
#[test]
fn disabling_the_store_clears_history() {
    let (head, _m1, _link) = skewed_federation();
    head.set_query_store_enabled(true);
    head.query(JOIN).unwrap();
    assert_eq!(head.query_store_len(), 1);
    head.set_query_store_enabled(false);
    assert_eq!(head.query_store_len(), 0);
    let q = head
        .query("SELECT query_id FROM sys.query_store_query")
        .unwrap();
    assert!(q.rows.is_empty(), "{q:?}");
    let p = head
        .query("SELECT plan_id FROM sys.query_store_plan")
        .unwrap();
    assert!(p.rows.is_empty(), "{p:?}");
}
