//! Semi-join reduction under chaos: the reduction is an optimization,
//! never a semantic change. A dead probe link must surface the same error
//! the unreduced plan would have (never partial results), with the
//! shipped predicate's fingerprint preserved in `sys.dm_link_health` so a
//! filter-ship failure is distinguishable from a plain scan failure; a
//! plan-time cardinality undershoot must fall back to the unreduced
//! statement at runtime; and degraded-mode pruning must stay visibly
//! distinct from runtime startup pruning when both fire in one query.

use dhqp::{DegradedMode, Engine, EngineDataSource, FaultConfig, RetryPolicy};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_storage::TableDef;
use dhqp_types::{Column, DataType, Interval, IntervalSet, Row, Schema, Value};
use std::sync::Arc;
use std::time::Duration;

const JOIN: &str = "SELECT d.id, f.val FROM dim d JOIN member1.db.dbo.fact f ON d.id = f.id";

fn fast_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        attempt_deadline: None,
        query_deadline: None,
    }
}

fn table_def(name: &str, value_col: Column) -> TableDef {
    TableDef::new(
        name,
        Schema::new(vec![Column::not_null("id", DataType::Int), value_col]),
    )
}

/// Link `member` into `head` behind a netsim link armed with `fault`.
fn link_member(head: &Engine, name: &str, member: &Engine, fault: Option<FaultConfig>) {
    let link = NetworkLink::new(name, NetworkConfig::lan());
    let inner: Arc<dyn dhqp_oledb::DataSource> = Arc::new(EngineDataSource::new(member.clone()));
    let wrapped = match fault {
        Some(cfg) => NetworkedDataSource::with_faults(inner, link, cfg),
        None => NetworkedDataSource::reliable(inner, link),
    };
    head.add_linked_server(name, Arc::new(wrapped)).unwrap();
}

/// A small local `dim` (6 keys) in the head and a wide wholly-remote
/// `fact` (240 rows, 40 distinct keys) on `member1`: the shape the
/// semi-join reduction rule rewrites. Returns `(head, member1)` — the
/// member engine is kept alive so more fact rows can be added.
fn semijoin_federation(fault: Option<FaultConfig>) -> (Engine, Engine) {
    let head = Engine::new("sj-head");
    head.storage()
        .create_table(table_def("dim", Column::new("tag", DataType::Str)))
        .unwrap();
    let dim_rows: Vec<Row> = (1..=6)
        .map(|id| Row::new(vec![Value::Int(id), Value::Str(format!("d{id}"))]))
        .collect();
    head.storage().insert_rows("dim", &dim_rows).unwrap();
    head.storage().analyze("dim", 8).unwrap();

    let m1 = Engine::new("sj-member1");
    m1.storage()
        .create_table(table_def("fact", Column::new("val", DataType::Str)))
        .unwrap();
    let fact_rows: Vec<Row> = (0..240)
        .map(|i| {
            Row::new(vec![
                Value::Int((i % 40) + 1),
                Value::Str(format!("payload-{i:04}-{}", "x".repeat(96))),
            ])
        })
        .collect();
    m1.storage().insert_rows("fact", &fact_rows).unwrap();
    m1.storage().analyze("fact", 8).unwrap();
    link_member(&head, "member1", &m1, fault);
    // Pin the rewrite on: the suite may run under DHQP_SEMIJOIN=0.
    let mut config = head.optimizer_config();
    config.enable_semijoin = true;
    head.set_optimizer_config(config);
    (head, m1)
}

/// EXPLAIN ANALYZE on a reduced join: the plan node announces itself and
/// the runtime annotation reports the key count and the extra bytes the
/// spliced `IN`-list added to the shipped statement.
#[test]
fn explain_analyze_annotates_the_reduction() {
    let (head, _m1) = semijoin_federation(None);
    let report = head.execute_analyze(JOIN).unwrap();
    assert!(!report.result.rows.is_empty());
    let rendered = report.render();
    assert!(rendered.contains("SemiJoinReduce"), "{rendered}");
    assert!(rendered.contains("[semijoin: keys=6 bytes="), "{rendered}");
    // The wire annotation carries the *reduced* statement that was shipped.
    assert!(rendered.contains("IN ("), "{rendered}");
    let m = head.metrics();
    assert!(m.semijoin_reductions >= 1, "{m:?}");
    assert!(m.semijoin_filter_bytes > 0, "{m:?}");
    assert_eq!(m.semijoin_fallbacks, 0, "{m:?}");
}

/// A dead probe link: the reduced open burns its retry budget, the
/// fallback open hits the (now Open) breaker, and the query errors — no
/// partial results. The give-up that tripped the breaker stays attributed
/// to the exact shipped predicate in `sys.dm_link_health`.
#[test]
fn dead_probe_link_errors_and_fingerprints_the_shipped_predicate() {
    let (head, _m1) = semijoin_federation(Some(FaultConfig::dead(11)));
    head.set_degraded_mode(DegradedMode::Fail);
    head.set_retry_policy(fast_retries());

    let err = head.query(JOIN).unwrap_err();
    assert_eq!(err.kind(), "unavailable", "{err}");
    let m = head.metrics();
    assert!(m.semijoin_fallbacks >= 1, "{m:?}");
    assert_eq!(m.semijoin_reductions, 0, "{m:?}");

    // The breaker opened on the tagged reduced-statement give-up, so the
    // recorded last error names the filter-ship, not the fallback scan.
    let health = head.link_health();
    let sick = health.iter().find(|l| l.server == "member1").unwrap();
    let last = sick.last_error.as_deref().unwrap_or_default();
    assert!(last.contains("shipped predicate fp="), "{sick:?}");
    assert!(last.contains("keys=6"), "{sick:?}");

    // And the reason chain is queryable through the DMV like any other.
    let r = head
        .query("SELECT last_error FROM sys.dm_link_health WHERE server = 'member1'")
        .unwrap();
    assert_eq!(r.rows.len(), 1, "{r:?}");
    assert!(
        matches!(r.value(0, 0), Value::Str(s) if s.contains("shipped predicate fp=")),
        "{r:?}"
    );
}

/// Plan-time cardinality undershoot: the rule fired against stale
/// statistics, drive time finds more distinct keys than `max_keys`, and
/// the executor abandons the splice — shipping the unreduced statement
/// instead of an oversized `IN`-list, with identical results.
#[test]
fn oversized_key_set_falls_back_to_the_unreduced_statement_at_runtime() {
    let (head, _m1) = semijoin_federation(None);
    // Grow dim to 20 distinct keys *after* ANALYZE: the optimizer still
    // believes ndv=6 and keeps the reduction with max_keys=10.
    let extra: Vec<Row> = (7..=20)
        .map(|id| Row::new(vec![Value::Int(id), Value::Str(format!("d{id}"))]))
        .collect();
    head.storage().insert_rows("dim", &extra).unwrap();
    let mut config = head.optimizer_config();
    config.semijoin_max_keys = 10;
    head.set_optimizer_config(config);

    let got = head.query(JOIN).unwrap();
    let m = head.metrics();
    assert!(m.semijoin_fallbacks >= 1, "{m:?}");
    assert_eq!(m.semijoin_reductions, 0, "{m:?}");
    assert_eq!(m.semijoin_filter_bytes, 0, "{m:?}");

    // Reference: the same data with the reduction rule disabled.
    let (off, _m1) = semijoin_federation(None);
    off.storage()
        .insert_rows(
            "dim",
            &(7..=20)
                .map(|id| Row::new(vec![Value::Int(id), Value::Str(format!("d{id}"))]))
                .collect::<Vec<_>>(),
        )
        .unwrap();
    let mut config = off.optimizer_config();
    config.enable_semijoin = false;
    off.set_optimizer_config(config);
    let want = off.query(JOIN).unwrap();
    let sort = |rows: &[Row]| {
        let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
        v.sort();
        v
    };
    assert_eq!(sort(&got.rows), sort(&want.rows));
}

/// One query, both prune channels: degraded mode quarantines the dead
/// member while runtime startup pruning skips the out-of-range member —
/// and the two must be reported distinctly (a skipped-by-predicate member
/// is healthy, a quarantined one is not). The all-members-gone error must
/// NOT fire: the startup skip proves the empty answer is legitimate.
#[test]
fn degraded_prune_and_startup_prune_report_distinctly() {
    let head = Engine::new("dpv-head");
    let m1 = Engine::new("dpv-member1");
    let m2 = Engine::new("dpv-member2");
    for (m, table, ids) in [(&m1, "part_lo", 1i64..=10), (&m2, "part_hi", 50..=59)] {
        m.storage()
            .create_table(table_def(table, Column::new("tag", DataType::Str)))
            .unwrap();
        let rows: Vec<Row> = ids
            .map(|id| Row::new(vec![Value::Int(id), Value::Str(format!("t{id}"))]))
            .collect();
        m.storage().insert_rows(table, &rows).unwrap();
        m.storage().analyze(table, 8).unwrap();
    }
    // member1 (holding the qualifying range) is dead; member2 is healthy
    // but irrelevant to the parameter value.
    link_member(&head, "member1", &m1, Some(FaultConfig::dead(7)));
    link_member(&head, "member2", &m2, None);
    head.define_partitioned_view(
        "part_all",
        "id",
        vec![
            (
                Some("member1".into()),
                "part_lo".into(),
                IntervalSet::single(Interval::less_than(Value::Int(50))),
            ),
            (
                Some("member2".into()),
                "part_hi".into(),
                IntervalSet::single(Interval::at_least(Value::Int(50))),
            ),
        ],
    )
    .unwrap();
    head.set_retry_policy(fast_retries());
    head.set_degraded_mode(DegradedMode::Prune);
    head.set_runtime_prune(true);
    head.set_plan_cache_enabled(true);

    const Q: &str = "SELECT id, tag FROM part_all WHERE id = 7";
    // First run trips member1's breaker (retry storm → give-up → prune)
    // and startup-skips member2 without ever opening a connection.
    let cold = head.query(Q).unwrap();
    assert!(cold.rows.is_empty(), "{cold:?}");

    // Second run: member1 fast-fail-prunes on the Open breaker; the
    // report names each member under its own channel.
    let report = head.execute_analyze(Q).unwrap();
    assert!(report.result.rows.is_empty());
    assert_eq!(report.pruned, vec!["member1".to_string()]);
    assert_eq!(report.startup_pruned, vec!["member2".to_string()]);
    let rendered = report.render();
    assert!(
        rendered.contains("[degraded: pruned members=member1]"),
        "{rendered}"
    );
    assert!(
        rendered.contains("[startup: skipped members=member2]"),
        "{rendered}"
    );
    let m = head.metrics();
    assert!(m.members_pruned >= 1, "{m:?}");
    assert!(m.startup_members_skipped >= 1, "{m:?}");
}
