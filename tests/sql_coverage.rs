//! Broader SQL surface coverage: outer joins, coercions, DML corner cases
//! (including Halloween protection, §4.1.4), chained federations and error
//! paths.

use dhqp::{Engine, EngineDataSource};
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_storage::TableDef;
use dhqp_types::{value::parse_date, Column, DataType, Row, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

fn engine_ab() -> Engine {
    let e = Engine::new("local");
    e.create_table(TableDef::new(
        "a",
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("tag", DataType::Str),
        ]),
    ))
    .unwrap();
    e.create_table(TableDef::new(
        "b",
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("score", DataType::Int),
        ]),
    ))
    .unwrap();
    e.insert(
        "a",
        &[
            Row::new(vec![Value::Int(1), Value::Str("x".into())]),
            Row::new(vec![Value::Int(2), Value::Str("y".into())]),
            Row::new(vec![Value::Int(3), Value::Null]),
        ],
    )
    .unwrap();
    e.insert(
        "b",
        &[
            Row::new(vec![Value::Int(2), Value::Int(20)]),
            Row::new(vec![Value::Int(3), Value::Int(30)]),
            Row::new(vec![Value::Int(4), Value::Int(40)]),
        ],
    )
    .unwrap();
    e
}

#[test]
fn left_and_right_outer_joins() {
    let e = engine_ab();
    let l = e
        .query("SELECT a.id, b.score FROM a LEFT OUTER JOIN b ON a.id = b.id ORDER BY a.id")
        .unwrap();
    assert_eq!(l.len(), 3);
    assert!(l.value(0, 1).is_null(), "a.id=1 has no match");
    assert_eq!(l.value(1, 1), &Value::Int(20));
    // RIGHT OUTER normalizes to LEFT with swapped sides.
    let r = e
        .query("SELECT a.id, b.score FROM a RIGHT OUTER JOIN b ON a.id = b.id ORDER BY b.score")
        .unwrap();
    assert_eq!(r.len(), 3);
    assert!(
        r.rows.iter().any(|row| row.get(0).is_null()),
        "b.id=4 keeps a NULL a side"
    );
}

#[test]
fn date_string_coercion_and_between() {
    let e = Engine::new("d");
    e.create_table(TableDef::new(
        "ev",
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("day", DataType::Date),
        ]),
    ))
    .unwrap();
    let d = |s: &str| Value::Date(parse_date(s).unwrap());
    e.insert(
        "ev",
        &[
            Row::new(vec![Value::Int(1), d("2004-01-15")]),
            Row::new(vec![Value::Int(2), d("2004-06-15")]),
            Row::new(vec![Value::Int(3), d("2004-12-15")]),
        ],
    )
    .unwrap();
    // Plain string literals coerce against DATE columns (T-SQL style).
    let r = e
        .query("SELECT id FROM ev WHERE day >= '2004-06-01'")
        .unwrap();
    assert_eq!(r.len(), 2);
    let r = e
        .query("SELECT id FROM ev WHERE day BETWEEN '2004-02-01' AND '2004-07-01'")
        .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.value(0, 0), &Value::Int(2));
}

#[test]
fn in_list_cast_and_arithmetic() {
    let e = engine_ab();
    let r = e
        .query("SELECT id FROM b WHERE id IN (2, 4, 9) ORDER BY id")
        .unwrap();
    assert_eq!(r.len(), 2);
    let r = e
        .query("SELECT CAST(score AS VARCHAR) AS s FROM b WHERE id = 2")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Str("20".into()));
    let r = e
        .query("SELECT score * 2 + 1 AS x FROM b WHERE id = 3")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Int(61));
    let r = e
        .query("SELECT score FROM b WHERE score % 3 = 0 ORDER BY score")
        .unwrap();
    assert_eq!(r.len(), 1); // 30
}

#[test]
fn halloween_protection_each_row_updated_once() {
    // §4.1.4 mentions spools for Halloween protection; here the DML path
    // materializes its target set before writing, so an update whose SET
    // re-qualifies rows for its own WHERE clause still touches each row
    // exactly once.
    let e = Engine::new("h");
    e.create_table(TableDef::new(
        "pay",
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("salary", DataType::Int),
        ]),
    ))
    .unwrap();
    let rows: Vec<Row> = (0..20)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int(50 + i)]))
        .collect();
    e.insert("pay", &rows).unwrap();
    let n = e
        .execute("UPDATE pay SET salary = salary + 100 WHERE salary < 1000")
        .unwrap();
    assert_eq!(n.rows_affected, Some(20));
    // Every salary rose by exactly 100 — no row was revisited.
    let r = e
        .query("SELECT MIN(salary) AS lo, MAX(salary) AS hi FROM pay")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Int(150));
    assert_eq!(r.value(0, 1), &Value::Int(169));
}

#[test]
fn insert_from_select_and_params() {
    let e = engine_ab();
    e.create_table(TableDef::new(
        "b_archive",
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("score", DataType::Int),
        ]),
    ))
    .unwrap();
    let mut params = HashMap::new();
    params.insert("cut".to_string(), Value::Int(25));
    let n = e
        .execute_with_params(
            "INSERT INTO b_archive SELECT id, score FROM b WHERE score > @cut",
            params.clone(),
        )
        .unwrap();
    assert_eq!(n.rows_affected, Some(2));
    let n = e
        .execute_with_params("DELETE FROM b WHERE score > @cut", params)
        .unwrap();
    assert_eq!(n.rows_affected, Some(2));
    assert_eq!(
        e.query("SELECT COUNT(*) AS n FROM b").unwrap().scalar(),
        Some(&Value::Int(1))
    );
}

#[test]
fn chained_federation_via_openquery() {
    // local → mid → far: the pass-through text handed to `mid` itself uses
    // OPENQUERY against `far` — autonomous sources composing, as the
    // architecture's layering allows.
    let far = Engine::new("far-engine");
    far.create_table(TableDef::new(
        "secrets",
        Schema::new(vec![Column::not_null("v", DataType::Int)]),
    ))
    .unwrap();
    far.insert(
        "secrets",
        &[
            Row::new(vec![Value::Int(41)]),
            Row::new(vec![Value::Int(42)]),
        ],
    )
    .unwrap();

    let mid = Engine::new("mid-engine");
    mid.add_linked_server(
        "far",
        Arc::new(NetworkedDataSource::new(
            Arc::new(EngineDataSource::new(far)),
            NetworkLink::new("mid-far", NetworkConfig::lan()),
        )),
    )
    .unwrap();

    let local = Engine::new("local");
    local
        .add_linked_server(
            "mid",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(mid)),
                NetworkLink::new("local-mid", NetworkConfig::lan()),
            )),
        )
        .unwrap();

    let r = local
        .query(
            "SELECT q.v FROM OPENQUERY(mid, \
             'SELECT f.v FROM OPENQUERY(far, ''SELECT v FROM secrets'') f WHERE f.v > 41') q",
        )
        .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.value(0, 0), &Value::Int(42));

    // Four-part names also traverse one hop transparently.
    let r = local
        .query("SELECT COUNT(*) AS n FROM OPENQUERY(mid, 'SELECT v FROM far.db.dbo.secrets') q")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(2)));
}

#[test]
fn qualified_wildcard_and_aliases() {
    let e = engine_ab();
    let r = e
        .query("SELECT b.* FROM a, b WHERE a.id = b.id ORDER BY b.id")
        .unwrap();
    assert_eq!(r.schema.len(), 2);
    assert_eq!(r.len(), 2);
    // Output alias usable in ORDER BY.
    let r = e
        .query("SELECT score * 10 AS big FROM b ORDER BY big DESC")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Int(400));
}

#[test]
fn error_paths_across_features() {
    let e = engine_ab();
    // Ambiguous column.
    assert_eq!(e.query("SELECT id FROM a, b").unwrap_err().kind(), "bind");
    // CONTAINS without a full-text index.
    assert_eq!(
        e.query("SELECT id FROM a WHERE CONTAINS(tag, 'x')")
            .unwrap_err()
            .kind(),
        "bind"
    );
    // Unknown linked server in a four-part name.
    assert_eq!(
        e.query("SELECT * FROM ghost.db.dbo.t").unwrap_err().kind(),
        "catalog"
    );
    // Scalar subquery with more than one row.
    assert_eq!(
        e.query("SELECT id FROM a WHERE id = (SELECT id FROM b)")
            .unwrap_err()
            .kind(),
        "execute"
    );
    // GROUP BY violation.
    assert_eq!(
        e.query("SELECT tag, COUNT(*) AS n FROM a GROUP BY id")
            .unwrap_err()
            .kind(),
        "bind"
    );
    // Division by zero at runtime.
    assert_eq!(
        e.query("SELECT 1 / (id - id) AS boom FROM a")
            .unwrap_err()
            .kind(),
        "execute"
    );
}

#[test]
fn distinct_interacts_with_order_and_top() {
    let e = engine_ab();
    e.insert("b", &[Row::new(vec![Value::Int(9), Value::Int(20)])])
        .unwrap();
    let r = e
        .query("SELECT DISTINCT score FROM b ORDER BY score")
        .unwrap();
    assert_eq!(r.len(), 3); // 20, 30, 40
    let r = e
        .query("SELECT DISTINCT TOP 2 score FROM b ORDER BY score DESC")
        .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.value(0, 0), &Value::Int(40));
}

#[test]
fn scalar_functions() {
    let e = engine_ab();
    let r = e
        .query("SELECT UPPER(tag) AS u, LEN(tag) AS l FROM a WHERE id = 1")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Str("X".into()));
    assert_eq!(r.value(0, 1), &Value::Int(1));
    let r = e
        .query("SELECT ABS(0 - score) AS m FROM b WHERE id = 2")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Int(20));
}

#[test]
fn union_all_and_union_distinct() {
    let e = engine_ab();
    let r = e
        .query("SELECT id FROM a UNION ALL SELECT id FROM b ORDER BY id")
        .unwrap();
    assert_eq!(r.len(), 6); // 1,2,3 + 2,3,4
    let r = e
        .query("SELECT id FROM a UNION SELECT id FROM b ORDER BY id")
        .unwrap();
    assert_eq!(r.len(), 4); // 1,2,3,4 deduplicated
    assert_eq!(r.value(0, 0), &Value::Int(1));
    assert_eq!(r.value(3, 0), &Value::Int(4));
    // TOP over a union.
    let r = e
        .query("SELECT TOP 2 id FROM a UNION SELECT id FROM b ORDER BY id DESC")
        .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.value(0, 0), &Value::Int(4));
    // Arity mismatch errors.
    assert_eq!(
        e.query("SELECT id, tag FROM a UNION ALL SELECT id FROM b")
            .unwrap_err()
            .kind(),
        "bind"
    );
}

#[test]
fn union_spans_local_and_remote() {
    let remote = Engine::new("r-engine");
    remote
        .create_table(TableDef::new(
            "t",
            Schema::new(vec![Column::not_null("v", DataType::Int)]),
        ))
        .unwrap();
    remote
        .insert("t", &[Row::new(vec![Value::Int(100)])])
        .unwrap();
    let local = engine_ab();
    local
        .add_linked_server(
            "r",
            Arc::new(NetworkedDataSource::new(
                Arc::new(EngineDataSource::new(remote)),
                NetworkLink::new("u", NetworkConfig::lan()),
            )),
        )
        .unwrap();
    let r = local
        .query("SELECT id FROM a UNION ALL SELECT v FROM r.db.dbo.t ORDER BY id DESC")
        .unwrap();
    assert_eq!(r.len(), 4);
    assert_eq!(r.value(0, 0), &Value::Int(100));
}

#[test]
fn count_distinct_through_engine() {
    let e = engine_ab();
    e.insert("b", &[Row::new(vec![Value::Int(9), Value::Int(20)])])
        .unwrap();
    let r = e
        .query("SELECT COUNT(DISTINCT score) AS d, COUNT(score) AS c FROM b")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Int(3)); // 20, 30, 40
    assert_eq!(r.value(0, 1), &Value::Int(4));
}

#[test]
fn having_without_group_by() {
    let e = engine_ab();
    let r = e
        .query("SELECT COUNT(*) AS n FROM b HAVING COUNT(*) > 2")
        .unwrap();
    assert_eq!(r.len(), 1);
    let r = e
        .query("SELECT COUNT(*) AS n FROM b HAVING COUNT(*) > 5")
        .unwrap();
    assert_eq!(r.len(), 0);
}
