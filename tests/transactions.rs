//! Distributed transaction integration tests: 2PC across engine
//! federations (the MSDTC role of paper §2), with the transfer workload of
//! experiment E11.

use dhqp::{Engine, EngineDataSource};
use dhqp_dtc::Outcome;
use dhqp_netsim::{NetworkConfig, NetworkLink, NetworkedDataSource};
use dhqp_oledb::{DataSource, RowsetExt};
use dhqp_types::{Row, Value};
use dhqp_workload::accounts::{create_account_partition, total_balance};
use std::sync::Arc;

/// Two member engines behind links, each holding half the accounts, plus a
/// head engine with the `accounts_all` DPV.
struct Bank {
    head: Engine,
    members: Vec<Engine>,
    sources: Vec<Arc<dyn DataSource>>,
}

fn bank() -> Bank {
    let head = Engine::new("head");
    let mut members = Vec::new();
    let mut sources: Vec<Arc<dyn DataSource>> = Vec::new();
    let mut view_members = Vec::new();
    for i in 0..2 {
        let member = Engine::new(format!("bank{i}-engine"));
        let lo = i * 50;
        let hi = lo + 49;
        let table = format!("accounts_{i}");
        let domain = create_account_partition(member.storage(), &table, lo, hi, 100).unwrap();
        let link = NetworkLink::new(format!("bank{i}"), NetworkConfig::lan());
        let source: Arc<dyn DataSource> = Arc::new(NetworkedDataSource::new(
            Arc::new(EngineDataSource::new(member.clone())),
            link,
        ));
        head.add_linked_server(&format!("bank{i}"), Arc::clone(&source))
            .unwrap();
        view_members.push((Some(format!("bank{i}")), table, domain));
        members.push(member);
        sources.push(source);
    }
    head.define_partitioned_view("accounts_all", "id", view_members)
        .unwrap();
    Bank {
        head,
        members,
        sources,
    }
}

fn balances(bank: &Bank) -> i64 {
    total_balance(&[
        (bank.members[0].storage(), "accounts_0"),
        (bank.members[1].storage(), "accounts_1"),
    ])
    .unwrap()
}

/// Transfer `amount` between two accounts via explicit DTC enlistment —
/// the programmatic MSDTC pattern.
fn transfer(bank: &Bank, from: i64, to: i64, amount: i64) -> dhqp_types::Result<()> {
    let dtc = bank.head.dtc();
    let mut txn = dtc.begin();
    for (i, source) in bank.sources.iter().enumerate() {
        txn.enlist(format!("bank{i}"), source.create_session()?)?;
    }
    for (account, delta) in [(from, -amount), (to, amount)] {
        let member = (account / 50) as usize;
        let table = format!("accounts_{member}");
        let session = txn.session_mut(&format!("bank{member}"))?;
        // Read current balance, then buffer the update.
        let rows = session.open_rowset(&table)?.collect_rows()?;
        let row = rows
            .iter()
            .find(|r| r.get(0) == &Value::Int(account))
            .expect("account exists")
            .clone();
        let Value::Int(balance) = row.get(1) else {
            panic!("balance type")
        };
        let bookmark = row.bookmark.expect("bookmark");
        session.update_by_bookmarks(
            &table,
            &[bookmark],
            &[Row::new(vec![
                Value::Int(account),
                Value::Int(balance + delta),
            ])],
        )?;
    }
    txn.commit()
}

#[test]
fn cross_server_transfer_commits_atomically() {
    let bank = bank();
    assert_eq!(balances(&bank), 10_000);
    transfer(&bank, 10, 60, 30).unwrap();
    assert_eq!(balances(&bank), 10_000, "money is conserved");
    let r = bank.members[0]
        .query("SELECT balance FROM accounts_0 WHERE id = 10")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Int(70));
    let r = bank.members[1]
        .query("SELECT balance FROM accounts_1 WHERE id = 60")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Int(130));
    assert_eq!(bank.head.dtc().stats(), (1, 0));
}

#[test]
fn prepare_failure_rolls_back_both_sides() {
    let bank = bank();
    bank.members[1].storage().set_fail_prepare(true);
    let err = transfer(&bank, 10, 60, 30).unwrap_err();
    assert_eq!(err.kind(), "transaction");
    bank.members[1].storage().set_fail_prepare(false);
    assert_eq!(balances(&bank), 10_000);
    let r = bank.members[0]
        .query("SELECT balance FROM accounts_0 WHERE id = 10")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Int(100), "debit must be rolled back");
    let log = bank.head.dtc().log();
    assert_eq!(log[0].outcome, Outcome::Aborted);
}

#[test]
fn commit_phase_failure_leaves_in_doubt_until_recovery() {
    let bank = bank();
    bank.members[1].storage().set_fail_commit(true);
    let err = transfer(&bank, 10, 60, 30).unwrap_err();
    assert_eq!(err.kind(), "transaction");
    assert!(err.to_string().contains("in doubt"), "{err}");
    // The decision is durable — the log already says Committed — and the
    // healthy member applied its half of the transfer.
    let dtc = bank.head.dtc();
    assert_eq!(dtc.log()[0].outcome, Outcome::Committed);
    assert_eq!(dtc.stats(), (1, 0));
    let r = bank.members[0]
        .query("SELECT balance FROM accounts_0 WHERE id = 10")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Int(70));
    // The failed member still buffers its credit; the txn is in doubt.
    assert_eq!(dtc.telemetry().in_doubt, 1);
    assert_eq!(dtc.in_doubt_txns().len(), 1);
    assert_eq!(bank.head.metrics().dtc_in_doubt, 1);

    // Recovery cannot make progress while the participant is down...
    let report = dtc.recover();
    assert_eq!(report.resolved, 0);
    assert_eq!(report.still_in_doubt, 1);

    // ...but once it heals, recover() re-delivers the logged commit.
    bank.members[1].storage().set_fail_commit(false);
    let report = dtc.recover();
    assert_eq!(report.resolved, 1);
    assert_eq!(report.still_in_doubt, 0);
    assert_eq!(balances(&bank), 10_000, "money is conserved after recovery");
    let r = bank.members[1]
        .query("SELECT balance FROM accounts_1 WHERE id = 60")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Int(130));
    let m = bank.head.metrics();
    assert_eq!(m.dtc_in_doubt, 0);
    assert_eq!(m.dtc_recovered, 1);
    // Recovery resolves the original decision; it does not double-count.
    assert_eq!(dtc.stats(), (1, 0));
}

#[test]
fn prepare_failure_is_never_in_doubt() {
    // A prepare-phase refusal aborts cleanly: nothing to recover.
    let bank = bank();
    bank.members[0].storage().set_fail_prepare(true);
    transfer(&bank, 10, 60, 30).unwrap_err();
    let dtc = bank.head.dtc();
    assert_eq!(dtc.log()[0].outcome, Outcome::Aborted);
    assert!(dtc.in_doubt_txns().is_empty());
    let report = dtc.recover();
    assert_eq!(report.resolved, 0);
    assert_eq!(report.still_in_doubt, 0);
}

#[test]
fn many_transfers_conserve_total_balance() {
    let bank = bank();
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut committed = 0;
    for _ in 0..50 {
        let from = rng.gen_range(0..100);
        let to = rng.gen_range(0..100);
        if from == to {
            continue;
        }
        transfer(&bank, from, to, rng.gen_range(1..20)).unwrap();
        committed += 1;
    }
    assert_eq!(balances(&bank), 10_000);
    assert_eq!(bank.head.dtc().stats().0, committed);
}

#[test]
fn dpv_update_transfers_through_sql() {
    // The same conservation property via SQL against the federation view.
    let bank = bank();
    bank.head
        .execute("UPDATE accounts_all SET balance = balance - 25 WHERE id = 5")
        .unwrap();
    bank.head
        .execute("UPDATE accounts_all SET balance = balance + 25 WHERE id = 95")
        .unwrap();
    assert_eq!(balances(&bank), 10_000);
    let r = bank
        .head
        .query("SELECT balance FROM accounts_all WHERE id = 5")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Int(75));
}

#[test]
fn federated_aggregate_over_view() {
    let bank = bank();
    let r = bank
        .head
        .query("SELECT COUNT(*) AS n, SUM(balance) AS total FROM accounts_all")
        .unwrap();
    assert_eq!(r.value(0, 0), &Value::Int(100));
    assert_eq!(r.value(0, 1), &Value::Int(10_000));
}
